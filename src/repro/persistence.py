"""Saving and loading cubes, schemas, and engines.

A production OLAP structure outlives the process that built it. This
module persists:

* any :class:`~repro.core.base.RangeSumMethod` — as the dense source
  array plus construction parameters (`.npz`); loading rebuilds the
  structure with the same vectorized O(n^d) pass a fresh build would use,
  which keeps the format trivially forward-compatible with internal
  layout changes,
* a :class:`~repro.cube.schema.CubeSchema` — as JSON via the encoders'
  :meth:`~repro.cube.encoders.DimensionEncoder.spec` dictionaries,
* a :class:`~repro.cube.engine.DataCubeEngine` — schema JSON plus the
  measure and count cubes in one `.npz`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Type

import numpy as np

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.base import RangeSumMethod
from repro.core.rps import RelativePrefixSumCube
from repro.cube.encoders import encoder_from_spec
from repro.cube.engine import DataCubeEngine
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import StorageError

#: Methods the loader can reconstruct, by their ``name`` attribute.
METHOD_REGISTRY: Dict[str, Type[RangeSumMethod]] = {
    NaiveCube.name: NaiveCube,
    PrefixSumCube.name: PrefixSumCube,
    FenwickCube.name: FenwickCube,
    RelativePrefixSumCube.name: RelativePrefixSumCube,
}


#: npz entry holding the embedded content digest.
DIGEST_KEY = "sha256"


def _payload_digest(payload: Dict[str, np.ndarray]) -> str:
    """SHA-256 over a canonical serialization of every array entry.

    Covers names, dtypes, shapes, and raw bytes — any bit that survives
    a save/load roundtrip is under the digest, so a loader that verifies
    it can never hand back a silently wrong structure.
    """
    digest = hashlib.sha256()
    for key in sorted(payload):
        array = np.ascontiguousarray(payload[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _npz_path(path) -> str:
    """The final on-disk name (``np.savez`` appends ``.npz`` itself)."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def atomic_savez(path, payload: Dict[str, np.ndarray]) -> str:
    """Write an ``.npz`` crash-safely: temp file, fsync, ``os.replace``.

    The payload gains a ``sha256`` entry digesting every other entry;
    :func:`verified_load` checks it on the way back in. A crash at any
    point leaves either the previous file or the new one — never a
    half-written hybrid — because the rename is the commit point.

    Returns the final path written.
    """
    final = _npz_path(path)
    payload = dict(payload)
    payload[DIGEST_KEY] = np.array(_payload_digest(payload))
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(final) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def verified_load(path) -> Dict[str, np.ndarray]:
    """Load an ``.npz``, verifying its embedded digest.

    A truncated, unreadable, or tampered file raises
    :class:`~repro.errors.StorageError` naming the path — never returns
    a structurally plausible but wrong payload. Files written before
    digests existed (no ``sha256`` entry) load without verification.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
    except Exception as err:
        # corrupted zip bytes surface as almost any exception class
        # (BadZipFile, zlib.error, struct.error, NotImplementedError for
        # a flipped flag bit, ...) — the caller gets one contract
        raise StorageError(
            f"cannot load {os.fspath(path)!r}: file is missing, truncated, "
            f"or corrupt ({err})"
        ) from err
    if DIGEST_KEY in payload:
        recorded = str(payload.pop(DIGEST_KEY))
        actual = _payload_digest(payload)
        if recorded != actual:
            raise StorageError(
                f"digest mismatch loading {os.fspath(path)!r}: recorded "
                f"sha256 {recorded[:12]}..., contents hash to "
                f"{actual[:12]}... — the file is corrupt"
            )
    return payload


def save_method(method: RangeSumMethod, path) -> str:
    """Persist a range-sum structure to an ``.npz`` file.

    The write is atomic (temp file + rename) and digest-protected; see
    :func:`atomic_savez`. Returns the path written.
    """
    if method.name not in METHOD_REGISTRY:
        raise StorageError(
            f"cannot persist method {method.name!r}; registered: "
            f"{sorted(METHOD_REGISTRY)}"
        )
    payload = {
        "method": np.array(method.name),
        "array": method.to_array(),
    }
    box_sizes = getattr(method, "box_sizes", None)
    if box_sizes is not None:
        payload["box_sizes"] = np.array(box_sizes, dtype=np.int64)
    return atomic_savez(path, payload)


def load_method(path) -> RangeSumMethod:
    """Load a structure saved by :func:`save_method`.

    Raises :class:`~repro.errors.StorageError` naming the path if the
    file is truncated or its digest does not match its contents.
    """
    data = verified_load(path)
    if "method" not in data or "array" not in data:
        raise StorageError(
            f"{os.fspath(path)!r} is not a saved method "
            f"(entries: {sorted(data)})"
        )
    name = str(data["method"])
    array = data["array"]
    box_sizes = (
        tuple(int(k) for k in data["box_sizes"])
        if "box_sizes" in data
        else None
    )
    try:
        cls = METHOD_REGISTRY[name]
    except KeyError:
        raise StorageError(f"unknown persisted method {name!r}") from None
    if box_sizes is not None:
        return cls(array, box_size=box_sizes)
    return cls(array)


# ---------------------------------------------------------------------------
# Schemas and engines
# ---------------------------------------------------------------------------


def schema_to_dict(schema: CubeSchema) -> dict:
    """JSON-serializable description of a cube schema."""
    return {
        "measure": schema.measure,
        "dimensions": [
            {"name": dim.name, "encoder": dim.encoder.spec()}
            for dim in schema.dimensions
        ],
    }


def schema_from_dict(payload: dict) -> CubeSchema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    dimensions = [
        Dimension(entry["name"], encoder_from_spec(entry["encoder"]))
        for entry in payload["dimensions"]
    ]
    return CubeSchema(dimensions, measure=payload["measure"])


def save_schema(schema: CubeSchema, path) -> None:
    """Write a schema as JSON."""
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2))


def load_schema(path) -> CubeSchema:
    """Read a schema written by :func:`save_schema`."""
    return schema_from_dict(json.loads(Path(path).read_text()))


def save_engine(engine: DataCubeEngine, path) -> str:
    """Persist an engine: schema JSON plus measure/count cubes, one file.

    Atomic and digest-protected like :func:`save_method`; returns the
    path written.
    """
    return atomic_savez(
        path,
        {
            "schema": np.array(json.dumps(schema_to_dict(engine.schema))),
            "values": engine.backend.to_array(),
            "counts": engine.count_backend.to_array(),
        },
    )


def load_engine(path, method=None, **method_kwargs) -> DataCubeEngine:
    """Load an engine saved by :func:`save_engine`.

    Args:
        path: the ``.npz`` file.
        method: optional backend override (defaults to the RPS cube, as
            at construction time).
        **method_kwargs: forwarded to the backend constructor.
    """
    data = verified_load(path)
    try:
        schema = schema_from_dict(json.loads(str(data["schema"])))
        values = data["values"]
        counts = data["counts"]
    except KeyError as err:
        raise StorageError(
            f"{os.fspath(path)!r} is not a saved engine (missing {err})"
        ) from None
    engine = DataCubeEngine.__new__(DataCubeEngine)
    engine.schema = schema
    from repro.aggregates.operators import AggregateCube

    engine._aggregates = AggregateCube(
        values, counts, method=method, **method_kwargs
    )
    return engine

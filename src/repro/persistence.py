"""Saving and loading cubes, schemas, and engines.

A production OLAP structure outlives the process that built it. This
module persists:

* any :class:`~repro.core.base.RangeSumMethod` — as the dense source
  array plus construction parameters (`.npz`); loading rebuilds the
  structure with the same vectorized O(n^d) pass a fresh build would use,
  which keeps the format trivially forward-compatible with internal
  layout changes,
* a :class:`~repro.cube.schema.CubeSchema` — as JSON via the encoders'
  :meth:`~repro.cube.encoders.DimensionEncoder.spec` dictionaries,
* a :class:`~repro.cube.engine.DataCubeEngine` — schema JSON plus the
  measure and count cubes in one `.npz`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Type

import numpy as np

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.base import RangeSumMethod
from repro.core.rps import RelativePrefixSumCube
from repro.cube.encoders import encoder_from_spec
from repro.cube.engine import DataCubeEngine
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import StorageError

#: Methods the loader can reconstruct, by their ``name`` attribute.
METHOD_REGISTRY: Dict[str, Type[RangeSumMethod]] = {
    NaiveCube.name: NaiveCube,
    PrefixSumCube.name: PrefixSumCube,
    FenwickCube.name: FenwickCube,
    RelativePrefixSumCube.name: RelativePrefixSumCube,
}


def save_method(method: RangeSumMethod, path) -> None:
    """Persist a range-sum structure to an ``.npz`` file."""
    if method.name not in METHOD_REGISTRY:
        raise StorageError(
            f"cannot persist method {method.name!r}; registered: "
            f"{sorted(METHOD_REGISTRY)}"
        )
    payload = {
        "method": np.array(method.name),
        "array": method.to_array(),
    }
    box_sizes = getattr(method, "box_sizes", None)
    if box_sizes is not None:
        payload["box_sizes"] = np.array(box_sizes, dtype=np.int64)
    np.savez_compressed(path, **payload)


def load_method(path) -> RangeSumMethod:
    """Load a structure saved by :func:`save_method`."""
    with np.load(path, allow_pickle=False) as data:
        name = str(data["method"])
        array = data["array"]
        box_sizes = (
            tuple(int(k) for k in data["box_sizes"])
            if "box_sizes" in data
            else None
        )
    try:
        cls = METHOD_REGISTRY[name]
    except KeyError:
        raise StorageError(f"unknown persisted method {name!r}") from None
    if box_sizes is not None:
        return cls(array, box_size=box_sizes)
    return cls(array)


# ---------------------------------------------------------------------------
# Schemas and engines
# ---------------------------------------------------------------------------


def schema_to_dict(schema: CubeSchema) -> dict:
    """JSON-serializable description of a cube schema."""
    return {
        "measure": schema.measure,
        "dimensions": [
            {"name": dim.name, "encoder": dim.encoder.spec()}
            for dim in schema.dimensions
        ],
    }


def schema_from_dict(payload: dict) -> CubeSchema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    dimensions = [
        Dimension(entry["name"], encoder_from_spec(entry["encoder"]))
        for entry in payload["dimensions"]
    ]
    return CubeSchema(dimensions, measure=payload["measure"])


def save_schema(schema: CubeSchema, path) -> None:
    """Write a schema as JSON."""
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2))


def load_schema(path) -> CubeSchema:
    """Read a schema written by :func:`save_schema`."""
    return schema_from_dict(json.loads(Path(path).read_text()))


def save_engine(engine: DataCubeEngine, path) -> None:
    """Persist an engine: schema JSON plus measure/count cubes, one file."""
    np.savez_compressed(
        path,
        schema=np.array(json.dumps(schema_to_dict(engine.schema))),
        values=engine.backend.to_array(),
        counts=engine.count_backend.to_array(),
    )


def load_engine(path, method=None, **method_kwargs) -> DataCubeEngine:
    """Load an engine saved by :func:`save_engine`.

    Args:
        path: the ``.npz`` file.
        method: optional backend override (defaults to the RPS cube, as
            at construction time).
        **method_kwargs: forwarded to the backend constructor.
    """
    with np.load(path, allow_pickle=False) as data:
        schema = schema_from_dict(json.loads(str(data["schema"])))
        values = data["values"]
        counts = data["counts"]
    engine = DataCubeEngine.__new__(DataCubeEngine)
    engine.schema = schema
    from repro.aggregates.operators import AggregateCube

    engine._aggregates = AggregateCube(
        values, counts, method=method, **method_kwargs
    )
    return engine

"""Beyond-the-paper extensions (clearly separated from the reproduction)."""

from repro.extensions.hierarchical import (
    HierarchicalRPSCube,
    RangeAddPointQuery,
    difference_array,
)

__all__ = [
    "HierarchicalRPSCube",
    "RangeAddPointQuery",
    "difference_array",
]

"""Multi-level relative prefix sums (beyond the paper).

The paper closes by noting the relative prefix sum method "reduces the
overall complexity of the range sum problem" from O(n^d) to O(n^{d/2}).
This module takes the construction one level further, in the direction
the authors later pursued with tree structures (The Dynamic Data Cube):

The expensive part of an RPS update is no longer the RP cascade (bounded
by the box) but the overlay's *slice adds* — suffix regions over box-grid
axes. A slice add is a **range-add**; a border lookup is a **point
query**; and range-add/point-query is the mirror image of
point-add/range-sum through the *difference array*: adding δ over the box
``[l, h]`` of X equals adding ±δ at the ``2^d`` corners of X's difference
array, and reading ``X[t]`` equals a prefix sum of the difference array.
So each overlay value array can itself be backed by an inner RPS over its
difference array — turning every O(slice) overlay update into O(2^d)
inner point-updates of O(sqrt)-sized cascades.

Iterating L times yields the classic partial-sums trade-off point
"O(c^L) query, O(n^{d·s(L)}) update with s(L) < 1/2 for L >= 2":
queries stay constant-time (each stored value costs one inner *query*
instead of one read), while the measured update growth-rate drops below
the paper's n^{d/2}. The constants grow ~4^d per level, so on feasible
dense cubes the single-level structure usually wins in absolute cells —
ablation A6 measures exactly this honest trade-off (lower slope, higher
intercept).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod
from repro.core.overlay import Overlay, subset_update_slices
from repro.core.rp import RelativePrefixArray
from repro.core.rps import RelativePrefixSumCube
from repro.errors import RangeError

Coord = Tuple[int, ...]


def difference_array(array: np.ndarray) -> np.ndarray:
    """The d-dimensional difference D of X, with ``X[t] = Σ_{x<=t} D[x]``."""
    out = np.asarray(array).copy()
    for axis in range(out.ndim):
        out = np.diff(out, axis=axis, prepend=0)
    return out


class RangeAddPointQuery:
    """Range-add / point-query over a dense array, via an inner RPS.

    Maintains the wrapped array's *difference array* inside any
    :class:`RangeSumMethod`: a range-add becomes ``2^d`` point deltas at
    the region's corners, a point query becomes one inner prefix sum.

    Args:
        initial: the array's starting contents.
        inner_factory: builds the inner structure from a dense array
            (defaults to :class:`RelativePrefixSumCube` with its own
            default box sizes).
    """

    def __init__(
        self,
        initial: np.ndarray,
        inner_factory: Optional[Callable] = None,
    ) -> None:
        initial = np.asarray(initial)
        self.shape = initial.shape
        self.ndim = initial.ndim
        factory = inner_factory or RelativePrefixSumCube
        self.inner: RangeSumMethod = factory(difference_array(initial))

    def point_query(self, index: Sequence[int]):
        """``X[index]`` — one inner prefix sum."""
        return self.inner.prefix_sum(index)

    def range_add(
        self, low: Sequence[int], high: Sequence[int], delta
    ) -> None:
        """Add ``delta`` to every ``X[x]`` with ``low <= x <= high``.

        Applies signed deltas at the region's corners in the difference
        array; corners falling outside the array are dropped (their
        contribution would cancel past the boundary anyway).
        """
        low = tuple(int(l) for l in low)
        high = tuple(int(h) for h in high)
        for l, h in zip(low, high):
            if l > h:
                raise RangeError(f"inverted range-add [{low}, {high}]")
        for subset in itertools.product((False, True), repeat=self.ndim):
            corner = tuple(
                (h + 1) if past else l
                for l, h, past in zip(low, high, subset)
            )
            if any(c >= n for c, n in zip(corner, self.shape)):
                continue
            sign = -1 if sum(subset) % 2 else 1
            self.inner.apply_delta(corner, sign * delta)

    def to_array(self) -> np.ndarray:
        """Materialize X (verification/debug)."""
        diff = self.inner.to_array()
        for axis in range(self.ndim):
            diff = np.cumsum(diff, axis=axis)
        return diff

    def storage_cells(self) -> int:
        """Cells held by the inner structure."""
        return self.inner.storage_cells()


class HierarchicalRPSCube(RangeSumMethod):
    """L-level relative prefix sums: O(1) queries, sub-n^{d/2} update growth.

    ``levels=1`` is the plain paper structure; ``levels=2`` backs every
    overlay value array with an inner RPS over its difference array;
    ``levels=3`` backs those inner structures' overlays the same way, and
    so on.

    Args:
        array: dense source cube.
        box_size: outer box side(s); the asymptotic optimum for L=2 is
            ``k ~ n^{d/(2d+1)}`` (smaller than the paper's sqrt(n), since
            overlay updates got cheaper); defaults to the paper's rule.
        levels: recursion depth, >= 1.
    """

    name = "hierarchical_rps"

    def __init__(
        self, array: np.ndarray, box_size=None, levels: int = 2
    ) -> None:
        if levels < 1:
            raise RangeError(f"levels must be >= 1, got {levels}")
        self._requested_box_size = box_size
        self.levels = int(levels)
        super().__init__(array)

    def _build(self, array: np.ndarray) -> None:
        from repro.core.rps import default_box_size

        k = (
            self._requested_box_size
            if self._requested_box_size is not None
            else default_box_size(array.shape)
        )
        self.box_sizes = indexing.normalize_box_sizes(k, array.shape)
        self.boxes_shape = tuple(
            -(-n // kk) for n, kk in zip(array.shape, self.box_sizes)
        )
        self._full_mask = (1 << self.ndim) - 1
        self.rp = RelativePrefixArray(
            array, self.box_sizes, counter=self.counter
        )
        if self.levels == 1:
            # degenerate to the paper's structure: a dense overlay
            self.overlay = Overlay(array, self.box_sizes,
                                   counter=self.counter)
            self._wrapped = None
            return
        self.overlay = None
        seed_overlay = Overlay(array, self.box_sizes)  # build-time only
        inner_factory = self._make_inner_factory(self.levels - 1)
        self._wrapped = {
            mask: RangeAddPointQuery(
                seed_overlay.values_array(mask), inner_factory
            )
            for mask in seed_overlay.masks()
        }

    @staticmethod
    def _make_inner_factory(remaining_levels: int):
        if remaining_levels <= 1:
            return RelativePrefixSumCube
        return lambda arr: HierarchicalRPSCube(arr, levels=remaining_levels)

    # -- stored-value access (charging this cube's counter) -------------------

    def _stored_value(self, mask: int, cell: Coord):
        wrapped = self._wrapped[mask]
        loc = tuple(
            c // self.box_sizes[axis] if mask & (1 << axis) else c
            for axis, c in enumerate(cell)
        )
        before = wrapped.inner.counter.snapshot()
        value = wrapped.point_query(loc)
        cost = before.delta(wrapped.inner.counter)
        self.counter.read(cost.cells_read, structure="overlay.inner")
        return value

    # -- queries -----------------------------------------------------------------

    def prefix_sum(self, target: Sequence[int]):
        """RP value plus one stored value per off-anchor subset.

        Identical decomposition to the flat structure; each stored value
        now costs one inner *query* (still O(1) for fixed d and L).
        """
        t = indexing.normalize_index(target, self.shape)
        if self.levels == 1:
            return self.overlay.prefix_contribution(t) + self.rp.value(t)
        anchor = indexing.anchor_of(t, self.box_sizes)
        off_mask = 0
        for axis in range(self.ndim):
            if t[axis] != anchor[axis]:
                off_mask |= 1 << axis
        total = self._stored_value(self._full_mask, anchor)
        sub = off_mask
        while sub > 0:
            if sub != self._full_mask:
                cell = tuple(
                    t[axis] if sub & (1 << axis) else anchor[axis]
                    for axis in range(self.ndim)
                )
                total = total + self._stored_value(
                    self._full_mask ^ sub, cell
                )
            sub = (sub - 1) & off_mask
        return total + self.rp.value(t)

    def cell_value(self, index: Sequence[int]):
        """Box-local RP differencing, as in the flat structure."""
        return self.rp.cell_value(index)

    # -- updates ------------------------------------------------------------------

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """RP cascade plus, per subset, one or two inner range-adds."""
        idx = indexing.normalize_index(index, self.shape)
        self.rp.apply_delta(idx, delta)
        if self.levels == 1:
            self.overlay.apply_delta(idx, delta)
            return
        for mask in range(1, self._full_mask + 1):
            add, sub = subset_update_slices(
                self.shape, self.box_sizes, self.boxes_shape, idx, mask
            )
            if add is None:
                continue
            self._range_add_slices(mask, add, delta)
            if sub is not None:
                self._range_add_slices(mask, sub, -delta)

    def _range_add_slices(self, mask: int, slices, delta) -> None:
        wrapped = self._wrapped[mask]
        low, high = [], []
        for axis, sl in enumerate(slices):
            size = wrapped.shape[axis]
            start, stop, _ = sl.indices(size)
            if stop <= start:
                return  # empty region on some axis
            low.append(start)
            high.append(stop - 1)
        before = wrapped.inner.counter.snapshot()
        wrapped.range_add(tuple(low), tuple(high), delta)
        cost = before.delta(wrapped.inner.counter)
        self.counter.write(cost.cells_written, structure="overlay.inner")

    # -- introspection ---------------------------------------------------------------

    def storage_cells(self) -> int:
        """RP plus every inner structure's cells."""
        total = self.rp.storage_cells()
        if self.levels == 1:
            return total + self.overlay.storage_cells()
        return total + sum(
            w.storage_cells() for w in self._wrapped.values()
        )

    def to_array(self) -> np.ndarray:
        """Reconstruct A by box-local differencing of RP (exact)."""
        a = self.rp.array()
        for axis in range(self.ndim):
            shifted = np.zeros_like(a)
            src = [slice(None)] * self.ndim
            dst = [slice(None)] * self.ndim
            src[axis] = slice(0, -1)
            dst[axis] = slice(1, None)
            shifted[tuple(dst)] = a[tuple(src)]
            starts = [slice(None)] * self.ndim
            starts[axis] = slice(0, None, self.box_sizes[axis])
            shifted[tuple(starts)] = 0
            a = a - shifted
        return a

    def __repr__(self) -> str:
        return (
            f"HierarchicalRPSCube(shape={self.shape}, "
            f"box_sizes={self.box_sizes}, levels={self.levels})"
        )

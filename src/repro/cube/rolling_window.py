"""Rolling time windows: keeping only the last W days of a cube.

The paper assumes dimension sizes are static ("the number of days in a
year ... can be assumed to be static"). Long-running deployments instead
keep a *sliding window* — the last 90 days — and every midnight must
expire the oldest day and open a new one. Rebuilding dense structures
daily is exactly the cost the paper is trying to avoid, so this module
implements the standard trick: the time axis is **circular**. Logical day
``t`` lives at physical index ``t mod W``; advancing the window zeroes
one physical slice (cell deltas, or a batch rebuild when cheaper) and
reuses it for the new day.

Queries address logical days; the engine translates them to at most two
physical index ranges (the window may wrap around the physical axis) and
sums both — still O(1) per query with the RPS backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.base import RangeSumMethod
from repro.core.rps import RelativePrefixSumCube
from repro.errors import RangeError, SchemaError


class RollingWindowEngine:
    """A cube whose leading axis is a circular window of time slots.

    Args:
        slot_shape: shape of one time slot's sub-cube (the non-time
            dimensions), e.g. ``(50,)`` for 50 age buckets.
        window: number of time slots kept (e.g. 90 days).
        method: backing :class:`RangeSumMethod`; RPS by default.
        **method_kwargs: forwarded to the method constructor.

    Logical time starts at slot 0 and only moves forward via
    :meth:`advance`. Facts and queries use logical slot numbers; slots
    older than ``newest - window + 1`` have been expired and are
    rejected.
    """

    def __init__(
        self,
        slot_shape: Sequence[int],
        window: int,
        method: Optional[Type[RangeSumMethod]] = None,
        **method_kwargs,
    ) -> None:
        if window < 2:
            raise RangeError(f"window must be >= 2 slots, got {window}")
        self.slot_shape = tuple(int(n) for n in slot_shape)
        if any(n < 1 for n in self.slot_shape):
            raise SchemaError(f"invalid slot shape {self.slot_shape}")
        self.window = int(window)
        shape = (self.window,) + self.slot_shape
        method = method or RelativePrefixSumCube
        self._method = method(np.zeros(shape, dtype=np.float64),
                              **method_kwargs)
        self.newest_slot = 0  # highest logical slot currently in window

    @property
    def oldest_slot(self) -> int:
        """Oldest logical slot still inside the window."""
        return max(0, self.newest_slot - self.window + 1)

    @property
    def backend(self) -> RangeSumMethod:
        """The underlying range-sum structure (physical addressing)."""
        return self._method

    # -- time control ----------------------------------------------------------

    def advance(self, slots: int = 1) -> int:
        """Open ``slots`` new time slots, expiring the oldest ones.

        Each newly opened slot's physical slice is zeroed (its previous
        tenant's data is expired); cost is one batch of cell updates per
        reused slice, or a full rebuild when the backend's batch
        heuristic prefers it.

        Returns the new newest logical slot.
        """
        if slots < 1:
            raise RangeError(f"can only advance forward, got {slots}")
        for _ in range(slots):
            self.newest_slot += 1
            physical = self.newest_slot % self.window
            self._zero_physical_slice(physical)
        return self.newest_slot

    def _zero_physical_slice(self, physical: int) -> None:
        # read the slab in one reconstruction pass instead of a
        # cell_value per cell: one prefix-sum-shaped O(slab) numpy
        # slice, then deltas only for the nonzero cells
        slab = np.asarray(self._method.to_array()[physical])
        nonzero = np.nonzero(slab)
        if nonzero[0].size == 0:
            return
        cells = np.column_stack(nonzero)
        updates: List[Tuple[Tuple[int, ...], float]] = [
            ((physical,) + tuple(int(c) for c in cell),
             -float(slab[tuple(cell)]))
            for cell in cells
        ]
        if updates:
            self._method.apply_batch(updates)

    # -- ingest -----------------------------------------------------------------

    def record(self, slot: int, cell: Sequence[int], amount: float) -> None:
        """Add ``amount`` at ``cell`` (non-time coordinates) of a slot.

        The slot must be inside the current window; recording into the
        future is allowed and advances the window first.
        """
        if slot > self.newest_slot:
            self.advance(slot - self.newest_slot)
        self._check_slot(slot)
        physical = slot % self.window
        self._method.apply_delta((physical,) + tuple(cell), amount)

    # -- queries ------------------------------------------------------------------

    def window_sum(
        self,
        first_slot: int,
        last_slot: int,
        low: Sequence[int] = None,
        high: Sequence[int] = None,
    ) -> float:
        """Sum over logical slots ``[first, last]`` and a sub-cube range.

        ``low``/``high`` bound the non-time dimensions (full extent when
        omitted). The logical range maps to at most two physical ranges
        when the window wraps.
        """
        self._check_slot(first_slot)
        self._check_slot(last_slot)
        if first_slot > last_slot:
            raise RangeError(
                f"inverted slot range [{first_slot}, {last_slot}]"
            )
        low = tuple(low) if low is not None else tuple(
            0 for _ in self.slot_shape
        )
        high = tuple(high) if high is not None else tuple(
            n - 1 for n in self.slot_shape
        )
        total = 0.0
        for phys_low, phys_high in self._physical_ranges(
            first_slot, last_slot
        ):
            total += float(
                self._method.range_sum(
                    (phys_low,) + low, (phys_high,) + high
                )
            )
        return total

    def trailing_sum(
        self,
        slots: int,
        low: Sequence[int] = None,
        high: Sequence[int] = None,
    ) -> float:
        """Sum over the most recent ``slots`` slots (clipped to window)."""
        if slots < 1:
            raise RangeError(f"need at least one slot, got {slots}")
        first = max(self.oldest_slot, self.newest_slot - slots + 1)
        return self.window_sum(first, self.newest_slot, low, high)

    def _physical_ranges(self, first: int, last: int):
        """Map a logical slot range to 1 or 2 contiguous physical ranges."""
        p_first = first % self.window
        p_last = last % self.window
        if last - first + 1 >= self.window:
            return [(0, self.window - 1)]
        if p_first <= p_last:
            return [(p_first, p_last)]
        return [(p_first, self.window - 1), (0, p_last)]

    def _check_slot(self, slot: int) -> None:
        if slot < self.oldest_slot or slot > self.newest_slot:
            raise RangeError(
                f"slot {slot} outside the current window "
                f"[{self.oldest_slot}, {self.newest_slot}]"
            )

    def __repr__(self) -> str:
        return (
            f"RollingWindowEngine(window={self.window}, "
            f"slot_shape={self.slot_shape}, "
            f"slots=[{self.oldest_slot}..{self.newest_slot}])"
        )

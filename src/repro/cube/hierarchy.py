"""Dimension hierarchies: OLAP rollups as contiguous index ranges.

Data-cube dimensions usually carry hierarchies — days roll up to months,
quarters and years; ages roll up to bands. Because every hierarchy level
member corresponds to a *contiguous run of indices* under an
order-preserving encoder, a rollup is just a family of range queries, so
each group total still costs O(1) with the RPS backend.

* :class:`CalendarHierarchy` — month/quarter/year levels over a
  :class:`~repro.cube.encoders.DateEncoder` dimension.
* :class:`BandHierarchy` — explicit named bands over any ordered
  dimension (e.g. age groups 18-25 / 26-40 / 41-65 / 66+).
* :func:`group_by` — evaluate an aggregate per member of a level,
  optionally under an extra selection on other dimensions.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.cube.encoders import DateEncoder
from repro.cube.engine import DataCubeEngine
from repro.errors import RangeError, SchemaError


class CalendarHierarchy:
    """Month / quarter / year rollups of a date dimension.

    Args:
        engine: the cube engine holding the dimension.
        dimension: name of a dimension whose encoder is a
            :class:`~repro.cube.encoders.DateEncoder`.
    """

    LEVELS = ("week", "month", "quarter", "year")

    def __init__(self, engine: DataCubeEngine, dimension: str) -> None:
        encoder = engine.schema.dimension(dimension).encoder
        if not isinstance(encoder, DateEncoder):
            raise SchemaError(
                f"dimension {dimension!r} is not date-encoded; "
                f"CalendarHierarchy needs a DateEncoder"
            )
        self.engine = engine
        self.dimension = dimension
        self._encoder = encoder

    def members(self, level: str) -> List[Tuple[str, Tuple]]:
        """``(label, (first_day, last_day))`` pairs covering the dimension.

        Partial periods at the window edges are clipped to the window.
        """
        if level not in self.LEVELS:
            raise RangeError(
                f"unknown calendar level {level!r}; choose from {self.LEVELS}"
            )
        start = self._encoder.start
        end = start + datetime.timedelta(days=self._encoder.days - 1)
        members: List[Tuple[str, Tuple]] = []
        day = start
        while day <= end:
            label, period_end = self._period_of(day, level)
            clipped_end = min(period_end, end)
            members.append((label, (day, clipped_end)))
            day = clipped_end + datetime.timedelta(days=1)
        return members

    @staticmethod
    def _period_of(day: datetime.date, level: str):
        """Label and last calendar day of ``day``'s period at ``level``."""
        if level == "week":
            iso_year, iso_week, iso_weekday = day.isocalendar()
            label = f"{iso_year:04d}-W{iso_week:02d}"
            return label, day + datetime.timedelta(days=7 - iso_weekday)
        if level == "month":
            label = f"{day.year:04d}-{day.month:02d}"
            if day.month == 12:
                nxt = datetime.date(day.year + 1, 1, 1)
            else:
                nxt = datetime.date(day.year, day.month + 1, 1)
            return label, nxt - datetime.timedelta(days=1)
        if level == "quarter":
            quarter = (day.month - 1) // 3 + 1
            label = f"{day.year:04d}-Q{quarter}"
            first_next = quarter * 3 + 1
            if first_next > 12:
                nxt = datetime.date(day.year + 1, 1, 1)
            else:
                nxt = datetime.date(day.year, first_next, 1)
            return label, nxt - datetime.timedelta(days=1)
        label = f"{day.year:04d}"
        return label, datetime.date(day.year, 12, 31)

    def rollup(
        self,
        level: str,
        aggregate: str = "sum",
        selection: Mapping[str, Tuple] = None,
    ) -> "Dict[str, object]":
        """Aggregate per calendar period — each period one range query.

        Args:
            level: ``"month"``, ``"quarter"`` or ``"year"``.
            aggregate: ``"sum"``, ``"count"`` or ``"average"``.
            selection: optional extra constraints on *other* dimensions.
        """
        return group_by(
            self.engine, self.dimension, self.members(level),
            aggregate=aggregate, selection=selection,
        )


class BandHierarchy:
    """Named contiguous bands over any ordered dimension.

    Args:
        engine: the cube engine.
        dimension: dimension name.
        bands: mapping of band label to inclusive ``(low, high)`` attribute
            values, e.g. ``{"18-25": (18, 25), "26-40": (26, 40)}``.
            Bands may not overlap (each fact belongs to one band).
    """

    def __init__(
        self,
        engine: DataCubeEngine,
        dimension: str,
        bands: Mapping[str, Tuple],
    ) -> None:
        if not bands:
            raise RangeError("need at least one band")
        self.engine = engine
        self.dimension = dimension
        self.bands = dict(bands)
        encoder = engine.schema.dimension(dimension).encoder
        encoded = sorted(
            (encoder.encode_range(lo, hi), label)
            for label, (lo, hi) in self.bands.items()
        )
        for ((_, hi1), label1), (((lo2, _), label2)) in zip(
            encoded, encoded[1:]
        ):
            if lo2 <= hi1:
                raise RangeError(
                    f"bands {label1!r} and {label2!r} overlap"
                )

    def rollup(
        self,
        aggregate: str = "sum",
        selection: Mapping[str, Tuple] = None,
    ) -> "Dict[str, object]":
        """Aggregate per band — each band one range query."""
        members = list(self.bands.items())
        return group_by(
            self.engine, self.dimension, members,
            aggregate=aggregate, selection=selection,
        )


def group_by(
    engine: DataCubeEngine,
    dimension: str,
    members: Sequence[Tuple[str, Tuple]],
    aggregate: str = "sum",
    selection: Mapping[str, Tuple] = None,
) -> Dict[str, object]:
    """Aggregate per member range of one dimension.

    Args:
        engine: the cube engine.
        dimension: the grouped dimension's name.
        members: ``(label, (low, high))`` attribute-value ranges.
        aggregate: ``"sum"``, ``"count"`` or ``"average"``.
        selection: optional constraints on other dimensions; constraining
            the grouped dimension itself is rejected (ambiguous).

    Returns:
        ``{label: aggregate value}`` in member order.
    """
    if aggregate not in ("sum", "count", "average"):
        raise RangeError(
            f"unknown aggregate {aggregate!r}; "
            f"choose sum, count, or average"
        )
    selection = dict(selection or {})
    if dimension in selection:
        raise RangeError(
            f"selection constrains the grouped dimension {dimension!r}"
        )
    evaluate = getattr(engine, aggregate)
    results: Dict[str, object] = {}
    for label, bounds in members:
        member_selection = dict(selection)
        member_selection[dimension] = bounds
        results[label] = evaluate(member_selection)
    return results

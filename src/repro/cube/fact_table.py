"""Fact tables: the relational source a data cube is aggregated from.

The paper's motivating example is an insurance company's sales database;
a :class:`FactTable` plays that role — an append-only collection of
records (dicts) that :mod:`repro.cube.builder` aggregates into the dense
array ``A``, and that :class:`~repro.cube.engine.DataCubeEngine` keeps
ingesting from as "new information arrives on a daily basis".
"""

from __future__ import annotations

import csv
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.errors import SchemaError


class FactTable:
    """An in-memory append-only table of fact records.

    Records are plain mappings from attribute name to value. The table
    imposes no schema by itself; validation happens when records are
    encoded against a :class:`~repro.cube.schema.CubeSchema`.
    """

    def __init__(self, records: Iterable[Mapping] = ()) -> None:
        self._records: List[Dict] = [dict(r) for r in records]

    def append(self, record: Mapping) -> None:
        """Add one fact record."""
        self._records.append(dict(record))

    def extend(self, records: Iterable[Mapping]) -> None:
        """Add many fact records."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self._records)

    def __getitem__(self, i: int) -> Dict:
        return dict(self._records[i])

    def columns(self) -> List[str]:
        """Union of attribute names across all records, sorted."""
        names = set()
        for record in self._records:
            names.update(record)
        return sorted(names)

    # -- I/O ------------------------------------------------------------------

    @classmethod
    def from_csv(
        cls,
        path,
        converters: Optional[Mapping[str, Callable]] = None,
    ) -> "FactTable":
        """Load records from a CSV file with a header row.

        Args:
            path: file path.
            converters: optional per-column conversion functions (CSV
                yields strings; e.g. ``{"sales": float, "age": int}``).
        """
        converters = dict(converters or {})
        table = cls()
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise SchemaError(f"{path}: empty CSV, no header row")
            for row in reader:
                record = {}
                for key, raw in row.items():
                    convert = converters.get(key)
                    record[key] = convert(raw) if convert else raw
                table.append(record)
        return table

    def to_csv(self, path) -> None:
        """Write all records to a CSV file (columns sorted by name)."""
        cols = self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=cols)
            writer.writeheader()
            for record in self._records:
                writer.writerow(record)

    def __repr__(self) -> str:
        return f"FactTable({len(self)} records)"

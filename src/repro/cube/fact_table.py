"""Fact tables: the relational source a data cube is aggregated from.

The paper's motivating example is an insurance company's sales database;
a :class:`FactTable` plays that role — an append-only collection of
records (dicts) that :mod:`repro.cube.builder` aggregates into the dense
array ``A``, and that :class:`~repro.cube.engine.DataCubeEngine` keeps
ingesting from as "new information arrives on a daily basis".
"""

from __future__ import annotations

import csv
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.errors import SchemaError


def validate_measure(value, dtype=None, *, allow_promotion: bool = True):
    """Check one measure value against a cube's dtype at *ingest* time.

    The apply path already survives dtype mismatches — PR 8's
    :meth:`~repro.core.base.RangeSumMethod.coerce_deltas` casts
    integral floats down losslessly and promotes the whole cube for
    genuinely fractional deltas — but surviving deep inside the writer
    is the wrong place to discover a bad measure. This helper applies
    the *same* promotion rules up front, where the row can still be
    rejected (or quarantined) individually:

    * non-numeric measures (strings, ``None``, booleans — ``True``
      silently summing as 1 is a classic fact-table bug) raise
      :class:`~repro.errors.SchemaError`;
    * non-finite measures (NaN/inf poison every range sum they touch,
      unrecoverably) raise :class:`~repro.errors.SchemaError`;
    * with ``dtype`` given: values ``coerce_deltas`` would cast
      losslessly pass; values that would force a cube *promotion* (a
      fractional measure into an integer cube — an O(n^d) rebuild when
      it reaches the apply path) pass only when ``allow_promotion`` is
      true. Interactive engines keep the default and let the cube
      widen; the streaming pipeline sets it false so one poison row
      cannot stall the firehose behind a full rebuild.

    Returns the measure as a float.
    """
    if isinstance(value, (bool, np.bool_)):
        raise SchemaError(
            f"boolean measure {value!r}: refusing to sum True as 1 — "
            f"encode intent explicitly"
        )
    if not isinstance(value, (int, float, np.integer, np.floating)):
        raise SchemaError(
            f"measure must be numeric, got {type(value).__name__} "
            f"({value!r})"
        )
    as_float = float(value)
    if not math.isfinite(as_float):
        raise SchemaError(
            f"non-finite measure {value!r} would poison every range "
            f"sum it touches"
        )
    if dtype is not None:
        dtype = np.dtype(dtype)
        arr = np.asarray(value)
        if not np.can_cast(arr.dtype, dtype, casting="same_kind"):
            # the coerce_deltas lossless-cast check, one value at a time
            with np.errstate(invalid="ignore", over="ignore"):
                cast = arr.astype(dtype)
            if not np.array_equal(cast, arr) and not allow_promotion:
                raise SchemaError(
                    f"measure {value!r} is not representable in the "
                    f"cube's {dtype} without promoting the whole cube"
                )
    return as_float


class FactTable:
    """An in-memory append-only table of fact records.

    Records are plain mappings from attribute name to value. The table
    imposes no schema by itself; validation happens when records are
    encoded against a :class:`~repro.cube.schema.CubeSchema`.
    """

    def __init__(self, records: Iterable[Mapping] = ()) -> None:
        self._records: List[Dict] = [dict(r) for r in records]

    def append(self, record: Mapping) -> None:
        """Add one fact record."""
        self._records.append(dict(record))

    def extend(self, records: Iterable[Mapping]) -> None:
        """Add many fact records."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self._records)

    def __getitem__(self, i: int) -> Dict:
        return dict(self._records[i])

    def columns(self) -> List[str]:
        """Union of attribute names across all records, sorted."""
        names = set()
        for record in self._records:
            names.update(record)
        return sorted(names)

    def validate(
        self,
        schema,
        dtype=None,
        *,
        allow_promotion: bool = True,
    ) -> List[Tuple[int, str]]:
        """Audit every record against a schema and a cube dtype.

        Returns ``(row index, reason)`` for each record that would fail
        ingestion — missing dimensions or measure, values outside an
        encoder's domain, or a measure the cube's ``dtype`` cannot hold
        (see :func:`validate_measure`). An empty list means a bulk
        ingest of this table cannot hit a dtype surprise deep in the
        apply path.
        """
        from repro.errors import EncodingError

        problems: List[Tuple[int, str]] = []
        for i, record in enumerate(self._records):
            try:
                _, measure = schema.encode_record(record)
                validate_measure(
                    measure, dtype, allow_promotion=allow_promotion
                )
            except (SchemaError, EncodingError) as error:
                problems.append((i, str(error)))
        return problems

    # -- I/O ------------------------------------------------------------------

    @classmethod
    def from_csv(
        cls,
        path,
        converters: Optional[Mapping[str, Callable]] = None,
    ) -> "FactTable":
        """Load records from a CSV file with a header row.

        Args:
            path: file path.
            converters: optional per-column conversion functions (CSV
                yields strings; e.g. ``{"sales": float, "age": int}``).
        """
        converters = dict(converters or {})
        table = cls()
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise SchemaError(f"{path}: empty CSV, no header row")
            for row in reader:
                record = {}
                for key, raw in row.items():
                    convert = converters.get(key)
                    record[key] = convert(raw) if convert else raw
                table.append(record)
        return table

    def to_csv(self, path) -> None:
        """Write all records to a CSV file (columns sorted by name)."""
        cols = self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=cols)
            writer.writeheader()
            for record in self._records:
                writer.writerow(record)

    def __repr__(self) -> str:
        return f"FactTable({len(self)} records)"

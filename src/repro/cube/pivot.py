"""Pivot tables: two-dimensional rollups (cross-tabs).

Gray et al.'s data cube operator — reference [4] of the paper —
generalizes "group-by, cross-tabs and sub-totals"; this module provides
the cross-tab view over any engine: a grid of aggregates for every
(row member × column member) pair of two dimension hierarchies, plus the
marginal sub-totals and the grand total. Every cell is one O(1) range
query with the RPS backend, so a full R×C pivot costs O(R·C) constant
-time queries — no scan of the fact data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.cube.engine import DataCubeEngine
from repro.errors import RangeError


@dataclass
class PivotTable:
    """A computed cross-tab: cells, margins, and the grand total."""

    row_dimension: str
    column_dimension: str
    aggregate: str
    row_labels: List[str] = field(default_factory=list)
    column_labels: List[str] = field(default_factory=list)
    cells: Dict[Tuple[str, str], float] = field(default_factory=dict)
    row_totals: Dict[str, float] = field(default_factory=dict)
    column_totals: Dict[str, float] = field(default_factory=dict)
    grand_total: float = 0.0

    def value(self, row: str, column: str) -> float:
        """One cell of the grid."""
        return self.cells[(row, column)]

    def render(self, width: int = 10) -> str:
        """Aligned plain-text rendering with margins."""
        def fmt(value) -> str:
            return f"{value:>{width}.1f}" if isinstance(value, float) else (
                f"{value:>{width}}"
            )

        label_width = max(
            [len(label) for label in self.row_labels] + [len("total"), 5]
        )
        header = " " * label_width + "".join(
            f"{label:>{width}}" for label in self.column_labels
        ) + f"{'total':>{width}}"
        lines = [header]
        for row in self.row_labels:
            cells = "".join(
                fmt(self.cells[(row, column)])
                for column in self.column_labels
            )
            lines.append(
                f"{row:<{label_width}}" + cells + fmt(self.row_totals[row])
            )
        footer = f"{'total':<{label_width}}" + "".join(
            fmt(self.column_totals[column])
            for column in self.column_labels
        ) + fmt(self.grand_total)
        lines.append(footer)
        return "\n".join(lines)


def pivot(
    engine: DataCubeEngine,
    row_dimension: str,
    row_members: Sequence[Tuple[str, Tuple]],
    column_dimension: str,
    column_members: Sequence[Tuple[str, Tuple]],
    aggregate: str = "sum",
    selection: Mapping[str, Tuple] = None,
) -> PivotTable:
    """Compute a cross-tab over two dimensions of one engine.

    Args:
        engine: the cube engine.
        row_dimension / column_dimension: distinct dimension names.
        row_members / column_members: ``(label, (low, high))`` value
            ranges per axis (e.g. from a hierarchy's ``members()``).
        aggregate: ``"sum"``, ``"count"`` or ``"average"``.
        selection: optional constraints on *other* dimensions.

    Returns:
        A fully populated :class:`PivotTable` (R·C + R + C + 1 range
        queries; margins are queried, not summed from cells, so they are
        exact for every aggregate including ``average``).
    """
    if aggregate not in ("sum", "count", "average"):
        raise RangeError(
            f"unknown aggregate {aggregate!r}; choose sum, count, average"
        )
    if row_dimension == column_dimension:
        raise RangeError("row and column dimensions must differ")
    selection = dict(selection or {})
    for grouped in (row_dimension, column_dimension):
        if grouped in selection:
            raise RangeError(
                f"selection constrains the pivoted dimension {grouped!r}"
            )
    evaluate = getattr(engine, aggregate)
    table = PivotTable(
        row_dimension=row_dimension,
        column_dimension=column_dimension,
        aggregate=aggregate,
        row_labels=[label for label, _ in row_members],
        column_labels=[label for label, _ in column_members],
    )
    for row_label, row_bounds in row_members:
        for column_label, column_bounds in column_members:
            cell_selection = dict(selection)
            cell_selection[row_dimension] = row_bounds
            cell_selection[column_dimension] = column_bounds
            table.cells[(row_label, column_label)] = evaluate(cell_selection)
    for row_label, row_bounds in row_members:
        margin = dict(selection)
        margin[row_dimension] = row_bounds
        table.row_totals[row_label] = evaluate(margin)
    for column_label, column_bounds in column_members:
        margin = dict(selection)
        margin[column_dimension] = column_bounds
        table.column_totals[column_label] = evaluate(margin)
    table.grand_total = evaluate(selection or None)
    return table

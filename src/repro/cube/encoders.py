"""Dimension encoders: mapping attribute values to dense array indices.

The paper's model assumes each dimension is an integer coordinate in
``[0, n_i)`` with ``n_i`` known a priori ("the number of days in a year
... can be assumed to be static", Section 2). Real OLAP dimensions are
customer ages, dates, product categories. Encoders bridge the two: each
knows its domain size and provides an order-preserving (for range queries
to make sense) bijection between attribute values and indices.
"""

from __future__ import annotations

import abc
import datetime
from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.errors import EncodingError


class DimensionEncoder(abc.ABC):
    """Order-preserving mapping between attribute values and cell indices."""

    @abc.abstractmethod
    def spec(self) -> dict:
        """JSON-serializable description sufficient to rebuild the encoder."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of distinct indices (the dimension size ``n_i``)."""

    @abc.abstractmethod
    def encode(self, value) -> int:
        """Index of ``value``; raises :class:`EncodingError` if out of domain."""

    @abc.abstractmethod
    def decode(self, index: int):
        """Representative attribute value for ``index``."""

    def encode_range(self, low, high) -> Tuple[int, int]:
        """Inclusive index range covering attribute values ``[low, high]``.

        Default implementation encodes both endpoints; encoders whose
        domain is continuous (bins) override to clip instead of raise.
        """
        lo, hi = self.encode(low), self.encode(high)
        if lo > hi:
            raise EncodingError(f"inverted range: {low!r} > {high!r}")
        return lo, hi

    def _check_index(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise EncodingError(
                f"index {index} out of range for dimension of size {self.size}"
            )
        return index


class IntegerEncoder(DimensionEncoder):
    """Consecutive integers ``[minimum, maximum]`` mapped by offset.

    The natural encoder for the paper's CUSTOMER_AGE example.
    """

    def __init__(self, minimum: int, maximum: int) -> None:
        if maximum < minimum:
            raise EncodingError(f"empty integer domain [{minimum}, {maximum}]")
        self.minimum = int(minimum)
        self.maximum = int(maximum)

    @property
    def size(self) -> int:
        return self.maximum - self.minimum + 1

    def encode(self, value) -> int:
        try:
            v = int(value)
        except (TypeError, ValueError):
            raise EncodingError(f"{value!r} is not an integer") from None
        if not self.minimum <= v <= self.maximum:
            raise EncodingError(
                f"{value!r} outside integer domain [{self.minimum}, {self.maximum}]"
            )
        return v - self.minimum

    def decode(self, index: int) -> int:
        return self.minimum + self._check_index(int(index))

    def spec(self) -> dict:
        return {"type": "integer", "minimum": self.minimum,
                "maximum": self.maximum}


class CategoricalEncoder(DimensionEncoder):
    """Explicit ordered category list (e.g. regions, product lines).

    Range queries over categories select a contiguous run in the given
    order, so the order should be meaningful (alphabetical, hierarchy...).
    """

    def __init__(self, categories: Sequence) -> None:
        cats: List = list(categories)
        if not cats:
            raise EncodingError("category list must not be empty")
        if len(set(cats)) != len(cats):
            raise EncodingError("categories must be unique")
        self._categories = cats
        self._index = {c: i for i, c in enumerate(cats)}

    @property
    def size(self) -> int:
        return len(self._categories)

    def encode(self, value) -> int:
        try:
            return self._index[value]
        except (KeyError, TypeError):  # TypeError: unhashable value
            raise EncodingError(f"unknown category {value!r}") from None

    def decode(self, index: int):
        return self._categories[self._check_index(int(index))]

    def spec(self) -> dict:
        return {"type": "categorical", "categories": list(self._categories)}


class BinningEncoder(DimensionEncoder):
    """Continuous numeric values bucketed into half-open bins.

    ``edges = [e0, e1, ..., em]`` defines bins ``[e0, e1), [e1, e2), ...``
    with the final bin closed on the right. A value maps to the index of
    its bin; :meth:`decode` returns the bin's lower edge.
    """

    def __init__(self, edges: Sequence[float]) -> None:
        es = [float(e) for e in edges]
        if len(es) < 2:
            raise EncodingError("need at least two bin edges")
        if any(b <= a for a, b in zip(es, es[1:])):
            raise EncodingError("bin edges must be strictly increasing")
        self._edges = es

    @property
    def size(self) -> int:
        return len(self._edges) - 1

    def encode(self, value) -> int:
        try:
            v = float(value)
        except (TypeError, ValueError):
            raise EncodingError(f"{value!r} is not numeric") from None
        if v < self._edges[0] or v > self._edges[-1]:
            raise EncodingError(
                f"{value!r} outside bin range "
                f"[{self._edges[0]}, {self._edges[-1]}]"
            )
        if v == self._edges[-1]:  # the last bin is closed on the right
            return self.size - 1
        return bisect_right(self._edges, v) - 1

    def decode(self, index: int) -> float:
        return self._edges[self._check_index(int(index))]

    def encode_range(self, low, high) -> Tuple[int, int]:
        """Clip a numeric range to the binned domain instead of raising."""
        lo = max(float(low), self._edges[0])
        hi = min(float(high), self._edges[-1])
        if lo > hi:
            raise EncodingError(f"range [{low}, {high}] misses all bins")
        return self.encode(lo), self.encode(hi)

    def spec(self) -> dict:
        return {"type": "binning", "edges": list(self._edges)}


class DateEncoder(DimensionEncoder):
    """Calendar days mapped to day offsets from a start date.

    The natural encoder for the paper's DATE_OF_SALE example. Accepts
    ``datetime.date`` objects or ISO ``YYYY-MM-DD`` strings.
    """

    def __init__(self, start: "datetime.date | str", days: int) -> None:
        self.start = self._parse(start)
        if days < 1:
            raise EncodingError(f"need at least one day, got {days}")
        self.days = int(days)

    @staticmethod
    def _parse(value) -> datetime.date:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        try:
            return datetime.date.fromisoformat(str(value))
        except ValueError as exc:
            raise EncodingError(f"cannot parse date {value!r}") from exc

    @property
    def size(self) -> int:
        return self.days

    def encode(self, value) -> int:
        day = self._parse(value)
        offset = (day - self.start).days
        if not 0 <= offset < self.days:
            raise EncodingError(
                f"{day.isoformat()} outside "
                f"[{self.start.isoformat()}, +{self.days} days)"
            )
        return offset

    def decode(self, index: int) -> datetime.date:
        return self.start + datetime.timedelta(days=self._check_index(int(index)))

    def spec(self) -> dict:
        return {"type": "date", "start": self.start.isoformat(),
                "days": self.days}


class IdentityEncoder(DimensionEncoder):
    """Raw indices ``[0, size)`` passed through unchanged — the paper's model."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise EncodingError(f"dimension size must be >= 1, got {size}")
        self._size = int(size)

    @property
    def size(self) -> int:
        return self._size

    def encode(self, value) -> int:
        try:
            v = int(value)
        except (TypeError, ValueError):
            raise EncodingError(f"{value!r} is not an index") from None
        return self._check_index(v)

    def decode(self, index: int) -> int:
        return self._check_index(int(index))

    def spec(self) -> dict:
        return {"type": "identity", "size": self._size}


def encoder_from_spec(spec: dict) -> DimensionEncoder:
    """Rebuild an encoder from its :meth:`DimensionEncoder.spec` dict."""
    kind = spec.get("type")
    if kind == "integer":
        return IntegerEncoder(spec["minimum"], spec["maximum"])
    if kind == "categorical":
        return CategoricalEncoder(spec["categories"])
    if kind == "binning":
        return BinningEncoder(spec["edges"])
    if kind == "date":
        return DateEncoder(spec["start"], spec["days"])
    if kind == "identity":
        return IdentityEncoder(spec["size"])
    raise EncodingError(f"unknown encoder spec type {kind!r}")

"""The OLAP query engine: attribute-space queries over a range-sum method.

:class:`DataCubeEngine` is the user-facing object of the library's OLAP
layer. It owns a schema, aggregates a fact table into dense arrays, backs
them with any :class:`~repro.core.base.RangeSumMethod` (the RPS cube by
default), and answers the paper's motivating queries —

    "find the total sales for customers with an age from 37 to 52,
     over the past three months"

— as ``engine.sum({"age": (37, 52), "day": (d0, d1)})`` while absorbing a
continuous stream of new facts at the method's update cost.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple, Type

import numpy as np

from repro.aggregates.operators import AggregateCube
from repro.core.base import RangeSumMethod
from repro.core.rps import RelativePrefixSumCube
from repro.cube.builder import build_dense_arrays
from repro.cube.schema import CubeSchema


class DataCubeEngine:
    """Attribute-space OLAP queries over an instrumented range-sum backend.

    Args:
        schema: the cube schema (dimensions + measure).
        records: optional initial fact records to aggregate.
        method: a :class:`RangeSumMethod` subclass; defaults to the
            relative prefix sum cube.
        **method_kwargs: forwarded to the method constructor (e.g.
            ``box_size=16``).
    """

    def __init__(
        self,
        schema: CubeSchema,
        records: Iterable[Mapping] = (),
        method: Optional[Type[RangeSumMethod]] = None,
        **method_kwargs,
    ) -> None:
        self.schema = schema
        values, counts = build_dense_arrays(records, schema)
        self._aggregates = AggregateCube(
            values, counts, method=method or RelativePrefixSumCube,
            **method_kwargs,
        )

    # -- queries ---------------------------------------------------------------

    def sum(self, selection: Mapping[str, Tuple] = None):
        """Total measure over a per-dimension value selection.

        Omitted dimensions span their full extent; ``sum()`` with no
        selection totals the whole cube.
        """
        low, high = self.schema.encode_selection(selection or {})
        return self._aggregates.range_sum(low, high)

    def count(self, selection: Mapping[str, Tuple] = None):
        """Number of facts within the selection."""
        low, high = self.schema.encode_selection(selection or {})
        return self._aggregates.range_count(low, high)

    def average(self, selection: Mapping[str, Tuple] = None) -> float:
        """Mean measure per fact within the selection (nan if empty)."""
        low, high = self.schema.encode_selection(selection or {})
        return self._aggregates.range_average(low, high)

    def rolling_sum(
        self, dimension: str, window: int,
        selection: Mapping[str, Tuple] = None,
    ):
        """Window sums slid along one dimension across the selection."""
        low, high = self.schema.encode_selection(selection or {})
        axis = self.schema.axis_of(dimension)
        return self._aggregates.rolling_sum(axis, window, list(low), list(high))

    def rolling_average(
        self, dimension: str, window: int,
        selection: Mapping[str, Tuple] = None,
    ):
        """Window averages slid along one dimension across the selection."""
        low, high = self.schema.encode_selection(selection or {})
        axis = self.schema.axis_of(dimension)
        return self._aggregates.rolling_average(
            axis, window, list(low), list(high)
        )

    # -- updates -----------------------------------------------------------------

    def ingest(self, record: Mapping) -> None:
        """Absorb one new fact at the backend's update cost.

        This is the operation the paper's "near-current information"
        requirement is about: with the RPS backend it touches
        ``O(n^{d/2})`` cells instead of the prefix-sum method's
        ``O(n^d)``.

        The measure is validated against the backend's dtype *here*,
        at ingest time (:func:`~repro.cube.fact_table.validate_measure`
        applies the same promotion rules as ``coerce_deltas``), so a
        bad measure fails with a clear :class:`~repro.errors.SchemaError`
        naming the record instead of a dtype error deep in the apply
        cascade. Fractional measures on integer cubes remain legal —
        the backend promotes itself, as PR 8's coercion guarantees.
        """
        from repro.cube.fact_table import validate_measure

        coords, measure = self.schema.encode_record(record)
        validate_measure(measure, self.backend.dtype)
        self._aggregates.record(coords, measure)

    def ingest_many(self, records: Iterable[Mapping]) -> int:
        """Absorb a batch of facts; returns how many were ingested."""
        n = 0
        for record in records:
            self.ingest(record)
            n += 1
        return n

    def retract(self, record: Mapping) -> None:
        """Remove one previously ingested fact (corrections/chargebacks)."""
        coords, measure = self.schema.encode_record(record)
        self._aggregates.retract(coords, measure)

    # -- introspection -------------------------------------------------------------

    @property
    def backend(self) -> RangeSumMethod:
        """The range-sum structure over the measure values."""
        return self._aggregates.sums

    @property
    def count_backend(self) -> RangeSumMethod:
        """The range-sum structure over the fact counts."""
        return self._aggregates.counts

    def cells(self) -> np.ndarray:
        """Current dense measure cube (verification/debug; O(n^d))."""
        return self.backend.to_array()

    def describe(self) -> dict:
        """Summary statistics of the cube's current contents.

        One O(n^d) pass over the reconstructed arrays (a reporting
        convenience, not a query path): dimensions with sizes, total
        facts and measure, density (fraction of cells holding at least
        one fact), per-fact mean, and the backend's storage footprint.
        """
        values = self.backend.to_array()
        counts = self.count_backend.to_array()
        total_facts = int(counts.sum())
        total_measure = float(values.sum())
        return {
            "dimensions": {
                d.name: d.size for d in self.schema.dimensions
            },
            "measure": self.schema.measure,
            "cells": int(values.size),
            "occupied_cells": int(np.count_nonzero(counts)),
            "density": float(np.count_nonzero(counts) / counts.size),
            "facts": total_facts,
            "total": total_measure,
            "mean_per_fact": (
                total_measure / total_facts if total_facts else float("nan")
            ),
            "backend": self.backend.name,
            "storage_cells": self.backend.storage_cells()
            + self.count_backend.storage_cells(),
        }

    def __repr__(self) -> str:
        return (
            f"DataCubeEngine({self.schema!r}, "
            f"backend={type(self.backend).__name__})"
        )

"""OLAP data-cube layer: schemas, encoders, fact tables, query engine."""

from repro.cube.builder import build_dense_arrays, build_value_array
from repro.cube.encoders import (
    BinningEncoder,
    CategoricalEncoder,
    DateEncoder,
    DimensionEncoder,
    IdentityEncoder,
    IntegerEncoder,
)
from repro.cube.engine import DataCubeEngine
from repro.cube.fact_table import FactTable
from repro.cube.hierarchy import BandHierarchy, CalendarHierarchy, group_by
from repro.cube.multi import MultiMeasureEngine
from repro.cube.pivot import PivotTable, pivot
from repro.cube.rolling_window import RollingWindowEngine
from repro.cube.query import (
    ParsedQuery,
    RangeUnion,
    Selection,
    execute_query,
    parse_query,
)
from repro.cube.schema import CubeSchema, Dimension

__all__ = [
    "BandHierarchy",
    "BinningEncoder",
    "CalendarHierarchy",
    "CategoricalEncoder",
    "CubeSchema",
    "DataCubeEngine",
    "MultiMeasureEngine",
    "ParsedQuery",
    "PivotTable",
    "RangeUnion",
    "RollingWindowEngine",
    "Selection",
    "execute_query",
    "group_by",
    "parse_query",
    "pivot",
    "DateEncoder",
    "Dimension",
    "DimensionEncoder",
    "FactTable",
    "IdentityEncoder",
    "IntegerEncoder",
    "build_dense_arrays",
    "build_value_array",
]

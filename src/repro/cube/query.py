"""Structured range queries and a small textual query language.

The paper's queries are conjunctions of per-dimension ranges ("age from
37 to 52, over the past three months"). This module gives them a
first-class representation:

* :class:`Selection` — a validated conjunction of per-dimension value
  ranges, composable with :meth:`Selection.intersect`,
* :class:`RangeUnion` — a union of disjoint selections (OR queries),
  answered as a sum of range sums (still O(1) per member),
* :func:`parse_query` — a tiny SQL-ish surface::

      SUM(sales) WHERE age BETWEEN 37 AND 52 AND day BETWEEN '2026-01-01' AND '2026-03-31'
      AVG(sales) WHERE age = 40
      COUNT(sales)

  supporting ``SUM`` / ``COUNT`` / ``AVG``, ``BETWEEN x AND y``, ``= x``,
  and conjunction with ``AND``. The grammar is deliberately small: each
  predicate must name a distinct dimension, mirroring the data-cube
  model where a query is a box.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.cube.schema import CubeSchema
from repro.errors import RangeError, SchemaError

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z0-9_.-]*)
      | (?P<symbol>[(),=])
    )
    """,
    re.VERBOSE,
)

_AGGREGATES = ("SUM", "COUNT", "AVG", "AVERAGE")


@dataclass(frozen=True)
class Selection:
    """A conjunction of inclusive per-dimension value ranges.

    ``bounds`` maps dimension names to ``(low, high)`` attribute-value
    pairs; dimensions not present span their full extent.
    """

    bounds: Mapping[str, Tuple] = field(default_factory=dict)

    def intersect(self, other: "Selection") -> "Selection":
        """Conjunction of two selections (per-dimension range overlap).

        Raises :class:`RangeError` when the ranges on some dimension do
        not overlap (the conjunction selects nothing — surfaced rather
        than silently returning an empty box, since encoders cannot
        represent empty ranges).
        """
        merged: Dict[str, Tuple] = dict(self.bounds)
        for name, (low, high) in other.bounds.items():
            if name in merged:
                lo0, hi0 = merged[name]
                low = max(lo0, low)
                high = min(hi0, high)
                if low > high:
                    raise RangeError(
                        f"empty intersection on dimension {name!r}: "
                        f"[{lo0}, {hi0}] and {other.bounds[name]}"
                    )
            merged[name] = (low, high)
        return Selection(merged)

    def to_index_range(self, schema: CubeSchema):
        """Encode against a schema into inclusive index bounds."""
        return schema.encode_selection(dict(self.bounds))

    def __bool__(self) -> bool:
        return bool(self.bounds)


@dataclass(frozen=True)
class RangeUnion:
    """A union of pairwise-disjoint selections (an OR query).

    The aggregate over the union is the sum of per-member aggregates; the
    constructor does not check disjointness (value-space overlap cannot be
    decided without a schema) — :meth:`validate_disjoint` does, given one.
    """

    members: Tuple[Selection, ...]

    def __init__(self, members) -> None:
        object.__setattr__(self, "members", tuple(members))
        if not self.members:
            raise RangeError("a range union needs at least one member")

    def validate_disjoint(self, schema: CubeSchema) -> None:
        """Raise :class:`RangeError` if any two members' boxes overlap."""
        boxes = [m.to_index_range(schema) for m in self.members]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                (lo1, hi1), (lo2, hi2) = boxes[i], boxes[j]
                if all(
                    l1 <= h2 and l2 <= h1
                    for l1, h1, l2, h2 in zip(lo1, hi1, lo2, hi2)
                ):
                    raise RangeError(
                        f"union members {i} and {j} overlap: "
                        f"{self.members[i].bounds} / {self.members[j].bounds}"
                    )


@dataclass(frozen=True)
class ParsedQuery:
    """Outcome of :func:`parse_query`: an aggregate over a selection."""

    aggregate: str            # "sum", "count", or "average"
    measure: str
    selection: Selection


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise RangeError(f"cannot tokenize query near {remainder[:20]!r}")
        pos = match.end()
        for kind in ("string", "number", "word", "symbol"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    """Recursive-descent parser for the mini query language."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self):
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self, expected_kind=None, expected_value=None):
        token = self._peek()
        if token is None:
            raise RangeError("unexpected end of query")
        kind, value = token
        if expected_kind and kind != expected_kind:
            raise RangeError(
                f"expected {expected_kind}, got {value!r}"
            )
        if expected_value and value.upper() != expected_value:
            raise RangeError(
                f"expected {expected_value!r}, got {value!r}"
            )
        self._pos += 1
        return kind, value

    def _literal(self):
        kind, value = self._next()
        if kind == "string":
            return value[1:-1]
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "word":
            return value  # bare word: a category name or ISO date
        raise RangeError(f"expected a literal, got {value!r}")

    def parse(self) -> ParsedQuery:
        _, aggregate = self._next("word")
        aggregate = aggregate.upper()
        if aggregate not in _AGGREGATES:
            raise RangeError(
                f"unknown aggregate {aggregate!r}; "
                f"expected one of {_AGGREGATES}"
            )
        self._next("symbol", "(")
        _, measure = self._next("word")
        self._next("symbol", ")")
        bounds: Dict[str, Tuple] = {}
        token = self._peek()
        if token is not None:
            self._next("word", "WHERE")
            while True:
                self._predicate(bounds)
                token = self._peek()
                if token is None:
                    break
                self._next("word", "AND")
        canonical = {
            "SUM": "sum", "COUNT": "count",
            "AVG": "average", "AVERAGE": "average",
        }[aggregate]
        return ParsedQuery(canonical, measure, Selection(bounds))

    def _predicate(self, bounds: Dict[str, Tuple]) -> None:
        _, dimension = self._next("word")
        if dimension in bounds:
            raise RangeError(
                f"dimension {dimension!r} constrained twice; combine the "
                f"ranges into one BETWEEN"
            )
        kind, op = self._next()
        if kind == "word" and op.upper() == "BETWEEN":
            low = self._literal()
            self._next("word", "AND")
            high = self._literal()
            bounds[dimension] = (low, high)
        elif kind == "symbol" and op == "=":
            value = self._literal()
            bounds[dimension] = (value, value)
        else:
            raise RangeError(
                f"expected BETWEEN or = after {dimension!r}, got {op!r}"
            )


def parse_query(text: str) -> ParsedQuery:
    """Parse one mini-language query string.

    Raises :class:`RangeError` on any syntax problem.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise RangeError("empty query")
    return _Parser(tokens).parse()


def execute_query(engine, text: str):
    """Parse and run a query against a :class:`~repro.cube.engine.DataCubeEngine`.

    The measure named in the query must match the engine's schema (the
    engine holds one measure; naming it keeps queries self-describing).
    """
    parsed = parse_query(text)
    if parsed.measure != engine.schema.measure:
        raise SchemaError(
            f"query measures {parsed.measure!r} but the engine holds "
            f"{engine.schema.measure!r}"
        )
    method = getattr(engine, parsed.aggregate)
    return method(dict(parsed.selection.bounds))

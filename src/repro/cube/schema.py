"""Cube schemas: named dimensions plus a measure attribute.

Mirrors the paper's model (Section 2): "certain attributes are chosen to
be measure attributes ... other attributes are selected as dimensions".
A :class:`CubeSchema` binds each dimension name to an encoder and knows
how to translate attribute-space records and ranges into dense-array
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.cube.encoders import DimensionEncoder
from repro.errors import SchemaError


@dataclass(frozen=True)
class Dimension:
    """A named functional attribute with its index encoder."""

    name: str
    encoder: DimensionEncoder

    @property
    def size(self) -> int:
        """Number of distinct values — the dimension size ``n_i``."""
        return self.encoder.size


class CubeSchema:
    """Dimensions + measure, with record/range encoding helpers.

    Args:
        dimensions: ordered dimensions; their order fixes the array axes.
        measure: name of the measure attribute (e.g. ``"sales"``).
    """

    def __init__(self, dimensions: Sequence[Dimension], measure: str) -> None:
        dims = list(dimensions)
        if not dims:
            raise SchemaError("a cube needs at least one dimension")
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in {names}")
        if measure in names:
            raise SchemaError(
                f"measure {measure!r} collides with a dimension name"
            )
        if not measure:
            raise SchemaError("measure name must be non-empty")
        self.dimensions: List[Dimension] = dims
        self.measure = measure
        self._by_name: Dict[str, int] = {d.name: i for i, d in enumerate(dims)}

    @property
    def shape(self) -> Tuple[int, ...]:
        """Dense-array shape ``(n_1, ..., n_d)``."""
        return tuple(d.size for d in self.dimensions)

    @property
    def ndim(self) -> int:
        """Number of dimensions ``d``."""
        return len(self.dimensions)

    def axis_of(self, name: str) -> int:
        """Array axis of a dimension by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown dimension {name!r}; have "
                f"{sorted(self._by_name)}"
            ) from None

    def dimension(self, name: str) -> Dimension:
        """Dimension object by name."""
        return self.dimensions[self.axis_of(name)]

    # -- record / range encoding ---------------------------------------------

    def encode_record(self, record: Mapping) -> Tuple[Tuple[int, ...], float]:
        """Translate a fact record into ``(cell coordinates, measure value)``.

        The record must contain every dimension and the measure; extra keys
        are ignored (fact tables often carry attributes the cube drops).
        The measure must be a finite number — a string, ``None``,
        boolean, or NaN measure raises :class:`~repro.errors.SchemaError`
        here, at the encoding boundary, rather than poisoning an
        aggregate deep inside the apply path.
        """
        from repro.cube.fact_table import validate_measure

        coords = []
        for dim in self.dimensions:
            if dim.name not in record:
                raise SchemaError(
                    f"record missing dimension {dim.name!r}: {dict(record)!r}"
                )
            coords.append(dim.encoder.encode(record[dim.name]))
        if self.measure not in record:
            raise SchemaError(
                f"record missing measure {self.measure!r}: {dict(record)!r}"
            )
        measure = record[self.measure]
        validate_measure(measure)
        return tuple(coords), measure

    def encode_selection(
        self, selection: Mapping[str, Tuple]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Translate per-dimension value ranges into an index range.

        ``selection`` maps dimension names to inclusive ``(low, high)``
        value pairs; omitted dimensions span their full extent — exactly
        the paper's example "age from 37 to 52, over the past three
        months" with other dimensions unconstrained.
        """
        unknown = set(selection) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown dimensions in selection: {sorted(unknown)}")
        low, high = [], []
        for dim in self.dimensions:
            if dim.name in selection:
                bounds = selection[dim.name]
                if len(bounds) != 2:
                    raise SchemaError(
                        f"selection for {dim.name!r} must be (low, high), "
                        f"got {bounds!r}"
                    )
                lo, hi = dim.encoder.encode_range(bounds[0], bounds[1])
            else:
                lo, hi = 0, dim.size - 1
            low.append(lo)
            high.append(hi)
        return tuple(low), tuple(high)

    def __repr__(self) -> str:
        dims = ", ".join(f"{d.name}[{d.size}]" for d in self.dimensions)
        return f"CubeSchema({dims}; measure={self.measure!r})"

"""Building dense cube arrays from fact tables.

Each cell of the array ``A`` holds the aggregate (sum) of the measure over
all facts mapping to that cell, plus — in parallel — a count cube used by
the COUNT/AVERAGE aggregates, exactly the construction the paper sketches
for its SALES x (CUSTOMER_AGE, DATE_OF_SALE) example.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple

import numpy as np

from repro.cube.schema import CubeSchema


def build_dense_arrays(
    records: Iterable[Mapping], schema: CubeSchema
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate fact records into (values, counts) arrays for ``schema``.

    Returns:
        ``(values, counts)`` — ``values[c]`` is the summed measure of all
        facts at cell ``c``; ``counts[c]`` the number of such facts.
    """
    values = np.zeros(schema.shape, dtype=np.float64)
    counts = np.zeros(schema.shape, dtype=np.int64)
    for record in records:
        coords, measure = schema.encode_record(record)
        values[coords] += measure
        counts[coords] += 1
    return values, counts


def build_value_array(
    records: Iterable[Mapping], schema: CubeSchema
) -> np.ndarray:
    """Aggregate records into the measure cube only (no counts)."""
    values, _ = build_dense_arrays(records, schema)
    return values

"""Multi-measure cubes: several measures over one set of dimensions.

Real fact tables carry more than one measure (sales *and* cost *and*
discount...). :class:`MultiMeasureEngine` keeps one
:class:`~repro.cube.engine.DataCubeEngine` per measure over a shared
dimension schema, ingests each fact once into all of them, and adds the
derived arithmetic analysts actually ask for (ratios and differences of
measure totals over the same selection), all at the backing method's
query cost per measure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from repro.core.base import RangeSumMethod
from repro.cube.engine import DataCubeEngine
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import SchemaError


class MultiMeasureEngine:
    """Several measures aggregated over one dimension space.

    Args:
        dimensions: shared dimensions (order fixes the axes).
        measures: measure attribute names, e.g. ``["sales", "cost"]``.
        records: optional initial fact records; each must carry every
            dimension and every measure.
        method: backend :class:`RangeSumMethod` subclass for all measures.
        **method_kwargs: forwarded to every backend constructor.
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        measures: Sequence[str],
        records: Iterable[Mapping] = (),
        method: Optional[Type[RangeSumMethod]] = None,
        **method_kwargs,
    ) -> None:
        names = list(measures)
        if not names:
            raise SchemaError("need at least one measure")
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate measure names in {names}")
        dimensions = list(dimensions)
        self.measures: List[str] = names
        self._engines: Dict[str, DataCubeEngine] = {}
        records = list(records)
        for name in names:
            schema = CubeSchema(dimensions, measure=name)
            self._engines[name] = DataCubeEngine(
                schema, records, method=method, **method_kwargs
            )

    @property
    def schema(self) -> CubeSchema:
        """The schema of the first measure (dimensions are shared)."""
        return self._engines[self.measures[0]].schema

    def engine(self, measure: str) -> DataCubeEngine:
        """The per-measure engine (for measure-specific operations)."""
        try:
            return self._engines[measure]
        except KeyError:
            raise SchemaError(
                f"unknown measure {measure!r}; have {self.measures}"
            ) from None

    # -- ingest ---------------------------------------------------------------

    def ingest(self, record: Mapping) -> None:
        """Absorb one fact into every measure's cube."""
        for name in self.measures:
            self._engines[name].ingest(record)

    def ingest_many(self, records: Iterable[Mapping]) -> int:
        """Absorb a batch of facts; returns how many."""
        count = 0
        for record in records:
            self.ingest(record)
            count += 1
        return count

    # -- queries ----------------------------------------------------------------

    def sum(self, measure: str, selection: Mapping[str, Tuple] = None):
        """Total of one measure over a selection."""
        return self.engine(measure).sum(selection)

    def count(self, selection: Mapping[str, Tuple] = None):
        """Fact count over a selection (identical across measures)."""
        return self._engines[self.measures[0]].count(selection)

    def average(self, measure: str, selection: Mapping[str, Tuple] = None):
        """Per-fact mean of one measure over a selection."""
        return self.engine(measure).average(selection)

    def totals(self, selection: Mapping[str, Tuple] = None) -> Dict[str, float]:
        """All measures' totals over one selection, in one call."""
        return {
            name: self._engines[name].sum(selection)
            for name in self.measures
        }

    def ratio(
        self,
        numerator: str,
        denominator: str,
        selection: Mapping[str, Tuple] = None,
    ) -> float:
        """``SUM(numerator) / SUM(denominator)`` over one selection.

        The classic derived measure (margin = profit/sales, average
        ticket = sales/count...); ``nan`` when the denominator totals 0.
        """
        denominator_total = float(self.sum(denominator, selection))
        if denominator_total == 0.0:
            return float("nan")
        return float(self.sum(numerator, selection)) / denominator_total

    def difference(
        self,
        left: str,
        right: str,
        selection: Mapping[str, Tuple] = None,
    ) -> float:
        """``SUM(left) − SUM(right)`` over one selection (e.g. profit)."""
        return float(self.sum(left, selection)) - float(
            self.sum(right, selection)
        )

    def __repr__(self) -> str:
        return (
            f"MultiMeasureEngine(measures={self.measures}, "
            f"shape={self.schema.shape})"
        )

"""Deterministic fault injection for chaos and recovery testing.

Production storage engines are judged by how they fail, not only by how
fast they run. This module provides one seeded, reproducible description
of "what goes wrong and when" — a :class:`FaultPlan` — that the layers
with failure modes consult at their natural injection points:

* :class:`~repro.storage.disk.SimulatedDisk` asks the plan on every page
  read and write (read corruption, write failures, latency spikes),
* the WAL file layer (:mod:`repro.serve.wal`) asks it on every record
  append (fail-nth-write, torn writes that leave a partial record on
  disk exactly as a mid-``write(2)`` power loss would),
* the :class:`~repro.serve.CubeService` writer loop asks it before
  applying each update group (thread crash at a chosen group, apply
  latency spikes),
* the cluster layer (:mod:`repro.cluster`) asks it before every
  node-level read/submit/probe (query-path latency spikes for hedged
  reads, node kills, and stateful network partitions driven by
  :meth:`FaultPlan.partition` / :meth:`FaultPlan.heal`).

Every injection site counts ordinals independently and deterministically
— the same plan against the same workload injects the same faults — so
a chaos run that finds a bug is replayable from its seed alone. Injected
failures raise :class:`InjectedFault` so tests can distinguish planned
chaos from genuine bugs.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ReproError

Ordinals = Union[None, int, Sequence[int]]


class InjectedFault(ReproError):
    """An artificial failure raised by a :class:`FaultPlan` injection."""


class NodePartitioned(InjectedFault):
    """A simulated network partition made the target node unreachable."""


class NodeKilled(InjectedFault):
    """A node-kill plan took the target node down mid-operation."""


def _normalize(ordinals: Ordinals) -> Tuple[int, ...]:
    """Accept ``None``, one ordinal, or a sequence of ordinals (1-based)."""
    if ordinals is None:
        return ()
    if isinstance(ordinals, (int, np.integer)):
        ordinals = (int(ordinals),)
    out = tuple(sorted(int(n) for n in ordinals))
    if out and out[0] < 1:
        raise ValueError(f"fault ordinals are 1-based, got {out[0]}")
    return out


class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Args:
        seed: drives every random choice the plan makes (which cell a
            corrupted read flips, jittered latency) — two plans with the
            same seed and schedule behave identically.
        fail_write_at: 1-based write ordinals (disk page writes and WAL
            appends share the schedule but count separately per site)
            that raise :class:`InjectedFault` *before* any bytes move.
        torn_write_at: 1-based WAL-append ordinals that persist only a
            prefix of the record and then raise — the on-disk image is a
            torn tail, exactly what a crash mid-append leaves behind.
        torn_fraction: fraction of the record's bytes a torn write
            persists (clamped to leave at least one byte missing).
        corrupt_read_at: 1-based read ordinals whose returned buffer has
            one cell perturbed (the medium lied; on-disk state intact).
        latency_at: 1-based ordinals (per site) that incur
            ``latency_seconds`` of modeled or real delay.
        latency_seconds: magnitude of each injected latency spike.
        crash_at_group: update-group sequence number at which the
            serving writer thread raises before applying — simulating a
            writer crash at a chosen point in the update stream.
        read_latency_at: 1-based ordinals of *node-level read/query
            operations* (per node, counted by :meth:`on_node_op`) that
            incur ``read_latency_seconds`` of real delay. This is the
            query-path complement of ``latency_at`` (which covers
            disk/WAL sites) and is what makes hedged reads testable
            deterministically: spike one replica, watch the hedge win.
        read_latency_nodes: restrict ``read_latency_at`` to these node
            ids; ``None`` applies the schedule to every node.
        read_latency_seconds: magnitude of each injected read spike.
        kill_node_at: mapping ``node_id -> 1-based operation ordinal``;
            once the node's operation counter reaches the ordinal, every
            operation on it raises :class:`NodeKilled` until
            :meth:`revive` — a permanent node death, unlike the
            transient unreachability of a partition.
        reshard_fail_at: migration phase names (``"plan"``, ``"seed"``,
            ``"tail_replay"``, ``"dual_write"``, ``"flip"``,
            ``"verify"``, ``"retire"``) at whose *entry* the reshard
            coordinator raises :class:`InjectedFault` — a coordinator
            crash at that exact phase boundary. Each phase fires once.
        ingest_crash_at: mapping ``stage name -> 1-based ordinal``; the
            ingest coordinator (:mod:`repro.ingest`) consults
            :meth:`on_ingest_stage` at every pipeline stage boundary
            (``"chunk"``, ``"encode"``, ``"deadletter"``, ``"intent"``,
            ``"submit"``, ``"checkpoint"``, ``"roll"``) and the plan
            raises :class:`InjectedFault` the n-th time that stage is
            reached — a coordinator crash at that exact boundary. Each
            scheduled stage fires once.

    Partitions are *stateful*, not scheduled: a chaos driver calls
    :meth:`partition` / :meth:`heal` around the window it wants, and
    every node-level operation in between raises
    :class:`NodePartitioned`. That keeps kill/partition/heal rounds
    deterministic without encoding wall-clock windows in the plan.

    The plan is thread-safe: the serving layer consults it from reader,
    writer, and submitter threads concurrently.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        fail_write_at: Ordinals = None,
        torn_write_at: Ordinals = None,
        torn_fraction: float = 0.5,
        corrupt_read_at: Ordinals = None,
        latency_at: Ordinals = None,
        latency_seconds: float = 0.0,
        crash_at_group: Optional[int] = None,
        read_latency_at: Ordinals = None,
        read_latency_nodes: Optional[Sequence[str]] = None,
        read_latency_seconds: float = 0.0,
        kill_node_at: Optional[Dict[str, int]] = None,
        reshard_fail_at: Optional[Sequence[str]] = None,
        ingest_crash_at: Optional[Dict[str, int]] = None,
    ) -> None:
        if not 0.0 <= float(torn_fraction) <= 1.0:
            raise ValueError(
                f"torn_fraction must be in [0, 1], got {torn_fraction}"
            )
        self.seed = int(seed)
        self.fail_write_at = _normalize(fail_write_at)
        self.torn_write_at = _normalize(torn_write_at)
        self.torn_fraction = float(torn_fraction)
        self.corrupt_read_at = _normalize(corrupt_read_at)
        self.latency_at = _normalize(latency_at)
        self.latency_seconds = float(latency_seconds)
        self.crash_at_group = (
            None if crash_at_group is None else int(crash_at_group)
        )
        self.read_latency_at = _normalize(read_latency_at)
        self.read_latency_nodes = (
            None
            if read_latency_nodes is None
            else frozenset(str(node) for node in read_latency_nodes)
        )
        self.read_latency_seconds = float(read_latency_seconds)
        self.kill_node_at = {
            str(node): int(ordinal)
            for node, ordinal in (kill_node_at or {}).items()
        }
        for node, ordinal in self.kill_node_at.items():
            if ordinal < 1:
                raise ValueError(
                    f"kill_node_at ordinals are 1-based, got {ordinal} "
                    f"for node {node!r}"
                )
        if isinstance(reshard_fail_at, str):
            reshard_fail_at = (reshard_fail_at,)
        self.reshard_fail_at = frozenset(
            str(phase) for phase in (reshard_fail_at or ())
        )
        self.ingest_crash_at = {
            str(stage): int(ordinal)
            for stage, ordinal in (ingest_crash_at or {}).items()
        }
        for stage, ordinal in self.ingest_crash_at.items():
            if ordinal < 1:
                raise ValueError(
                    f"ingest_crash_at ordinals are 1-based, got {ordinal} "
                    f"for stage {stage!r}"
                )
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._ordinals: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}
        self._partitioned: set = set()
        self._killed: set = set()
        self._reshard_fired: set = set()
        self._ingest_fired: set = set()

    # -- bookkeeping ---------------------------------------------------------

    def _tick(self, site: str) -> int:
        """Advance and return the 1-based ordinal for one injection site."""
        self._ordinals[site] = self._ordinals.get(site, 0) + 1
        return self._ordinals[site]

    def _count(self, kind: str) -> None:
        self._injected[kind] = self._injected.get(kind, 0) + 1

    def stats(self) -> Dict[str, int]:
        """Injected-fault tallies by kind (empty until something fires)."""
        with self._lock:
            return dict(self._injected)

    # -- injection points ----------------------------------------------------

    def on_disk_write(self, site: str = "disk") -> float:
        """Consult before a page write; returns extra modeled latency.

        Raises :class:`InjectedFault` on a scheduled write failure —
        before the write mutates anything, like an I/O error surfaced by
        the controller.
        """
        with self._lock:
            n = self._tick(f"{site}.write")
            extra = self._latency(f"{site}.write.latency")
            if n in self.fail_write_at:
                self._count("write_failures")
                raise InjectedFault(
                    f"injected write failure at {site} write #{n}"
                )
        return extra

    def on_disk_read(self, site: str = "disk") -> Tuple[bool, float]:
        """Consult before a page read.

        Returns ``(corrupt, extra_latency)``: when ``corrupt`` is true
        the caller must perturb the buffer it hands back (the plan's rng
        decides where via :meth:`corruption_offset`).
        """
        with self._lock:
            n = self._tick(f"{site}.read")
            extra = self._latency(f"{site}.read.latency")
            corrupt = n in self.corrupt_read_at
            if corrupt:
                self._count("read_corruptions")
        return corrupt, extra

    def corruption_offset(self, size: int) -> int:
        """Seeded choice of which cell/byte a corrupted read perturbs."""
        with self._lock:
            return int(self._rng.integers(0, max(1, int(size))))

    def on_wal_append(
        self, record_bytes: int
    ) -> Tuple[str, int]:
        """Consult before appending one WAL record.

        Returns ``(action, nbytes)`` where action is ``"ok"`` (append
        normally), ``"fail"`` (raise without writing), or ``"torn"``
        (write only ``nbytes`` of the record, then raise — the torn
        image stays on disk).
        """
        with self._lock:
            n = self._tick("wal.append")
            if n in self.fail_write_at:
                self._count("wal_write_failures")
                return "fail", 0
            if n in self.torn_write_at:
                self._count("wal_torn_writes")
                keep = int(record_bytes * self.torn_fraction)
                keep = min(max(keep, 1), record_bytes - 1)
                return "torn", keep
        return "ok", int(record_bytes)

    def on_apply_group(self, seq: int) -> float:
        """Consult from the writer loop before applying group ``seq``.

        Raises :class:`InjectedFault` at the planned crash group (once);
        otherwise returns real seconds of injected apply latency.
        """
        with self._lock:
            self._tick("writer.group")
            extra = 0.0
            if self.latency_seconds and seq in self.latency_at:
                self._count("latency_spikes")
                extra = self.latency_seconds * (
                    0.5 + float(self._rng.random())
                )
            if self.crash_at_group is not None and seq == self.crash_at_group:
                self._count("writer_crashes")
                raise InjectedFault(
                    f"injected writer crash at group {seq}"
                )
        return extra

    # -- cluster-level injection points --------------------------------------

    def partition(self, *node_ids: str) -> None:
        """Make ``node_ids`` unreachable until :meth:`heal`.

        Every subsequent node-level operation on them raises
        :class:`NodePartitioned`; the nodes themselves stay healthy —
        exactly a network partition, not a crash.
        """
        with self._lock:
            for node in node_ids:
                self._partitioned.add(str(node))
            self._count("partitions")

    def heal(self, *node_ids: str) -> None:
        """End the partition for ``node_ids`` (all of them when empty)."""
        with self._lock:
            if node_ids:
                for node in node_ids:
                    self._partitioned.discard(str(node))
            else:
                self._partitioned.clear()

    def is_partitioned(self, node_id: str) -> bool:
        """Whether ``node_id`` is currently behind the partition."""
        with self._lock:
            return str(node_id) in self._partitioned

    def kill(self, node_id: str) -> None:
        """Kill ``node_id`` now (no ordinal needed) until :meth:`revive`.

        The chaos driver's imperative complement to ``kill_node_at``:
        every subsequent operation on the node raises
        :class:`NodeKilled`.
        """
        with self._lock:
            if str(node_id) not in self._killed:
                self._killed.add(str(node_id))
                self._count("node_kills")

    def revive(self, node_id: str) -> None:
        """Undo a :class:`NodeKilled` verdict for ``node_id`` (the chaos
        driver restarted the node)."""
        with self._lock:
            self._killed.discard(str(node_id))

    def on_node_op(self, node_id: str, kind: str = "read") -> float:
        """Consult before one cluster-level operation against a node.

        ``kind`` is ``"read"``, ``"submit"``, or ``"probe"``. Raises
        :class:`NodeKilled` once the node's kill ordinal is reached (and
        forever after, until :meth:`revive`), :class:`NodePartitioned`
        while the node is behind a partition, and otherwise returns real
        seconds of injected read latency (``read_latency_at`` schedule,
        ``kind == "read"`` only).
        """
        node_id = str(node_id)
        with self._lock:
            ops = self._tick(f"node.{node_id}.op")
            n = self._tick(f"node.{node_id}.{kind}")
            kill_at = self.kill_node_at.get(node_id)
            if node_id in self._killed or (
                kill_at is not None and ops >= kill_at
            ):
                if node_id not in self._killed:
                    self._killed.add(node_id)
                    self._count("node_kills")
                raise NodeKilled(
                    f"injected node kill: {node_id} died at op #{ops}"
                )
            if node_id in self._partitioned:
                self._count("partition_drops")
                raise NodePartitioned(
                    f"injected partition: {node_id} is unreachable"
                )
            extra = 0.0
            if (
                kind == "read"
                and self.read_latency_seconds
                and n in self.read_latency_at
                and (
                    self.read_latency_nodes is None
                    or node_id in self.read_latency_nodes
                )
            ):
                self._count("read_latency_spikes")
                extra = self.read_latency_seconds * (
                    0.5 + float(self._rng.random())
                )
        return extra

    def on_reshard_phase(self, phase: str) -> None:
        """Consult at the entry of one reshard migration phase.

        Raises :class:`InjectedFault` (once per phase) when the plan
        schedules a coordinator crash at that boundary — the reshard
        soak's way of proving every phase either completes or rolls
        back with zero acked-group loss.
        """
        phase = str(phase)
        with self._lock:
            self._tick(f"reshard.{phase}")
            if (
                phase in self.reshard_fail_at
                and phase not in self._reshard_fired
            ):
                self._reshard_fired.add(phase)
                self._count("reshard_phase_failures")
                raise InjectedFault(
                    f"injected reshard failure entering phase {phase!r}"
                )

    def on_ingest_stage(self, stage: str) -> None:
        """Consult at one ingest pipeline stage boundary.

        Raises :class:`InjectedFault` (once per scheduled stage) when
        the stage's ordinal matches the plan — the ingest crash-matrix's
        way of proving that a coordinator death at any boundary resumes
        to the exact same cube with no lost or double-applied rows.
        """
        stage = str(stage)
        with self._lock:
            n = self._tick(f"ingest.{stage}")
            crash_at = self.ingest_crash_at.get(stage)
            if (
                crash_at is not None
                and n >= crash_at
                and stage not in self._ingest_fired
            ):
                self._ingest_fired.add(stage)
                self._count("ingest_stage_crashes")
                raise InjectedFault(
                    f"injected ingest coordinator crash at stage "
                    f"{stage!r} #{n}"
                )

    def _latency(self, kind: str) -> float:
        """Latency contribution for the site whose ordinal just ticked.

        Must be called with the lock held, immediately after
        :meth:`_tick` on the matching base site.
        """
        site = kind.rsplit(".latency", 1)[0]
        if (
            self.latency_seconds
            and self._ordinals.get(site, 0) in self.latency_at
        ):
            self._count("latency_spikes")
            return self.latency_seconds * (0.5 + float(self._rng.random()))
        return 0.0

    def __repr__(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in (
            "fail_write_at",
            "torn_write_at",
            "corrupt_read_at",
            "latency_at",
            "read_latency_at",
        ):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.crash_at_group is not None:
            parts.append(f"crash_at_group={self.crash_at_group}")
        if self.kill_node_at:
            parts.append(f"kill_node_at={self.kill_node_at}")
        if self.reshard_fail_at:
            parts.append(f"reshard_fail_at={sorted(self.reshard_fail_at)}")
        if self.ingest_crash_at:
            parts.append(f"ingest_crash_at={self.ingest_crash_at}")
        return f"FaultPlan({', '.join(parts)})"

"""The asyncio serving tier: sockets in front of the cube stack.

:class:`CubeServer` listens on a TCP port, speaks the length-prefixed
JSON protocol of :mod:`repro.net.protocol`, and fronts any of the three
query surfaces the library already has — a
:class:`~repro.serve.CubeService`, a
:class:`~repro.cluster.CubeCluster`, or a
:class:`~repro.routing.QueryRouter` — without those layers knowing a
socket exists.

Design rules, in order of importance:

* **The event loop never blocks and never dies.** Every backend call
  (reads included — a flush can take milliseconds) runs on a thread
  pool via ``run_in_executor``; every exception a handler raises is
  mapped to a typed wire error and answered, not propagated into the
  loop.
* **Backpressure is rejection, not buffering.** Admission control is a
  hard cap on in-flight backend calls: request number ``max_inflight+1``
  is refused *immediately* with ``overloaded`` + ``retry_after_s``,
  mirroring how :meth:`CubeService.submit_batch
  <repro.serve.service.CubeService.submit_batch>` refuses with
  :class:`~repro.errors.ServiceOverloadedError` when its bounded queue
  is full — which also passes through verbatim. The server holds no
  queue of its own, so memory stays bounded no matter how many clients
  pile on.
* **The client's budget is the deadline.** A request's ``deadline_ms``
  becomes a :class:`~repro.deadline.Deadline` that is checked before
  dispatch and threaded into the backend, so a query the client has
  already given up on is not half-executed server-side.

Connections are handled sequentially per socket (one request, one
response — matching the client), concurrently across sockets.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.deadline import Deadline
from repro.errors import ProtocolError, ServiceOverloadedError
from repro.metrics.net import NetMetrics
from repro.net.auth import Authenticator, Tenant
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    error_payload,
    read_frame,
)
from repro.routing.router import QueryRouter, wrap_backend

#: queries per chunk frame on the streaming endpoint
DEFAULT_STREAM_CHUNK = 256


class _RouterAdapter:
    """Expose a :class:`QueryRouter` through the backend protocol the
    server speaks (the router is itself a front for a backend, so it
    needs this thin shim rather than :func:`wrap_backend`)."""

    def __init__(self, router: QueryRouter) -> None:
        self.router = router
        self.shape = router.shape

    def current_stamp(self):
        return self.router.backend.current_stamp()

    def query_many(self, lows, highs, deadline=None):
        batch = self.router.route_many(lows, highs, deadline=deadline)
        stamps = batch.stamps
        if stamps and all(s == stamps[0] for s in stamps):
            return batch.values, stamps[0]
        return batch.values, list(stamps)

    def query_many_estimated(self, lows, highs, deadline=None):
        batch = self.router.route_many(
            lows, highs, deadline=deadline, allow_estimate=True
        )
        stamps = batch.stamps
        stamp = (
            stamps[0]
            if stamps and all(s == stamps[0] for s in stamps)
            else list(stamps)
        )
        return batch.values, list(batch.estimates), stamp

    def submit_batch(self, updates, *, timeout=None, deadline=None):
        return self.router.submit_batch(
            updates, timeout=timeout, deadline=deadline
        )

    def flush(self, timeout=None):
        return self.router.flush(timeout=timeout)

    def stats(self):
        return self.router.stats()


def _normalize_backend(backend):
    if isinstance(backend, QueryRouter):
        return _RouterAdapter(backend)
    return wrap_backend(backend)


def _stamp_json(stamp):
    """Coerce a backend stamp (int, numpy int, version tuple, or list
    of per-query stamps) into JSON-representable types."""
    if isinstance(stamp, (int, float, str)) or stamp is None:
        return stamp
    if isinstance(stamp, np.integer):
        return int(stamp)
    if isinstance(stamp, (tuple, list)):
        return [_stamp_json(s) for s in stamp]
    return str(stamp)


def _epoch_of(stamp) -> Optional[int]:
    """The shard-map epoch carried by a cluster stamp, if any.

    Cluster stamps are ``(epoch, *versions)`` tuples; single-service
    stamps are plain ints and carry no epoch.
    """
    if isinstance(stamp, (tuple, list)) and stamp:
        first = stamp[0]
        if isinstance(first, (int, np.integer)):
            return int(first)
        if isinstance(first, (tuple, list)) and first and isinstance(
            first[0], (int, np.integer)
        ):
            # per-query stamp list: all entries share one live epoch
            return int(first[0])
    return None


def _require(params: Dict[str, Any], key: str):
    if key not in params:
        raise ProtocolError(f"missing required param {key!r}")
    return params[key]


def _parse_updates(raw) -> list:
    if not isinstance(raw, list):
        raise ProtocolError("updates must be a list of [index, delta] pairs")
    updates = []
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ProtocolError(
                "each update must be an [index, delta] pair"
            )
        index, delta = entry
        if not isinstance(index, (list, tuple)):
            raise ProtocolError("update index must be a coordinate list")
        updates.append((tuple(int(c) for c in index), delta))
    return updates


class CubeServer:
    """Serve a cube backend over TCP.

    Args:
        backend: a :class:`~repro.serve.CubeService`,
            :class:`~repro.cluster.CubeCluster`,
            :class:`~repro.routing.QueryRouter`, or any object speaking
            the router's backend protocol.
        host/port: bind address; port 0 picks a free port (read
            :attr:`port` after :meth:`start`).
        authenticator: per-tenant token auth and quotas; ``None`` runs
            the server open (no token required, no quota).
        max_inflight: hard cap on concurrently executing backend calls;
            beyond it requests are refused with ``overloaded``.
        max_frame_bytes: per-frame size limit, both directions.
        overload_retry_s: ``retry_after_s`` hint sent with admission
            rejections.
        stream_chunk: queries per chunk on ``range_sum_stream``.
        executor_workers: thread-pool width for backend calls.
        metrics: a shared :class:`~repro.metrics.net.NetMetrics`.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        authenticator: Optional[Authenticator] = None,
        max_inflight: int = 64,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        overload_retry_s: float = 0.05,
        stream_chunk: int = DEFAULT_STREAM_CHUNK,
        executor_workers: int = 8,
        metrics: Optional[NetMetrics] = None,
    ) -> None:
        self.backend = _normalize_backend(backend)
        self._host = host
        self._port = int(port)
        self.authenticator = authenticator
        self.max_inflight = int(max_inflight)
        self.max_frame_bytes = int(max_frame_bytes)
        self.overload_retry_s = float(overload_retry_s)
        self.stream_chunk = max(1, int(stream_chunk))
        self.metrics = metrics if metrics is not None else NetMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=int(executor_workers),
            thread_name_prefix="cube-server",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._inflight = 0  # event-loop thread only
        self._closing = False
        # background-thread facade state
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread_ready = threading.Event()
        self._thread_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._closing = False
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        return (self._host, self._port)

    async def stop(self) -> None:
        """Stop accepting, close every live connection, drain the pool."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # Sync facade: run the whole server on a private daemon thread so
    # threaded tests, benchmarks, and the chaos soak can stand one up
    # without owning an event loop themselves.

    def start_background(self) -> Tuple[str, int]:
        """Start the server on its own event-loop thread; returns the
        bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("server already running in background")
        self._thread_ready.clear()
        self._thread_error = None

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as error:  # noqa: BLE001 - reported to caller
                self._thread_error = error
                self._thread_ready.set()
                loop.close()
                return
            self._thread_ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="cube-server-loop", daemon=True
        )
        self._thread.start()
        self._thread_ready.wait(timeout=10.0)
        if self._thread_error is not None:
            error = self._thread_error
            self._thread.join(timeout=5.0)
            self._thread = None
            self._thread_loop = None
            raise error
        return (self._host, self._port)

    def stop_background(self) -> None:
        """Stop a :meth:`start_background` server and join its thread."""
        loop, thread = self._thread_loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(), loop)
        try:
            future.result(timeout=10.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            self._thread = None
            self._thread_loop = None

    def __enter__(self) -> "CubeServer":
        self.start_background()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop_background()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self.metrics.record_connection_opened()
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self._connections.discard(task)
            self.metrics.record_connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while not self._closing:
            try:
                request = await read_frame(
                    reader,
                    max_frame_bytes=self.max_frame_bytes,
                    on_bytes=lambda n: self.metrics.record_bytes(inbound=n),
                )
            except ProtocolError as error:
                # framing is unrecoverable (an oversized prefix leaves
                # the body unread): answer once, then hang up
                await self._send(
                    writer,
                    {"id": None, "ok": False, "error": error_payload(error)},
                )
                self.metrics.record_error(error_payload(error)["code"])
                return
            if request is None:
                return  # clean EOF
            await self._handle_request(writer, request)

    async def _send(self, writer, payload: Dict[str, Any]) -> None:
        frame = encode_frame(payload, max_frame_bytes=self.max_frame_bytes)
        self.metrics.record_bytes(outbound=len(frame))
        writer.write(frame)
        await writer.drain()

    async def _handle_request(self, writer, request: Dict[str, Any]) -> None:
        start = time.perf_counter()
        request_id = request.get("id")
        op = request.get("op")
        try:
            if not isinstance(op, str) or not op:
                raise ProtocolError("request must name a string 'op'")
            params = request.get("params", {})
            if not isinstance(params, dict):
                raise ProtocolError("'params' must be a JSON object")
            tenant = self._admit(request)
            deadline = self._deadline_of(request)
            handler = self._HANDLERS.get(op)
            if handler is None:
                raise ProtocolError(
                    f"unknown op {op!r} "
                    f"(have {', '.join(sorted(self._HANDLERS))})"
                )
            self._enter_inflight()
            try:
                await handler(self, writer, request_id, params, deadline,
                              tenant)
            finally:
                self._exit_inflight()
        except Exception as error:  # noqa: BLE001 - mapped to wire error
            payload = error_payload(error)
            self.metrics.record_error(payload["code"])
            try:
                await self._send(
                    writer,
                    {"id": request_id, "ok": False, "error": payload},
                )
            except (ConnectionError, OSError):
                pass
        finally:
            self.metrics.record_request(
                op if isinstance(op, str) else "?",
                time.perf_counter() - start,
            )

    # -- admission, auth, deadline -------------------------------------------

    def _admit(self, request: Dict[str, Any]) -> Optional[Tenant]:
        """Auth + quota + admission control, cheapest-first; raises the
        appropriate typed error on refusal."""
        if self._inflight >= self.max_inflight:
            error = ServiceOverloadedError(
                f"server at max_inflight={self.max_inflight}; "
                f"retry after {self.overload_retry_s:.3f}s"
            )
            error.retry_after_s = self.overload_retry_s
            raise error
        tenant = None
        if self.authenticator is not None:
            tenant = self.authenticator.authenticate(request.get("token"))
            self.authenticator.admit(tenant)
        return tenant

    def _enter_inflight(self) -> None:
        self._inflight += 1
        self.metrics.inflight_enter()

    def _exit_inflight(self) -> None:
        self._inflight -= 1
        self.metrics.inflight_exit()

    @staticmethod
    def _deadline_of(request: Dict[str, Any]) -> Optional[Deadline]:
        budget_ms = request.get("deadline_ms")
        if budget_ms is None:
            return None
        budget_ms = float(budget_ms)
        if budget_ms < 0.0:
            raise ProtocolError(
                f"deadline_ms must be >= 0, got {budget_ms}"
            )
        deadline = Deadline.after(budget_ms / 1000.0)
        deadline.check("request")
        return deadline

    async def _call_backend(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        if kwargs:
            call = lambda: fn(*args, **kwargs)  # noqa: E731
        else:
            call = lambda: fn(*args)  # noqa: E731
        return await loop.run_in_executor(self._executor, call)

    # -- op handlers ---------------------------------------------------------

    async def _op_ping(self, writer, request_id, params, deadline, tenant):
        await self._send(writer, {
            "id": request_id, "ok": True,
            "result": {
                "protocol": PROTOCOL_VERSION,
                "shape": list(self.backend.shape),
                "version": _stamp_json(self.backend.current_stamp()),
                "tenant": tenant.name if tenant is not None else None,
            },
        })

    async def _op_version(self, writer, request_id, params, deadline, tenant):
        stamp = await self._call_backend(self.backend.current_stamp)
        await self._send(writer, {
            "id": request_id, "ok": True,
            "result": {"version": _stamp_json(stamp)},
        })

    async def _op_stats(self, writer, request_id, params, deadline, tenant):
        stats = await self._call_backend(self.backend.stats)
        await self._send(writer, {
            "id": request_id, "ok": True,
            "result": {"backend": stats, "net": self.metrics.snapshot()},
        })

    async def _op_range_sum_many(
        self, writer, request_id, params, deadline, tenant
    ):
        lows = _require(params, "lows")
        highs = _require(params, "highs")
        allow_estimate = bool(params.get("allow_estimate", False))
        if deadline is not None:
            deadline.check("range_sum_many")
        estimated_query = (
            getattr(self.backend, "query_many_estimated", None)
            if allow_estimate
            else None
        )
        estimates = None
        if estimated_query is not None:
            values, estimates, stamp = await self._call_backend(
                estimated_query, lows, highs, deadline
            )
            if not any(e is not None for e in estimates):
                estimates = None
        else:
            # allow_estimate against a single-service backend degrades
            # to the exact path: there is nothing to estimate from
            values, stamp = await self._call_backend(
                self.backend.query_many, lows, highs, deadline
            )
        result: Dict[str, Any] = {
            "values": np.asarray(values).tolist(),
            "version": _stamp_json(stamp),
            "epoch": _epoch_of(stamp),
        }
        if allow_estimate:
            result["degraded"] = estimates is not None
            result["estimates"] = (
                [
                    None if e is None else e.to_wire()
                    for e in estimates
                ]
                if estimates is not None
                else [None] * len(np.asarray(values))
            )
        await self._send(writer, {
            "id": request_id, "ok": True, "result": result,
        })

    async def _op_range_sum(
        self, writer, request_id, params, deadline, tenant
    ):
        low = _require(params, "low")
        high = _require(params, "high")
        values, stamp = await self._call_backend(
            self.backend.query_many, [low], [high], deadline
        )
        await self._send(writer, {
            "id": request_id, "ok": True,
            "result": {
                "value": float(np.asarray(values)[0]),
                "version": _stamp_json(stamp),
                "epoch": _epoch_of(stamp),
            },
        })

    async def _op_range_sum_stream(
        self, writer, request_id, params, deadline, tenant
    ):
        """Chunked batched reads: each chunk is answered from one
        backend snapshot and carries its own version stamp, so a huge
        page never materializes one giant response frame."""
        lows = _require(params, "lows")
        highs = _require(params, "highs")
        if not isinstance(lows, list) or not isinstance(highs, list):
            raise ProtocolError("lows/highs must be lists of coordinates")
        if len(lows) != len(highs):
            raise ProtocolError(
                f"lows/highs length mismatch ({len(lows)} vs {len(highs)})"
            )
        chunk = int(params.get("chunk", self.stream_chunk))
        if chunk <= 0:
            raise ProtocolError(f"chunk must be > 0, got {chunk}")
        total = len(lows)
        sent = 0
        for offset in range(0, max(total, 1), chunk):
            if deadline is not None:
                deadline.check("range_sum_stream")
            piece_lows = lows[offset:offset + chunk]
            piece_highs = highs[offset:offset + chunk]
            if piece_lows:
                values, stamp = await self._call_backend(
                    self.backend.query_many, piece_lows, piece_highs,
                    deadline,
                )
                values = np.asarray(values).tolist()
            else:
                values, stamp = [], self.backend.current_stamp()
            sent += len(values)
            final = sent >= total
            self.metrics.record_stream_chunk()
            await self._send(writer, {
                "id": request_id, "ok": True, "stream": True,
                "chunk": offset // chunk, "final": final,
                "result": {
                    "offset": offset,
                    "values": values,
                    "version": _stamp_json(stamp),
                    "epoch": _epoch_of(stamp),
                },
            })
            if final:
                break

    async def _op_submit_batch(
        self, writer, request_id, params, deadline, tenant
    ):
        updates = _parse_updates(_require(params, "updates"))
        timeout = params.get("timeout")
        timeout = None if timeout is None else float(timeout)
        seq = await self._call_backend(
            lambda: self.backend.submit_batch(
                updates, timeout=timeout, deadline=deadline
            )
        )
        await self._send(writer, {
            "id": request_id, "ok": True, "result": {"seq": int(seq)},
        })

    async def _op_flush(self, writer, request_id, params, deadline, tenant):
        timeout = params.get("timeout")
        timeout = None if timeout is None else float(timeout)
        if deadline is not None:
            timeout = deadline.bound(timeout)
        version = await self._call_backend(
            lambda: self.backend.flush(timeout=timeout)
        )
        await self._send(writer, {
            "id": request_id, "ok": True,
            "result": {"version": _stamp_json(version)},
        })

    _HANDLERS = {
        "ping": _op_ping,
        "version": _op_version,
        "stats": _op_stats,
        "range_sum_many": _op_range_sum_many,
        "range_sum": _op_range_sum,
        "range_sum_stream": _op_range_sum_stream,
        "submit_batch": _op_submit_batch,
        "flush": _op_flush,
    }

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"CubeServer({self._host}:{self._port}, {state})"

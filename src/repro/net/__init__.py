"""The network serving tier: sockets in front of the cube stack.

``repro.net`` puts a TCP boundary in front of the in-process query
surfaces (:class:`~repro.serve.CubeService`,
:class:`~repro.cluster.CubeCluster`,
:class:`~repro.routing.QueryRouter`) without changing their semantics:
length-prefixed JSON frames, typed wire errors that reconstruct the
:class:`~repro.errors.ReproError` hierarchy client-side, per-tenant
token auth with token-bucket quotas, admission control that rejects
instead of buffering, and client deadline budgets threaded into
:class:`~repro.deadline.Deadline` on the server.

Quick start::

    from repro.net import CubeServer, CubeClient

    server = CubeServer(service, port=0)
    host, port = server.start_background()
    ...
    async with await CubeClient.connect(host, port) as client:
        values, version = await client.range_sum_many(lows, highs)
"""

from repro.net.auth import Authenticator, Tenant, TokenBucket
from repro.net.client import CubeClient, query_once
from repro.net.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    error_code_for,
    error_payload,
    raise_wire_error,
    read_frame,
)
from repro.net.server import CubeServer

__all__ = [
    "Authenticator",
    "CubeClient",
    "CubeServer",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "Tenant",
    "TokenBucket",
    "encode_frame",
    "error_code_for",
    "error_payload",
    "query_once",
    "raise_wire_error",
    "read_frame",
]

"""The wire protocol: length-prefixed JSON frames and typed errors.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON. Requests and responses are JSON objects:

Request::

    {"id": 7, "op": "range_sum_many",
     "params": {"lows": [[0, 0]], "highs": [[3, 4]]},
     "token": "tenant-token",        # omitted on open servers
     "deadline_ms": 250.0}           # remaining client budget, optional

Response (one frame per request, except streaming ops)::

    {"id": 7, "ok": true, "result": {"values": [171.0], "version": 12}}
    {"id": 7, "ok": false,
     "error": {"code": "overloaded", "message": "...",
               "retry_after_s": 0.05}}

Streaming ops answer with a run of chunk frames, every one carrying
``"stream": true`` and the last also ``"final": true`` — each chunk is
served from one backend snapshot and stamped with its own ``version``.

Error mapping is the contract that makes the
:class:`~repro.errors.ReproError` hierarchy survive the socket: the
server maps any raised exception to a stable ``code`` via
:func:`error_payload`, and the client rebuilds a typed exception from
the code via :func:`raise_wire_error`. ``retry_after_s`` rides along on
the two backpressure codes (``overloaded``, ``quota_exceeded``) so
clients can back off without parsing messages.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.errors import (
    AuthError,
    BoxSizeError,
    ClusterUnavailableError,
    DeadlineExceededError,
    DimensionError,
    NodeUnavailableError,
    PayloadTooLargeError,
    ProtocolError,
    QuotaExceededError,
    RangeError,
    RemoteError,
    ReproError,
    SchemaError,
    ServiceOverloadedError,
)
from repro.serve.service import ServiceClosedError

#: bump on incompatible frame/shape changes; echoed by ``ping``
PROTOCOL_VERSION = 1

#: default per-connection frame size limit (requests and responses)
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct("!I")
HEADER_BYTES = _HEADER.size

# -- framing -----------------------------------------------------------------


def encode_frame(
    payload: Dict[str, Any], *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one JSON payload into a length-prefixed frame."""
    body = json.dumps(
        payload, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise PayloadTooLargeError(
            f"frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    on_bytes=None,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF between frames.

    ``on_bytes``, if given, is called with the total wire size of the
    frame (header included) once the body has been read — the server's
    byte accounting hook.

    Raises :class:`~repro.errors.ProtocolError` on a truncated or
    non-JSON frame and :class:`~repro.errors.PayloadTooLargeError` on a
    length prefix past the limit — *before* buffering the oversized
    body, so a hostile prefix cannot balloon server memory.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"truncated frame header ({len(error.partial)}/"
            f"{HEADER_BYTES} bytes)"
        ) from error
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame_bytes:
        raise PayloadTooLargeError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"truncated frame body ({len(error.partial)}/{length} bytes)"
        ) from error
    if on_bytes is not None:
        on_bytes(HEADER_BYTES + length)
    try:
        payload = json.loads(body)
    except ValueError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# -- error mapping -----------------------------------------------------------

#: ``code`` values documented on the wire. Order matters below: the
#: first matching class wins, so subclasses precede their bases.
ERROR_CODES = (
    "payload_too_large",
    "bad_request",
    "auth_failed",
    "quota_exceeded",
    "overloaded",
    "deadline_exceeded",
    "unavailable",
    "internal",
)

_CODE_BY_TYPE = (
    (PayloadTooLargeError, "payload_too_large"),
    (ProtocolError, "bad_request"),
    (AuthError, "auth_failed"),
    (QuotaExceededError, "quota_exceeded"),
    (ServiceOverloadedError, "overloaded"),
    (DeadlineExceededError, "deadline_exceeded"),
    ((RangeError, DimensionError, BoxSizeError, SchemaError), "bad_request"),
    (
        (ServiceClosedError, ClusterUnavailableError, NodeUnavailableError),
        "unavailable",
    ),
)

_TYPE_BY_CODE = {
    "payload_too_large": PayloadTooLargeError,
    "bad_request": ProtocolError,
    "auth_failed": AuthError,
    "quota_exceeded": QuotaExceededError,
    "overloaded": ServiceOverloadedError,
    "deadline_exceeded": DeadlineExceededError,
    "unavailable": NodeUnavailableError,
    "internal": RemoteError,
}


def error_code_for(error: BaseException) -> str:
    """The stable wire code for one server-side exception."""
    for types, code in _CODE_BY_TYPE:
        if isinstance(error, types):
            return code
    # TypeError/KeyError/ValueError from malformed params are caller
    # bugs, not server faults
    if isinstance(error, (TypeError, KeyError, ValueError)):
        return "bad_request"
    return "internal"


def error_payload(
    error: BaseException, retry_after_s: Optional[float] = None
) -> Dict[str, Any]:
    """The ``error`` object of a failure response."""
    payload: Dict[str, Any] = {
        "code": error_code_for(error),
        "message": f"{type(error).__name__}: {error}",
    }
    if retry_after_s is None:
        retry_after_s = getattr(error, "retry_after_s", None)
    if retry_after_s is not None:
        payload["retry_after_s"] = float(retry_after_s)
    return payload


def raise_wire_error(error: Dict[str, Any]) -> None:
    """Client side: rebuild and raise the typed exception for one wire
    ``error`` object (unknown codes degrade to
    :class:`~repro.errors.RemoteError`)."""
    code = error.get("code", "internal")
    message = error.get("message", "remote error")
    cls = _TYPE_BY_CODE.get(code, RemoteError)
    retry_after = float(error.get("retry_after_s", 0.0) or 0.0)
    if cls is QuotaExceededError:
        raise QuotaExceededError(message, retry_after_s=retry_after)
    exc = cls(message)
    exc.retry_after_s = retry_after
    raise exc

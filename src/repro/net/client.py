"""The asyncio client for :class:`~repro.net.server.CubeServer`.

:class:`CubeClient` speaks the same length-prefixed JSON protocol and
gives back the *typed* errors the server started with: a quota refusal
arrives as :class:`~repro.errors.QuotaExceededError` with its
``retry_after_s`` intact, an expired budget as
:class:`~repro.errors.DeadlineExceededError`, a crashed backend as
:class:`~repro.errors.NodeUnavailableError` — so retry policy written
against the in-process API works unchanged against the socket.

One client is one connection with one outstanding request at a time
(an ``asyncio.Lock`` serializes callers); open several clients for
concurrency — that is what the load generator and the N1 benchmark do.

Deadlines travel as budgets: pass a :class:`~repro.deadline.Deadline`
(or a plain ``timeout``) and the *remaining* budget rides the request
as ``deadline_ms``, then also bounds the local wait for the response —
one budget, both sides of the wire.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.degraded import RangeEstimate
from repro.deadline import Deadline
from repro.errors import NetError, ProtocolError
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    raise_wire_error,
    read_frame,
)


class CubeClient:
    """One connection to a :class:`~repro.net.server.CubeServer`.

    Build with :meth:`connect`; use as an async context manager or call
    :meth:`close`::

        async with await CubeClient.connect(host, port, token="s3cret") as c:
            values, version = await c.range_sum_many(lows, highs)
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        token: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._token = token
        self._max_frame_bytes = int(max_frame_bytes)
        self._lock = asyncio.Lock()
        self._next_id = 0
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        connect_timeout: float = 10.0,
    ) -> "CubeClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=connect_timeout
        )
        return cls(
            reader, writer, token=token, max_frame_bytes=max_frame_bytes
        )

    # -- plumbing ------------------------------------------------------------

    def _request_payload(
        self,
        op: str,
        params: Dict[str, Any],
        deadline: Optional[Deadline],
    ) -> Dict[str, Any]:
        self._next_id += 1
        payload: Dict[str, Any] = {
            "id": self._next_id, "op": op, "params": params,
        }
        if self._token is not None:
            payload["token"] = self._token
        if deadline is not None:
            payload["deadline_ms"] = deadline.remaining() * 1000.0
        return payload

    async def _read_reply(self, deadline: Optional[Deadline]):
        wait = None if deadline is None else deadline.bound(None)
        try:
            if wait is None:
                reply = await read_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
            else:
                reply = await asyncio.wait_for(
                    read_frame(
                        self._reader,
                        max_frame_bytes=self._max_frame_bytes,
                    ),
                    timeout=wait,
                )
        except asyncio.TimeoutError:
            # the connection is now desynced (the reply may still come)
            await self.close()
            if deadline is not None:
                deadline.check("awaiting reply")
            raise NetError("timed out awaiting reply") from None
        if reply is None:
            self._closed = True
            raise NetError("server closed the connection mid-request")
        if not reply.get("ok", False):
            raise_wire_error(reply.get("error", {}))
        return reply

    async def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        deadline: Optional[Deadline] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request/response round trip; returns the ``result``
        object. ``timeout`` (seconds) is shorthand for a fresh
        :class:`Deadline`."""
        if deadline is None and timeout is not None:
            deadline = Deadline.after(float(timeout))
        if self._closed:
            raise NetError("client is closed")
        if deadline is not None:
            # an already-spent budget fails here, cheaply — sending it
            # would only desync the connection waiting for a reply the
            # budget does not cover
            deadline.check(f"request {op!r}")
        payload = self._request_payload(op, params or {}, deadline)
        async with self._lock:
            self._writer.write(
                encode_frame(payload, max_frame_bytes=self._max_frame_bytes)
            )
            await self._writer.drain()
            reply = await self._read_reply(deadline)
        result = reply.get("result")
        if not isinstance(result, dict):
            raise ProtocolError("reply carries no result object")
        return result

    # -- typed API -----------------------------------------------------------

    async def ping(self, **kw) -> Dict[str, Any]:
        return await self.call("ping", **kw)

    async def version(self, **kw):
        return (await self.call("version", **kw))["version"]

    async def stats(self, **kw) -> Dict[str, Any]:
        return await self.call("stats", **kw)

    async def range_sum_many(
        self, lows, highs, *, allow_estimate: bool = False, **kw
    ):
        """Batched range sums; returns ``(values, version)``.

        With ``allow_estimate=True`` the server may answer queries over
        unreachable or mid-migration shards from bounded aggregates
        instead of failing; the return becomes
        ``(values, estimates, version)`` where ``estimates[i]`` is a
        typed :class:`~repro.cluster.degraded.RangeEstimate` (explicit
        ``estimate=True`` marker, guaranteed ``[low, high]`` interval,
        confidence, degraded shards, epoch) for degraded slots and
        ``None`` for exact ones.
        """
        params: Dict[str, Any] = {
            "lows": _coords(lows), "highs": _coords(highs),
        }
        if allow_estimate:
            params["allow_estimate"] = True
        result = await self.call("range_sum_many", params, **kw)
        values = np.asarray(result["values"], dtype=np.float64)
        if allow_estimate:
            estimates = [
                None if e is None else RangeEstimate.from_wire(e)
                for e in result.get("estimates", [None] * len(values))
            ]
            return values, estimates, result["version"]
        return values, result["version"]

    async def range_sum(
        self, low: Sequence[int], high: Sequence[int], **kw
    ) -> Tuple[float, Any]:
        result = await self.call(
            "range_sum", {"low": _coord(low), "high": _coord(high)}, **kw
        )
        return float(result["value"]), result["version"]

    async def submit_batch(
        self,
        updates,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Queue one atomic update group; returns its sequence number.
        ``timeout`` here is the *server-side* queue-admission timeout
        (matching :meth:`CubeService.submit_batch`), independent of the
        request deadline."""
        wire_updates = [
            [_coord(index), float(delta)] for index, delta in updates
        ]
        params: Dict[str, Any] = {"updates": wire_updates}
        if timeout is not None:
            params["timeout"] = float(timeout)
        result = await self.call("submit_batch", params, deadline=deadline)
        return int(result["seq"])

    async def submit_delta(self, index, delta, **kw) -> int:
        return await self.submit_batch([(index, delta)], **kw)

    async def flush(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        params: Dict[str, Any] = {}
        if timeout is not None:
            params["timeout"] = float(timeout)
        result = await self.call("flush", params, deadline=deadline)
        return result["version"]

    async def stream_range_sums(
        self,
        lows,
        highs,
        *,
        chunk: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        timeout: Optional[float] = None,
    ) -> AsyncIterator[Tuple[int, np.ndarray, Any]]:
        """Async generator over ``(offset, values, version)`` chunks.

        Each chunk is exact against one server-side snapshot; chunks of
        one stream may carry different versions if writes land between
        them (the stamp tells you exactly which)."""
        if deadline is None and timeout is not None:
            deadline = Deadline.after(float(timeout))
        if self._closed:
            raise NetError("client is closed")
        params = {"lows": _coords(lows), "highs": _coords(highs)}
        if chunk is not None:
            params["chunk"] = int(chunk)
        payload = self._request_payload("range_sum_stream", params, deadline)
        async with self._lock:
            self._writer.write(
                encode_frame(payload, max_frame_bytes=self._max_frame_bytes)
            )
            await self._writer.drain()
            while True:
                reply = await self._read_reply(deadline)
                if not reply.get("stream", False):
                    raise ProtocolError(
                        "expected a stream chunk, got a plain reply"
                    )
                result = reply.get("result")
                if not isinstance(result, dict):
                    raise ProtocolError("stream chunk carries no result")
                yield (
                    int(result["offset"]),
                    np.asarray(result["values"], dtype=np.float64),
                    result["version"],
                )
                if reply.get("final", False):
                    return

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    async def __aenter__(self) -> "CubeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


def _coord(index) -> list:
    return [int(c) for c in index]


def _coords(batch) -> list:
    return [_coord(index) for index in batch]


async def query_once(
    host: str,
    port: int,
    lows,
    highs,
    *,
    token: Optional[str] = None,
    timeout: float = 10.0,
) -> Tuple[np.ndarray, Any]:
    """One-shot convenience: connect, query, close."""
    async with await CubeClient.connect(
        host, port, token=token, connect_timeout=timeout
    ) as client:
        return await client.range_sum_many(lows, highs, timeout=timeout)


__all__ = ["CubeClient", "query_once"]

"""Per-tenant token auth and token-bucket quotas for the net tier.

A :class:`Tenant` is a name, a bearer token, and a request-rate quota.
The :class:`Authenticator` resolves tokens to tenants (constant-time
compare; unknown tokens raise :class:`~repro.errors.AuthError`) and
charges each admitted request against the tenant's
:class:`TokenBucket`. An exhausted bucket raises
:class:`~repro.errors.QuotaExceededError` carrying ``retry_after_s`` —
the time until one token refills — which the server forwards on the
wire so clients back off precisely instead of hammering.

Quotas are *rejection*, not queueing: a request over quota is refused
immediately and cheaply. Smoothing bursts is the client's job (the
retry-after hint is the contract); protecting the backend from the sum
of all tenants is the server's admission control, a separate knob.
"""

from __future__ import annotations

import hmac
import time
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.errors import AuthError, QuotaExceededError

#: default quota when a tenant spec does not name one
DEFAULT_RATE_PER_S = 500.0
DEFAULT_BURST = 100.0


class TokenBucket:
    """Classic token bucket: ``rate_per_s`` refill, ``burst`` capacity.

    Starts full. Not thread-safe by itself — the net tier calls it only
    from the event loop thread. The clock is injectable so tests can
    drive refill deterministically.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0.0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        if burst <= 0.0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0.0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate_per_s
            )

    def try_acquire(self, cost: float = 1.0) -> float:
        """Spend ``cost`` tokens; returns 0.0 on success, else the
        seconds until enough tokens will have refilled (nothing is
        spent on refusal)."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate_per_s

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


class Tenant:
    """One authenticated principal and its request-rate quota."""

    def __init__(
        self,
        name: str,
        token: str,
        *,
        rate_per_s: float = DEFAULT_RATE_PER_S,
        burst: float = DEFAULT_BURST,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not name:
            raise ValueError("tenant name must be non-empty")
        if not token:
            raise ValueError(f"tenant {name!r} must have a non-empty token")
        self.name = str(name)
        self.token = str(token)
        self.bucket = TokenBucket(rate_per_s, burst, clock=clock)

    def __repr__(self) -> str:
        return (
            f"Tenant({self.name!r}, rate={self.bucket.rate_per_s}/s, "
            f"burst={self.bucket.burst})"
        )


class Authenticator:
    """Token -> tenant resolution plus per-tenant quota charging.

    An ``Authenticator`` with no tenants rejects everything — an *open*
    server is expressed by passing ``authenticator=None`` to the server,
    not by an empty tenant list.
    """

    def __init__(self, tenants: Iterable[Tenant]) -> None:
        self._by_token: Dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.token in self._by_token:
                raise ValueError(
                    f"duplicate token between tenants "
                    f"{self._by_token[tenant.token].name!r} and "
                    f"{tenant.name!r}"
                )
            self._by_token[tenant.token] = tenant

    def authenticate(self, token: Optional[str]) -> Tenant:
        """Resolve a bearer token; raises
        :class:`~repro.errors.AuthError` on a missing or unknown one."""
        if not token:
            raise AuthError("missing auth token")
        for known, tenant in self._by_token.items():
            if hmac.compare_digest(known, token):
                return tenant
        raise AuthError("unknown auth token")

    def admit(self, tenant: Tenant, cost: float = 1.0) -> None:
        """Charge one request; raises
        :class:`~repro.errors.QuotaExceededError` with ``retry_after_s``
        when the tenant's bucket is dry."""
        retry_after = tenant.bucket.try_acquire(cost)
        if retry_after > 0.0:
            raise QuotaExceededError(
                f"tenant {tenant.name!r} over quota "
                f"({tenant.bucket.rate_per_s:g} req/s, "
                f"burst {tenant.bucket.burst:g})",
                retry_after_s=retry_after,
            )

    @property
    def tenants(self) -> Sequence[Tenant]:
        return tuple(self._by_token.values())

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "Authenticator":
        """Build from CLI specs ``"name=token[:rate[:burst]]"``.

        Example: ``["dash=s3cret:200:50", "batch=tok2"]``.
        """
        tenants = []
        for spec in specs:
            name, sep, rest = spec.partition("=")
            if not sep or not name or not rest:
                raise ValueError(
                    f"bad tenant spec {spec!r} "
                    f"(want name=token[:rate[:burst]])"
                )
            parts = rest.split(":")
            if len(parts) > 3:
                raise ValueError(
                    f"bad tenant spec {spec!r} "
                    f"(want name=token[:rate[:burst]])"
                )
            token = parts[0]
            rate = float(parts[1]) if len(parts) > 1 else DEFAULT_RATE_PER_S
            burst = float(parts[2]) if len(parts) > 2 else DEFAULT_BURST
            tenants.append(
                Tenant(name, token, rate_per_s=rate, burst=burst)
            )
        return cls(tenants)

"""Snapshot-versioned memoization of exact box sums.

:class:`ResultCache` is the router's first tier: a thread-safe LRU map
from a box (or a whole query batch) to the exact sum(s) the backend
returned, stamped with the snapshot version that produced them. There
are no TTLs and no epsilon staleness — an entry is served only when its
stamp matches the version the caller asks for, so a write invalidates
every affected entry *precisely* through the serving layer's existing
version handoff. A lookup that finds an entry at the wrong version
reports it as ``stale`` (and drops it); the router counts those rejects,
because each one is a correctly-invalidated write.

Eviction is LRU under two budgets — entry count and payload bytes — so
the cache can be sized for "stay resident" rather than "grow forever".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

#: lookup outcomes (module constants so callers can match identity)
HIT = "hit"
MISS = "miss"
STALE = "stale"

#: accounting floor per entry: key object + bookkeeping, not just payload
_ENTRY_OVERHEAD_BYTES = 120


def _payload_nbytes(value) -> int:
    """Approximate resident size of a cached value."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    # numpy scalar or python number
    return 16


class ResultCache:
    """LRU + byte-budget cache of ``(key -> (stamp, value))``.

    One entry per key: a ``put`` at a newer stamp replaces the old
    version in place (the previous value could never be served again
    anyway — ``get`` demands an exact stamp match).

    Args:
        max_entries: LRU capacity in entries.
        max_bytes: LRU capacity in (approximate) payload bytes.
    """

    def __init__(
        self, max_entries: int = 65536, max_bytes: int = 64 << 20
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Hashable, object, int]]" \
            = OrderedDict()
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._bytes = 0
        self.inserts = 0
        self.evictions = 0
        self.stale_drops = 0

    def get(self, key: Hashable, stamp: Hashable) -> Tuple[str, object]:
        """Look up ``key`` at snapshot ``stamp``.

        Returns ``(HIT, value)`` on an exact-version match (the entry is
        refreshed in LRU order), ``(STALE, None)`` when an entry exists
        at a *different* stamp (it is dropped — the version handoff has
        invalidated it), or ``(MISS, None)``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS, None
            entry_stamp, value, nbytes = entry
            if entry_stamp != stamp:
                del self._entries[key]
                self._bytes -= nbytes
                self.stale_drops += 1
                return STALE, None
            self._entries.move_to_end(key)
            return HIT, value

    def put(self, key: Hashable, stamp: Hashable, value) -> None:
        """Insert (or version-replace) ``key`` = ``value`` at ``stamp``.

        Arrays are defensively marked read-only — a hit hands back the
        same object, and a caller mutating it would corrupt every future
        hit.
        """
        if isinstance(value, np.ndarray):
            value = value.copy()
            value.setflags(write=False)
        nbytes = _payload_nbytes(value) + _ENTRY_OVERHEAD_BYTES
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[key] = (stamp, value, nbytes)
            self._bytes += nbytes
            self.inserts += 1
            while len(self._entries) > self.max_entries or (
                self._bytes > self.max_bytes and len(self._entries) > 1
            ):
                _, (_, _, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self.evictions += 1

    def purge(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
        return dropped

    def purge_stale(self, stamp: Hashable) -> int:
        """Drop every entry not at ``stamp``; returns the count dropped.

        Optional hygiene — correctness never needs it (``get`` rejects
        wrong-version entries), but a write-heavy workload can reclaim
        the budget eagerly instead of waiting for LRU pressure.
        """
        with self._lock:
            stale = [
                key
                for key, (entry_stamp, _, _) in self._entries.items()
                if entry_stamp != stamp
            ]
            for key in stale:
                _, _, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
            self.stale_drops += len(stale)
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate resident payload bytes."""
        with self._lock:
            return self._bytes

    def stats(self) -> Dict:
        """Occupancy and churn as one plain dict."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "stale_drops": self.stale_drops,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self)}, bytes={self.nbytes}, "
            f"max_entries={self.max_entries}, max_bytes={self.max_bytes})"
        )

"""The two-tier adaptive query router: cache -> rollup -> RPS.

:class:`QueryRouter` sits in front of a
:class:`~repro.serve.CubeService` (or a
:class:`~repro.cluster.CubeCluster`) and answers each box query from
the cheapest tier that can answer it **exactly**:

1. **Result cache** — memoized sums keyed by the box *and* the snapshot
   version that produced them (:class:`~repro.routing.cache.ResultCache`),
   with a whole-batch memo on top so a repeated dashboard page costs
   one dictionary lookup. Writes invalidate precisely through the
   serving layer's version handoff: a new snapshot version simply never
   matches an old entry, and the mismatch is counted as a stale reject.
2. **Rollup** — coarse pre-aggregated prefix cubes
   (:class:`~repro.routing.rollup.RollupCube`) materialized on a
   background thread for grid granularities the
   :class:`~repro.routing.hotness.HotPatternTracker` has learned are
   hot. A rollup answers *any* aligned box, seen before or not, and is
   discarded the moment its build stamp stops matching the current
   snapshot version.
3. **RPS fallback** — the backend itself, which is already exact for
   everything.

The correctness contract — the one the property suite enforces — is
that every answer is stamped with the snapshot version(s) it was
computed from, and **the value always equals the single-snapshot oracle
at that stamp**, no matter which tier served it or how reads interleave
with the write stream. Freshness (never serving below the last flushed
version) is a separate gate: cached values are served only while their
stamp equals the backend's *current* version.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core import indexing
from repro.deadline import Deadline
from repro.metrics.router import RouterMetrics
from repro.routing.cache import HIT, MISS, STALE, ResultCache
from repro.routing.hotness import HotPatternTracker
from repro.routing.rollup import RollupBuilder

#: tier labels stamped on every routed answer
TIER_CACHE = "cache"
TIER_ROLLUP = "rollup"
TIER_RPS = "rps"

#: batches larger than this skip the per-box cache tier: per-box lookups
#: and fills are Python-loop priced, and a large repeated page is served
#: wholesale by the batch memo anyway
PER_BOX_CACHE_MAX_BATCH = 512


def _assign_object(array: np.ndarray, idx, obj) -> None:
    """Broadcast one object (even a tuple) into ``array[idx]`` slots —
    a bare ``array[idx] = obj`` would splat a tuple element-wise."""
    boxed = np.empty((), dtype=object)
    boxed[()] = obj
    array[idx] = boxed


class RoutedBatch:
    """One routed batch: values plus per-query provenance.

    Attributes:
        values: length-Q array of sums (exact unless the matching
            ``estimates`` slot is set).
        stamps: per-query snapshot stamp the value was computed from —
            an ``int`` service version, or an ``(epoch, *versions)``
            tuple for cluster backends, fencing the answer to the
            shard-map epoch it was read under.
        tiers: per-query serving tier (``"cache"``/``"rollup"``/``"rps"``).
        estimates: per-query :class:`~repro.cluster.degraded.RangeEstimate`
            for degraded answers, ``None`` for exact ones. Estimated
            answers are never cached — the slot and its marker exist
            only on the batch that computed them.
    """

    __slots__ = ("values", "stamps", "tiers", "estimates")

    def __init__(self, values, stamps, tiers, estimates=None) -> None:
        self.values = values
        self.stamps = tuple(stamps)
        self.tiers = tuple(tiers)
        self.estimates = (
            tuple(estimates)
            if estimates is not None
            else (None,) * len(self.stamps)
        )

    def __repr__(self) -> str:
        return (
            f"RoutedBatch(q={len(self.stamps)}, "
            f"tiers={dict(zip(*np.unique(self.tiers, return_counts=True)))})"
        )


class ServiceBackend:
    """Adapts one :class:`~repro.serve.CubeService` to the router.

    The stamp is the service's snapshot version (applied update
    groups): an ``int`` that the double-buffered writer bumps atomically
    with every publish — exactly the handoff the cache keys on.
    """

    def __init__(self, service) -> None:
        self.service = service
        self.shape = service.shape

    def current_stamp(self) -> int:
        return self.service.version

    def query_many(
        self, lows, highs, deadline: Optional[Deadline] = None
    ) -> Tuple[np.ndarray, int]:
        if deadline is not None:
            deadline.check("routed read")
        return self.service.query_many(lows, highs)

    def submit_batch(
        self,
        updates,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        if deadline is not None:
            timeout = deadline.bound(timeout)
        return self.service.submit_batch(updates, timeout=timeout)

    def flush(self, timeout: Optional[float] = None):
        return self.service.flush(timeout=timeout)

    def stats(self) -> Dict:
        return self.service.stats()


class ClusterBackend:
    """Adapts one :class:`~repro.cluster.CubeCluster` to the router.

    The stamp is ``(epoch, *version_vector)``: the shard-map epoch
    followed by the per-shard version vector. A batched read answers
    each involved shard from one snapshot; the returned stamp records
    that observed version per involved shard and the last acked version
    for the rest, so a query's stamped entry is exact for every shard
    the query actually touches. The epoch prefix fences every cached
    answer to the layout it was read under — after a live reshard flips
    the map, no entry stamped under the old epoch can ever match again,
    even if the per-shard numbers coincide.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.shape = cluster.shape

    def current_stamp(self) -> Tuple[int, ...]:
        stamp = getattr(self.cluster, "stamp", None)
        if stamp is not None:
            return stamp()
        return (0, *self.cluster.version_vector())

    def _stamp_from_receipt(self, receipt) -> Tuple[int, ...]:
        """Fold a read receipt's observed versions into the live
        vector, under the receipt's epoch."""
        epoch = receipt["epoch"]
        _, *vector = self.current_stamp()
        for shard, version in receipt["versions"].items():
            if shard < len(vector):
                vector[shard] = version
        return (epoch, *vector)

    def query_many(
        self, lows, highs, deadline: Optional[Deadline] = None
    ) -> Tuple[np.ndarray, Tuple[int, ...]]:
        values, receipt = self.cluster.range_sum_many(
            lows, highs, deadline=deadline, return_shard_versions=True
        )
        return values, self._stamp_from_receipt(receipt)

    def query_many_estimated(
        self, lows, highs, deadline: Optional[Deadline] = None
    ):
        """Batched read that may answer degraded shards from aggregates.

        Returns ``(values, estimates, stamp)`` where ``estimates[i]``
        is a :class:`~repro.cluster.degraded.RangeEstimate` when slot
        ``i`` is degraded, else ``None``.
        """
        values, estimates, receipt = self.cluster.range_sum_many(
            lows, highs, deadline=deadline,
            allow_estimate=True, return_shard_versions=True,
        )
        return values, estimates, self._stamp_from_receipt(receipt)

    def submit_batch(
        self,
        updates,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        return self.cluster.submit_batch(
            updates, timeout=timeout, deadline=deadline
        )

    def flush(self, timeout: Optional[float] = None):
        return self.cluster.flush(timeout=timeout)

    def stats(self) -> Dict:
        return self.cluster.stats()


def wrap_backend(backend):
    """Coerce a service/cluster (or a ready adapter) to the backend
    protocol the router speaks."""
    if hasattr(backend, "current_stamp"):
        return backend
    if hasattr(backend, "version_vector") or hasattr(backend, "shardmap"):
        return ClusterBackend(backend)
    return ServiceBackend(backend)


class QueryRouter:
    """Route each box query cache -> rollup -> RPS, exactly.

    Args:
        backend: a :class:`~repro.serve.CubeService`,
            :class:`~repro.cluster.CubeCluster`, or backend adapter.
        enable_cache: serve/populate the memoized result tier.
        enable_rollup: learn hot patterns and serve from rollups.
        cache: a pre-built :class:`~repro.routing.cache.ResultCache`
            (defaults to 64 MiB / 64 Ki entries).
        tracker: a pre-built
            :class:`~repro.routing.hotness.HotPatternTracker`.
        auto_build: request background rollup builds for granularities
            the tracker reports hot (set False for deterministic tests
            and call :meth:`build_rollup` yourself).
        metrics: a shared :class:`~repro.metrics.router.RouterMetrics`.

    Use as a context manager or call :meth:`close` (the backing
    service/cluster has its own lifecycle and is *not* closed)::

        with CubeService(RelativePrefixSumCube, cube) as svc:
            with QueryRouter(svc) as router:
                hot = router.range_sum_many(lows, highs)   # warms tiers
                hot = router.range_sum_many(lows, highs)   # cache hit
    """

    def __init__(
        self,
        backend,
        *,
        enable_cache: bool = True,
        enable_rollup: bool = True,
        cache: Optional[ResultCache] = None,
        tracker: Optional[HotPatternTracker] = None,
        auto_build: bool = True,
        max_rollups: int = 4,
        per_box_cache_max_batch: int = PER_BOX_CACHE_MAX_BATCH,
        observe_every: int = 4,
        metrics: Optional[RouterMetrics] = None,
    ) -> None:
        self.backend = wrap_backend(backend)
        self.shape = self.backend.shape
        self.metrics = metrics if metrics is not None else RouterMetrics()
        self.enable_cache = bool(enable_cache)
        self.enable_rollup = bool(enable_rollup)
        self.auto_build = bool(auto_build)
        # explicit None checks: an *empty* ResultCache is falsy (len 0),
        # so ``cache or ResultCache()`` would silently drop an injected
        # empty cache
        self.cache = cache if cache is not None else ResultCache()
        self.per_box_cache_max_batch = int(per_box_cache_max_batch)
        # hotness statistics are sampled 1-in-N routed calls: admission
        # thresholds only need rates, and the tracker must never be the
        # reason the cache-hit fast path stops being fast
        self.observe_every = max(1, int(observe_every))
        self._observe_tick = 0
        self.tracker = (
            tracker if tracker is not None else HotPatternTracker(self.shape)
        )
        self.builder: Optional[RollupBuilder] = None
        if self.enable_rollup:
            self.builder = RollupBuilder(
                self.backend, self.metrics, max_rollups=max_rollups
            )
        self._closed = False

    # -- reads ---------------------------------------------------------------

    def route_many(
        self,
        lows,
        highs,
        *,
        deadline: Optional[Deadline] = None,
        allow_estimate: bool = False,
    ) -> RoutedBatch:
        """Answer a ``(Q, d)`` batch of boxes, each from its cheapest
        exact tier; returns values with per-query stamps and tiers.

        With ``allow_estimate=True`` (and a backend that supports it —
        cluster backends do), queries over unreachable shards come back
        as explicit bounded estimates in ``RoutedBatch.estimates``
        instead of failing the batch. Estimated values are **never**
        written to the cache tiers: only exact, stamped answers are
        memoizable, so a degraded window can't poison later reads.
        """
        start = time.perf_counter()
        if deadline is not None and deadline.expired:
            self.metrics.record_deadline_exceeded()
            deadline.check("routed read")
        lows, highs = indexing.normalize_range_batch(
            lows, highs, self.shape
        )
        q = len(lows)
        stamp = self.backend.current_stamp()

        # tier 1a: the whole-batch memo — a repeated dashboard page is
        # one lookup keyed by the batch bytes and the snapshot version
        batch_key = None
        if self.enable_cache and q:
            batch_key = ("batch", lows.tobytes(), highs.tobytes())
            status, value = self.cache.get(batch_key, stamp)
            if status is HIT:
                self.metrics.record_batch_hit(q)
                self._observe(lows, highs)
                self.metrics.record_route(time.perf_counter() - start, q)
                return RoutedBatch(
                    value, [stamp] * q, [TIER_CACHE] * q
                )
            if status is STALE:
                self.metrics.record_batch_stale()

        # each tier contributes (slots, values, stamp, tier); the batch
        # is assembled with vectorized fills at the end so a 10^4-box
        # page never pays a per-box Python loop outside the cache tier
        filled: list = []
        hit_slots: list = []
        hit_values: list = []
        use_box_cache = (
            self.enable_cache and q <= self.per_box_cache_max_batch
        )

        # tier 1b: per-box memoized results (small interactive batches —
        # large pages are the batch memo's job)
        if use_box_cache:
            pending = []
            stale = 0
            for i in range(q):
                key = ("box", lows[i].tobytes(), highs[i].tobytes())
                status, value = self.cache.get(key, stamp)
                if status is HIT:
                    hit_slots.append(i)
                    hit_values.append(value)
                else:
                    if status is STALE:
                        stale += 1
                    pending.append(i)
            pending = np.asarray(pending, dtype=np.intp)
            if hit_slots:
                self.metrics.record_cache_hits(len(hit_slots))
            if stale:
                self.metrics.record_cache_stale(stale)
        else:
            pending = np.arange(q, dtype=np.intp)

        # tier 2: pre-aggregated rollups, freshness-gated on the stamp
        if len(pending) and self.builder is not None:
            pending = self._serve_from_rollups(
                lows, highs, pending, stamp, filled
            )

        # tier 3: the RPS backend answers whatever is left, in one batch
        box_estimates = None
        if len(pending):
            backend_start = time.perf_counter()
            estimated_query = (
                getattr(self.backend, "query_many_estimated", None)
                if allow_estimate
                else None
            )
            if estimated_query is not None:
                values, box_estimates, backend_stamp = estimated_query(
                    lows[pending], highs[pending], deadline=deadline
                )
                if not any(e is not None for e in box_estimates):
                    box_estimates = None
            else:
                values, backend_stamp = self.backend.query_many(
                    lows[pending], highs[pending], deadline=deadline
                )
            self.metrics.record_backend_queries(
                len(pending), time.perf_counter() - backend_start
            )
            values = np.asarray(values)
            filled.append((pending, values, backend_stamp, TIER_RPS))
            if use_box_cache:
                for j, (slot, value) in enumerate(zip(pending, values)):
                    if (
                        box_estimates is not None
                        and box_estimates[j] is not None
                    ):
                        continue  # estimates are never cached
                    key = ("box", lows[slot].tobytes(), highs[slot].tobytes())
                    self.cache.put(key, backend_stamp, value)

        # assemble the batch: vectorized scatter per tier
        sources = [vals for _, vals, _, _ in filled]
        if hit_slots:
            hit_values = np.asarray(hit_values)
            sources.append(hit_values)
        dtype = np.result_type(*sources) if sources else np.float64
        out = np.empty(q, dtype=dtype)
        stamps = np.empty(q, dtype=object)
        tiers = np.empty(q, dtype=object)
        for slots, vals, tier_stamp, tier in filled:
            out[slots] = vals
            tiers[slots] = tier
            _assign_object(stamps, slots, tier_stamp)
        if hit_slots:
            hit_idx = np.asarray(hit_slots, dtype=np.intp)
            out[hit_idx] = hit_values
            tiers[hit_idx] = TIER_CACHE
            _assign_object(stamps, hit_idx, stamp)

        estimates = None
        if box_estimates is not None:
            estimates = [None] * q
            for j, slot in enumerate(pending):
                estimates[int(slot)] = box_estimates[j]

        # memoize the whole batch when one snapshot answered everything
        # — and no slot was estimated (degraded answers never enter any
        # cache tier)
        if batch_key is not None and estimates is None:
            uniform = stamps[0]
            if all(s == uniform for s in stamps):
                self.cache.put(batch_key, uniform, out)
        self._observe(lows, highs)
        self.metrics.record_route(time.perf_counter() - start, q)
        return RoutedBatch(out, stamps, tiers, estimates)

    def _serve_from_rollups(
        self, lows, highs, pending, stamp, filled
    ) -> np.ndarray:
        """Fill aligned pending queries from fresh rollups; returns the
        still-unanswered indices."""
        served_total = 0
        for granularity, rollup in self.builder.published().items():
            if not len(pending):
                break
            if rollup.stamp != stamp:
                # built from a superseded snapshot: the version handoff
                # has invalidated it — discard, and rebuild if the
                # pattern is still hot
                self.builder.discard_stale(stamp)
                if self.auto_build and granularity in (
                    self.tracker.hot_granularities()
                ):
                    self.builder.request(granularity)
                continue
            mask = rollup.covers_mask(lows[pending], highs[pending])
            if not mask.any():
                continue
            covered = pending[mask]
            values = rollup.range_sum_many(lows[covered], highs[covered])
            filled.append((covered, values, rollup.stamp, TIER_ROLLUP))
            served_total += len(covered)
            pending = pending[~mask]
        if served_total:
            self.metrics.record_rollup_hits(served_total)
        return pending

    def _observe(self, lows, highs) -> None:
        """Feed the tracker (1-in-``observe_every`` calls); kick off
        builds for newly-hot patterns."""
        if self.builder is None:
            return
        tick = self._observe_tick
        self._observe_tick = tick + 1
        if tick % self.observe_every:
            return
        self.tracker.observe_many(lows, highs)
        if not self.auto_build:
            return
        for granularity in self.tracker.hot_granularities():
            if self.builder.get(granularity) is None:
                self.builder.request(granularity)

    def range_sum_many(
        self,
        lows,
        highs,
        *,
        deadline: Optional[Deadline] = None,
        allow_estimate: bool = False,
    ):
        """Drop-in batched range sums (values only).

        With ``allow_estimate=True`` returns ``(values, estimates)``
        mirroring :meth:`CubeCluster.range_sum_many
        <repro.cluster.cluster.CubeCluster.range_sum_many>`."""
        batch = self.route_many(
            lows, highs, deadline=deadline, allow_estimate=allow_estimate
        )
        if allow_estimate:
            return batch.values, list(batch.estimates)
        return batch.values

    def range_sum(
        self,
        low: Sequence[int],
        high: Sequence[int],
        *,
        deadline: Optional[Deadline] = None,
    ):
        """One routed range sum."""
        return self.route_many([low], [high], deadline=deadline).values[0]

    # -- writes (passthrough: invalidation rides the version handoff) --------

    def submit_batch(
        self,
        updates: Iterable[Tuple[Sequence[int], object]],
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        """Forward one update group to the backend. Nothing to purge:
        the version bump orphans every affected cache entry exactly."""
        return self.backend.submit_batch(
            updates, timeout=timeout, deadline=deadline
        )

    def submit_delta(
        self,
        index: Sequence[int],
        delta,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        return self.submit_batch([(index, delta)], timeout=timeout,
                                 deadline=deadline)

    def flush(self, timeout: Optional[float] = None):
        return self.backend.flush(timeout=timeout)

    # -- rollup control ------------------------------------------------------

    def build_rollup(self, granularity: int, *, wait: bool = True):
        """Materialize a rollup now (``wait=True``) or in the background.

        Returns the published :class:`~repro.routing.rollup.RollupCube`
        when building synchronously (None on a degraded/failed build).
        """
        if self.builder is None:
            raise ValueError("rollup tier is disabled on this router")
        if wait:
            return self.builder.build_now(granularity)
        self.builder.request(granularity)
        return None

    def purge(self) -> None:
        """Drop every cached result and published rollup (hygiene —
        correctness never requires it)."""
        self.cache.purge()
        if self.builder is not None:
            for granularity in list(self.builder.published()):
                self.builder._published.pop(granularity, None)

    # -- lifecycle and reporting ---------------------------------------------

    def stats(self) -> Dict:
        """Router tiers, cache occupancy, tracker state, and the
        backend's own stats, one plain dict."""
        report = {
            "router": self.metrics.snapshot(),
            "cache": self.cache.stats(),
            "tracker": self.tracker.stats(),
            "rollups": (
                self.builder.stats() if self.builder is not None else None
            ),
        }
        report["backend"] = self.backend.stats()
        return report

    def close(self) -> None:
        """Stop the rollup builder (the backend is left running)."""
        if self._closed:
            return
        self._closed = True
        if self.builder is not None:
            self.builder.close()

    def __enter__(self) -> "QueryRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryRouter(shape={self.shape}, cache={self.enable_cache}, "
            f"rollup={self.enable_rollup})"
        )

"""Adaptive query routing: cache -> rollup -> RPS, snapshot-exact.

The two-tier serving front from the ISSUE: a
:class:`~repro.routing.router.QueryRouter` answers each box query from
the cheapest tier that is exact at the current snapshot version —
memoized results (:class:`~repro.routing.cache.ResultCache`), coarse
pre-aggregated rollups (:class:`~repro.routing.rollup.RollupCube`,
materialized in the background by
:class:`~repro.routing.rollup.RollupBuilder` for patterns the
:class:`~repro.routing.hotness.HotPatternTracker` learns are hot), or
the backing RPS service/cluster itself. Invalidation is exact and
TTL-free: every cached artifact carries the snapshot version it was
computed from, and is served only while that stamp matches the
backend's current version.
"""

from repro.routing.cache import HIT, MISS, STALE, ResultCache
from repro.routing.hotness import (
    HotPatternTracker,
    aligned_mask,
    default_granularities,
)
from repro.routing.rollup import RollupBuilder, RollupCube, block_boxes
from repro.routing.router import (
    TIER_CACHE,
    TIER_ROLLUP,
    TIER_RPS,
    ClusterBackend,
    QueryRouter,
    RoutedBatch,
    ServiceBackend,
    wrap_backend,
)

__all__ = [
    "HIT",
    "MISS",
    "STALE",
    "TIER_CACHE",
    "TIER_ROLLUP",
    "TIER_RPS",
    "ClusterBackend",
    "HotPatternTracker",
    "QueryRouter",
    "ResultCache",
    "RollupBuilder",
    "RollupCube",
    "RoutedBatch",
    "ServiceBackend",
    "aligned_mask",
    "block_boxes",
    "default_granularities",
    "wrap_backend",
]

"""Coarse pre-aggregated rollup cubes, versioned against snapshots.

A rollup at granularity ``g`` partitions every dimension into blocks of
``g`` cells (a ragged final block absorbs the remainder) and stores the
*prefix sums of the block totals*. That coarse prefix cube is tiny —
``prod(ceil(n_i / g))`` cells, chosen to stay cache-resident — yet it
answers **any grid-aligned box exactly** in one vectorized
inclusion–exclusion, including boxes the workload has never issued
before. This is the two-tier shape of the AppLovin exemplar (hot
patterns from pre-aggregates, general engine as fallback) adapted to
the RPS serving layer's snapshot discipline:

* a rollup is built from **one consistent snapshot** — the block totals
  come from a single batched ``query_many`` against the backend, whose
  answer is stamped with the snapshot version it read;
* the published rollup carries that stamp; the router serves from it
  only while the stamp still matches the backend's current version, and
  discards it the moment the writer publishes a newer snapshot. No
  TTLs — invalidation rides the exact version handoff.

Builds run on a background thread (:class:`RollupBuilder`) so the read
path never blocks on materialization; a failed build is counted and the
affected queries simply keep falling through to the RPS tier.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.prefix import build_prefix_array
from repro.routing.hotness import aligned_mask

#: build-queue sentinel: wakes the builder thread at close time
_STOP = object()


class RollupCube:
    """One materialized coarse rollup: block-total prefix sums.

    Args:
        granularity: block edge length ``g`` (every dimension).
        shape: the *source* cube shape the rollup aggregates.
        block_sums: dense array of per-block totals, shape
            ``ceil(n_i / g)`` per dimension.
        stamp: the snapshot version the block totals were read from.
    """

    def __init__(
        self,
        granularity: int,
        shape: Sequence[int],
        block_sums: np.ndarray,
        stamp: Hashable,
    ) -> None:
        self.granularity = int(granularity)
        self.shape = tuple(int(n) for n in shape)
        self.stamp = stamp
        blocks = np.asarray(block_sums)
        expected = tuple(
            -(-n // self.granularity) for n in self.shape
        )
        if blocks.shape != expected:
            raise ValueError(
                f"block_sums shape {blocks.shape} != expected {expected} "
                f"for shape {self.shape} at granularity {self.granularity}"
            )
        self.blocks_shape = blocks.shape
        self._prefix = build_prefix_array(blocks)
        self.nbytes = int(self._prefix.nbytes)

    def covers_mask(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """Which of the ``(Q, d)`` boxes this rollup answers exactly."""
        return aligned_mask(lows, highs, self.granularity, self.shape)

    def range_sum_many(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """Exact sums for *aligned* ``(Q, d)`` boxes via the coarse
        prefix table (callers gate on :meth:`covers_mask` first)."""
        g = self.granularity
        # block coordinates: lo // g and ceil((hi + 1) / g) - 1; an
        # unaligned full-extent edge (hi + 1 == n) maps to the final,
        # possibly ragged block
        blo = lows // g
        bhi = -(-(highs + 1) // g) - 1
        q, d = blo.shape
        if not q:
            return np.empty(0, dtype=self._prefix.dtype)
        # vectorized inclusion–exclusion over the 2^d corners of the
        # coarse prefix table (the same identity PrefixSumCube uses)
        total = np.zeros(q, dtype=self._prefix.dtype)
        for corner in itertools.product((0, 1), repeat=d):
            pick = np.where(np.asarray(corner, dtype=bool), blo - 1, bhi)
            valid = (pick >= 0).all(axis=1)
            if not valid.any():
                continue
            flat = np.ravel_multi_index(
                tuple(pick[valid].T), self.blocks_shape, mode="clip"
            )
            sign = (-1) ** sum(corner)
            np.add.at(
                total,
                np.flatnonzero(valid),
                sign * self._prefix.reshape(-1)[flat],
            )
        return total

    def __repr__(self) -> str:
        return (
            f"RollupCube(g={self.granularity}, blocks={self.blocks_shape}, "
            f"stamp={self.stamp!r}, nbytes={self.nbytes})"
        )


def block_boxes(
    shape: Sequence[int], granularity: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Every block's ``(low, high)`` corners, in C order of the block
    grid — the batched query that materializes one rollup."""
    g = int(granularity)
    shape = tuple(int(n) for n in shape)
    blocks = tuple(-(-n // g) for n in shape)
    coords = np.stack(
        [axis.reshape(-1) for axis in np.indices(blocks)], axis=1
    ).astype(np.intp)
    lows = coords * g
    highs = np.minimum((coords + 1) * g - 1, np.asarray(shape) - 1)
    return lows, highs


class RollupBuilder:
    """Materializes rollups on a background thread and publishes them
    atomically.

    The builder reads block totals through the backend's own batched
    query path, so every rollup is built from one consistent snapshot
    per shard and inherits its exact version stamp. Publication is a
    single dict swap under a lock; the router's freshness gate (stamp ==
    current version) does the discarding, and :meth:`discard_stale`
    lets it drop superseded rollups eagerly.

    Args:
        backend: any router backend (``query_many(lows, highs) ->
            (values, stamp)`` plus ``shape``).
        metrics: the router's :class:`~repro.metrics.router.RouterMetrics`.
        max_rollups: most granularities kept published at once (the
            coarsest — smallest — survive a trim).
    """

    def __init__(self, backend, metrics, *, max_rollups: int = 4) -> None:
        self._backend = backend
        self._metrics = metrics
        self._max_rollups = int(max_rollups)
        self._lock = threading.Lock()
        self._published: Dict[int, RollupCube] = {}
        self._pending: set = set()
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="rollup-builder", daemon=True
        )
        self._thread.start()

    # -- the read side -------------------------------------------------------

    def get(self, granularity: int) -> Optional[RollupCube]:
        """The published rollup at ``granularity`` (any stamp), or None."""
        with self._lock:
            return self._published.get(int(granularity))

    def published(self) -> Dict[int, RollupCube]:
        """Snapshot of every published rollup, coarsest first."""
        with self._lock:
            return dict(
                sorted(self._published.items(), key=lambda kv: -kv[0])
            )

    # -- the build side ------------------------------------------------------

    def request(self, granularity: int) -> bool:
        """Enqueue a background build (deduplicated); True if enqueued."""
        g = int(granularity)
        with self._lock:
            if self._closed or g in self._pending:
                return False
            self._pending.add(g)
        self._queue.put(g)
        return True

    def build_now(self, granularity: int) -> Optional[RollupCube]:
        """Build and publish synchronously; None on a failed build.

        The deterministic entry point tests, benchmarks, and the CLI's
        warm-up path use — the background thread exists so the *serving*
        path never pays this.
        """
        g = int(granularity)
        try:
            rollup = self._build(g)
        except Exception:
            self._metrics.record_rollup_build_failure()
            return None
        self._publish(rollup)
        return rollup

    def _build(self, granularity: int) -> RollupCube:
        lows, highs = block_boxes(self._backend.shape, granularity)
        values, stamp = self._backend.query_many(lows, highs)
        blocks = np.asarray(values).reshape(
            tuple(-(-n // granularity) for n in self._backend.shape)
        )
        return RollupCube(granularity, self._backend.shape, blocks, stamp)

    def _publish(self, rollup: RollupCube) -> None:
        with self._lock:
            self._published[rollup.granularity] = rollup
            while len(self._published) > self._max_rollups:
                finest = min(self._published)
                del self._published[finest]
                self._metrics.record_rollup_discard()
        self._metrics.record_rollup_built()

    def discard_stale(self, stamp: Hashable) -> int:
        """Drop every published rollup whose stamp is not ``stamp``."""
        dropped = 0
        with self._lock:
            for g in [
                g
                for g, rollup in self._published.items()
                if rollup.stamp != stamp
            ]:
                del self._published[g]
                dropped += 1
        for _ in range(dropped):
            self._metrics.record_rollup_stale()
            self._metrics.record_rollup_discard()
        return dropped

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                rollup = self._build(item)
            except Exception:
                # degrade, never propagate: the router keeps answering
                # from the RPS tier and the failure is visible in stats
                self._metrics.record_rollup_build_failure()
                continue
            finally:
                with self._lock:
                    self._pending.discard(item)
            self._publish(rollup)

    def close(self, timeout: float = 10.0) -> None:
        """Stop the builder thread (published rollups stay readable)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)
        self._thread.join(timeout)

    def stats(self) -> Dict:
        with self._lock:
            return {
                "published": {
                    g: {"stamp": r.stamp, "nbytes": r.nbytes}
                    for g, r in sorted(self._published.items())
                },
                "pending_builds": len(self._pending),
            }

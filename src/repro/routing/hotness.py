"""Learning which box shapes a workload repeats.

Dashboards do not ask random questions: the same "last 7 days x all
regions" boxes arrive millions of times, and almost all of them are
*aligned* — their edges sit on calendar/bucket boundaries. The tracker
exploits that structure two ways:

* a bounded **hot-box counter** (space-saving style: when the table is
  full, the new box takes over the minimum-count slot and inherits its
  count) names the top repeated exact boxes — what the result cache
  will be serving;
* per-**granularity alignment counters** over a small ladder of grid
  sizes decide when a coarse pre-aggregated rollup would pay for
  itself: once enough traffic is aligned to grid ``g``, the
  :class:`~repro.routing.rollup.RollupBuilder` materializes the
  ``g``-granular rollup and every aligned box — including ones never
  seen before — is answered from it.

Everything is counter-based and O(ladder + 1) per observed box, so the
tracker can sit on the hot read path.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def default_granularities(
    shape: Sequence[int], max_levels: int = 4
) -> Tuple[int, ...]:
    """A descending power-of-two grid ladder for ``shape``.

    Starts at half the smallest dimension and halves down to 2, keeping
    at most ``max_levels`` levels — coarse grids first, because a
    coarser rollup is smaller (cache-resident, cheaper to build) and a
    box aligned to a coarse grid is aligned to every finer power-of-two
    grid below it.
    """
    smallest = min(int(n) for n in shape)
    ladder: List[int] = []
    g = 1
    while 2 * g <= smallest:
        g *= 2
    # g is the largest power of two <= smallest; start one level down so
    # a rollup always has at least two blocks per dimension
    g //= 2
    while g >= 2 and len(ladder) < max_levels:
        ladder.append(g)
        g //= 2
    return tuple(ladder)


def aligned_mask(
    lows: np.ndarray,
    highs: np.ndarray,
    granularity: int,
    shape: Sequence[int],
) -> np.ndarray:
    """Boolean mask of boxes whose edges all sit on the ``g`` grid.

    A box is aligned when every ``low`` is a multiple of ``g`` and every
    exclusive ``high + 1`` is a multiple of ``g`` *or* the full extent
    of its dimension (so "all of axis k" stays aligned even when ``g``
    does not divide ``n_k``).
    """
    g = int(granularity)
    bounds = np.asarray(shape, dtype=np.intp)
    upper = highs + 1
    return (
        (lows % g == 0).all(axis=1)
        & ((upper % g == 0) | (upper == bounds)).all(axis=1)
    )


class HotPatternTracker:
    """Counts normalized box signatures to find cacheable patterns.

    Args:
        shape: the cube shape (alignment needs dimension extents).
        granularities: the grid ladder to test alignment against
            (defaults to :func:`default_granularities`).
        hot_min_count: a granularity is *hot* once this many aligned
            boxes were observed...
        hot_min_fraction: ...and they make up at least this fraction of
            all observed boxes.
        max_boxes: bound on the exact-box counter table.
        sample_per_batch: at most this many boxes per observed batch
            feed the exact-box counter (stride-sampled). Alignment
            counters — the ones that gate rollup builds — always see
            the whole batch (they are vectorized); the per-box table is
            reporting-only, and sampling keeps the tracker off the hot
            read path's critical loop.
    """

    def __init__(
        self,
        shape: Sequence[int],
        *,
        granularities: Optional[Sequence[int]] = None,
        hot_min_count: int = 64,
        hot_min_fraction: float = 0.05,
        max_boxes: int = 4096,
        sample_per_batch: int = 128,
    ) -> None:
        self.shape = tuple(int(n) for n in shape)
        if granularities is None:
            granularities = default_granularities(self.shape)
        self.granularities = tuple(
            sorted({int(g) for g in granularities}, reverse=True)
        )
        for g in self.granularities:
            if g < 2:
                raise ValueError(f"granularity must be >= 2, got {g}")
        self.hot_min_count = int(hot_min_count)
        self.hot_min_fraction = float(hot_min_fraction)
        self.max_boxes = int(max_boxes)
        self.sample_per_batch = int(sample_per_batch)
        self._lock = threading.Lock()
        self._observed = 0
        self._aligned_counts: Dict[int, int] = {
            g: 0 for g in self.granularities
        }
        self._box_counts: Dict[Tuple, int] = {}

    def observe_many(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Fold one batch of (validated ``(Q, d)``) boxes into the
        counters.

        Batches beyond ``sample_per_batch`` are stride-sampled first and
        the aligned counts scaled back up, so one observation is O(the
        sample) no matter how large the page — the tracker sits on the
        hot read path and estimates are all admission needs.
        """
        q = len(lows)
        if not q:
            return
        scale = 1
        if q > self.sample_per_batch:
            step = q // self.sample_per_batch
            lows = lows[::step]
            highs = highs[::step]
            scale = q / len(lows)
        aligned = {
            g: int(
                round(
                    scale * aligned_mask(lows, highs, g, self.shape).sum()
                )
            )
            for g in self.granularities
        }
        with self._lock:
            self._observed += q
            for g, count in aligned.items():
                self._aligned_counts[g] += count
            for lo, hi in zip(lows, highs):
                # raw-bytes keys: the loop is hot-path priced, and the
                # inputs are normalized (Q, d) intp rows already
                key = (lo.tobytes(), hi.tobytes())
                slot = self._box_counts.get(key)
                if slot is not None:
                    self._box_counts[key] = slot + 1
                elif len(self._box_counts) < self.max_boxes:
                    self._box_counts[key] = 1
                else:
                    # space-saving takeover: the newcomer claims the
                    # minimum slot and inherits its count (overestimates
                    # never lose a truly hot box, which is the side that
                    # matters for cache admission)
                    victim = min(self._box_counts, key=self._box_counts.get)
                    count = self._box_counts.pop(victim)
                    self._box_counts[key] = count + 1

    def hot_granularities(self) -> Tuple[int, ...]:
        """Grid sizes whose aligned traffic passes both thresholds,
        coarsest first."""
        with self._lock:
            observed = self._observed
            if not observed:
                return ()
            return tuple(
                g
                for g in self.granularities
                if self._aligned_counts[g] >= self.hot_min_count
                and self._aligned_counts[g] / observed
                >= self.hot_min_fraction
            )

    def top_boxes(self, k: int = 10) -> List[Tuple[Tuple, int]]:
        """The ``k`` most-repeated exact boxes as ``((lo, hi), count)``."""
        with self._lock:
            ranked = sorted(
                self._box_counts.items(), key=lambda item: -item[1]
            )
        return [
            (
                (
                    tuple(np.frombuffer(lo, dtype=np.intp).tolist()),
                    tuple(np.frombuffer(hi, dtype=np.intp).tolist()),
                ),
                count,
            )
            for (lo, hi), count in ranked[: int(k)]
        ]

    def stats(self) -> Dict:
        """Observation totals and per-granularity alignment counts."""
        with self._lock:
            return {
                "observed": self._observed,
                "aligned_counts": dict(self._aligned_counts),
                "tracked_boxes": len(self._box_counts),
                "granularities": list(self.granularities),
            }

    def __repr__(self) -> str:
        return (
            f"HotPatternTracker(observed={self._observed}, "
            f"granularities={list(self.granularities)})"
        )

"""The disk-resident RPS configuration of Section 4.4.

"Given suitable box sizes, it may be feasible to keep all of the overlay
boxes in main memory, while RP resides on disk." This class realizes that
configuration: the overlay (anchors + borders) is an ordinary in-memory
:class:`~repro.core.overlay.Overlay`, while the RP array lives on the
simulated disk behind a buffer pool. With the box-aligned layout every
box-local RP operation — the RP half of a prefix-sum lookup, and the
entire RP cascade of an update — touches exactly one page, which is the
paper's "constant number of disk reads or writes" claim.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod
from repro.core.blocked import blocked_prefix_all_axes
from repro.core.overlay import Overlay
from repro.core.rps import default_box_size
from repro.storage.layout import BoxAlignedLayout, PageLayout
from repro.storage.paged_array import PagedNDArray


class PagedRPSCube(RangeSumMethod):
    """Relative prefix sums with RP on (simulated) disk, overlay in RAM.

    Args:
        array: dense source cube.
        box_size: overlay box side; defaults to ``sqrt(n)``.
        layout: RP page layout; defaults to the paper-recommended
            box-aligned layout (one page per box). Pass a
            :class:`~repro.storage.layout.RowMajorLayout` to measure the
            unaligned alternative.
        buffer_capacity: pages the RP buffer pool may cache.
    """

    name = "paged_rps"

    def __init__(
        self,
        array: np.ndarray,
        box_size=None,
        layout: PageLayout = None,
        buffer_capacity: int = 16,
    ) -> None:
        self._requested_box_size = box_size
        self._requested_layout = layout
        self._buffer_capacity = buffer_capacity
        super().__init__(array)

    def _build(self, array: np.ndarray) -> None:
        k = (
            self._requested_box_size
            if self._requested_box_size is not None
            else default_box_size(array.shape)
        )
        self.box_sizes = indexing.normalize_box_sizes(k, array.shape)
        self.overlay = Overlay(array, self.box_sizes, counter=self.counter)
        layout = self._requested_layout or BoxAlignedLayout(
            array.shape, self.box_sizes
        )
        rp_values = blocked_prefix_all_axes(array, self.box_sizes)
        self.rp_pages = PagedNDArray.from_array(
            rp_values, layout, buffer_capacity=self._buffer_capacity
        )

    @property
    def box_size(self):
        """The box side length: an int when uniform, else the per-axis tuple."""
        if len(set(self.box_sizes)) == 1:
            return self.box_sizes[0]
        return self.box_sizes

    # -- queries ----------------------------------------------------------------

    def prefix_sum(self, target: Sequence[int]):
        """Overlay lookups from RAM plus exactly one paged RP cell read."""
        t = indexing.normalize_index(target, self.shape)
        total = self.overlay.prefix_contribution(t)
        self.counter.read(1, structure="RP")
        return total + self.rp_pages.get(t)

    # -- updates ----------------------------------------------------------------

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """In-RAM overlay cascade plus a single-box RP page rewrite."""
        idx = indexing.normalize_index(index, self.shape)
        written = 0
        for cell in self._box_cells_dominating(idx):
            self.rp_pages.add(cell, delta)
            written += 1
        self.counter.write(written, structure="RP")
        self.overlay.apply_delta(idx, delta)

    def _box_cells_dominating(self, idx):
        """Cells of idx's box at or after idx on every axis."""
        ranges = [
            range(i, min((i // k) * k + k, n))
            for i, k, n in zip(idx, self.box_sizes, self.shape)
        ]
        return itertools.product(*ranges)

    # -- I/O accounting ------------------------------------------------------------

    def io_stats(self) -> dict:
        """Page-level I/O and buffer statistics for the RP array."""
        disk = self.rp_pages.disk.stats
        pool = self.rp_pages.pool.stats
        return {
            "pages_read": disk.pages_read,
            "pages_written": disk.pages_written,
            "buffer_hits": pool.hits,
            "buffer_misses": pool.misses,
            "buffer_hit_rate": pool.hit_rate,
        }

    def reset_io_stats(self) -> None:
        """Zero page and buffer counters (keeps cell counters)."""
        self.rp_pages.reset_stats()

    def flush(self) -> int:
        """Write dirty RP pages back to disk; returns pages written."""
        return self.rp_pages.pool.flush()

    def storage_cells(self) -> int:
        """Overlay cells (RAM) plus RP page slots (disk, incl. padding)."""
        return (
            self.overlay.storage_cells()
            + self.rp_pages.layout.page_count * self.rp_pages.layout.page_size
        )

    def overlay_memory_cells(self) -> int:
        """The RAM-resident portion — what Section 4.4 wants kept small."""
        return self.overlay.storage_cells()

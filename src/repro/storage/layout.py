"""Mappings from d-dimensional cell coordinates to (page, slot) pairs.

Section 4.4 recommends choosing the overlay box size "such that the
corresponding region of RP fits exactly into a constant number of disk
pages". Two layouts make that recommendation testable:

* :class:`BoxAlignedLayout` — one page per overlay box (the paper's
  recommended configuration): any box-local operation touches exactly
  one page.
* :class:`RowMajorLayout` — cells in global row-major order chopped into
  pages (the naive layout): a box-local operation can straddle many
  pages. The E9 benchmark quantifies the difference.
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import StorageError

Coord = Tuple[int, ...]


class PageLayout(abc.ABC):
    """Bijection between cube cells and (page_id, slot) addresses."""

    shape: Tuple[int, ...]
    page_size: int

    @property
    @abc.abstractmethod
    def page_count(self) -> int:
        """Pages needed to hold the whole cube."""

    @abc.abstractmethod
    def locate(self, coord: Sequence[int]) -> Tuple[int, int]:
        """(page_id, slot) of one cell."""

    def pages_for_cells(self, coords: Iterator[Coord]) -> set:
        """Distinct pages covering a set of cells."""
        return {self.locate(c)[0] for c in coords}


class RowMajorLayout(PageLayout):
    """Global row-major cell order chunked into fixed-size pages."""

    def __init__(self, shape: Sequence[int], page_size: int) -> None:
        if page_size < 1:
            raise StorageError(f"page size must be >= 1, got {page_size}")
        self.shape = tuple(int(n) for n in shape)
        self.page_size = int(page_size)
        self._strides = np.array(
            [int(np.prod(self.shape[i + 1 :])) for i in range(len(self.shape))],
            dtype=np.int64,
        )
        self._cells = int(np.prod(self.shape))

    @property
    def page_count(self) -> int:
        return -(-self._cells // self.page_size)

    def locate(self, coord: Sequence[int]) -> Tuple[int, int]:
        flat = int(np.dot(np.asarray(coord, dtype=np.int64), self._strides))
        if not 0 <= flat < self._cells:
            raise StorageError(f"coordinate {tuple(coord)} outside {self.shape}")
        return flat // self.page_size, flat % self.page_size


class BoxAlignedLayout(PageLayout):
    """One page per overlay box; slots are box-local row-major.

    The page size is the full box volume ``k^d``; boxes truncated by the
    cube boundary leave their tail slots unused (padding), keeping the
    page <-> box correspondence exact, which is what makes every box-local
    RP operation a single-page operation.
    """

    def __init__(self, shape: Sequence[int], box_size) -> None:
        self.shape = tuple(int(n) for n in shape)
        if isinstance(box_size, int):
            sizes = (box_size,) * len(self.shape)
        else:
            sizes = tuple(int(k) for k in box_size)
        if len(sizes) != len(self.shape) or any(k < 1 for k in sizes):
            raise StorageError(f"invalid box sizes {sizes} for {self.shape}")
        self.box_sizes = sizes
        self.box_size = sizes[0] if len(set(sizes)) == 1 else sizes
        self.page_size = int(np.prod(sizes))
        self.boxes_shape = tuple(
            -(-n // k) for n, k in zip(self.shape, sizes)
        )
        self._box_strides = np.array(
            [
                int(np.prod(self.boxes_shape[i + 1 :]))
                for i in range(len(self.boxes_shape))
            ],
            dtype=np.int64,
        )

    @property
    def page_count(self) -> int:
        return int(np.prod(self.boxes_shape))

    def locate(self, coord: Sequence[int]) -> Tuple[int, int]:
        coord = tuple(int(c) for c in coord)
        for c, n in zip(coord, self.shape):
            if not 0 <= c < n:
                raise StorageError(f"coordinate {coord} outside {self.shape}")
        box = tuple(c // k for c, k in zip(coord, self.box_sizes))
        offsets = tuple(c % k for c, k in zip(coord, self.box_sizes))
        page = int(np.dot(np.asarray(box, dtype=np.int64), self._box_strides))
        slot = 0
        for off, k in zip(offsets, self.box_sizes):
            slot = slot * k + off
        return page, slot

    def page_of_box(self, box: Sequence[int]) -> int:
        """Page id of a box given by its box-grid coordinates."""
        return int(np.dot(np.asarray(box, dtype=np.int64), self._box_strides))

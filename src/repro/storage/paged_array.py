"""A d-dimensional array stored on the simulated disk through a buffer pool.

The building block of the Section 4.4 configuration: the RP array becomes
a :class:`PagedNDArray` while the (small) overlay stays in RAM.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import PageLayout


class PagedNDArray:
    """Point-addressable d-dimensional array backed by disk pages.

    Args:
        layout: cell-to-page mapping (box-aligned or row-major).
        buffer_capacity: pages the pool may cache; defaults to 16.
        dtype: cell dtype.
    """

    def __init__(
        self,
        layout: PageLayout,
        buffer_capacity: int = 16,
        dtype=np.float64,
    ) -> None:
        self.layout = layout
        self.shape = layout.shape
        self.disk = SimulatedDisk(layout.page_size, dtype=dtype)
        self.disk.allocate(layout.page_count)
        self.pool = BufferPool(self.disk, buffer_capacity)

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        layout: PageLayout,
        buffer_capacity: int = 16,
    ) -> "PagedNDArray":
        """Bulk-load a dense array onto disk (not charged to I/O stats).

        Bulk loading models the one-time cube build, which the paper does
        not count against per-operation costs; counters are reset after.
        """
        paged = cls(layout, buffer_capacity, dtype=array.dtype)
        for coord in np.ndindex(*array.shape):
            paged.set(coord, array[coord])
        paged.pool.flush()
        paged.reset_stats()
        return paged

    def get(self, coord: Sequence[int]):
        """Read one cell (may fault one page in)."""
        page_id, slot = self.layout.locate(coord)
        return self.pool.get_page(page_id)[slot]

    def set(self, coord: Sequence[int], value) -> None:
        """Write one cell (marks its page dirty)."""
        page_id, slot = self.layout.locate(coord)
        self.pool.get_page(page_id, for_write=True)[slot] = value

    def add(self, coord: Sequence[int], delta) -> None:
        """Add ``delta`` to one cell."""
        page_id, slot = self.layout.locate(coord)
        self.pool.get_page(page_id, for_write=True)[slot] += delta

    def to_array(self) -> np.ndarray:
        """Materialize the full array in memory (verification/debug)."""
        out = np.empty(self.shape, dtype=self.disk.dtype)
        for coord in np.ndindex(*self.shape):
            out[coord] = self.get(coord)
        return out

    def reset_stats(self) -> None:
        """Zero disk and buffer counters (e.g. after bulk load)."""
        self.disk.stats.reset()
        self.pool.stats.reset()

    def __repr__(self) -> str:
        return (
            f"PagedNDArray(shape={self.shape}, "
            f"pages={self.layout.page_count}, "
            f"page_size={self.layout.page_size})"
        )

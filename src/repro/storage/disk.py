"""A simulated block-based disk.

Section 4.4 of the paper reasons about configurations where RP lives on
disk while overlays stay in main memory: "since disks are block-based
devices, the cost of accessing a cell in RP is related to the cost of
accessing a disk block". This simulator provides exactly the abstraction
that argument needs — fixed-size pages of cells, with read/write page
counters. The paper's claims are about page *counts*; an optional
:class:`LatencyModel` additionally charges abstract seek/transfer time so
benchmarks can express the random-vs-sequential asymmetry when they want
to, while the default keeps time out of the picture entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError


@dataclass
class DiskStats:
    """Cumulative page-level I/O counters and modeled service time."""

    pages_read: int = 0
    pages_written: int = 0
    elapsed: float = 0.0

    @property
    def total_ios(self) -> int:
        """Reads plus writes — the unit Section 4.4's argument counts."""
        return self.pages_read + self.pages_written

    def reset(self) -> None:
        """Zero the counters."""
        self.pages_read = 0
        self.pages_written = 0
        self.elapsed = 0.0


@dataclass(frozen=True)
class LatencyModel:
    """Abstract per-I/O service-time model.

    ``seek`` is charged when an access is not sequential with the
    previous one (a different or non-adjacent page); ``transfer`` is
    charged per page moved. Units are abstract (the paper's argument is
    about counts; the model lets benchmarks express the seek/transfer
    asymmetry that makes page-aligned layouts matter on spinning media).
    """

    seek: float = 0.0
    transfer: float = 0.0


class SimulatedDisk:
    """Fixed-size pages of numeric cells with I/O accounting.

    Args:
        page_size: cells per page (the disk block size, in cell units).
        dtype: cell dtype for all pages.
        latency: optional :class:`LatencyModel`; by default all service
            times are zero and only counts accumulate.
        faults: optional :class:`~repro.faults.FaultPlan`; when set, the
            plan's scheduled disk faults fire here — write failures
            raise :class:`~repro.faults.InjectedFault`, read corruption
            flips one cell of the returned copy (caught by
            ``verify_checksums``, silent otherwise — exactly the hazard
            checksums exist for), and latency spikes are charged to
            ``stats.elapsed``.
    """

    def __init__(
        self,
        page_size: int,
        dtype=np.float64,
        latency: LatencyModel = None,
        verify_checksums: bool = False,
        faults=None,
    ) -> None:
        if page_size < 1:
            raise StorageError(f"page size must be >= 1, got {page_size}")
        self.page_size = int(page_size)
        self.dtype = np.dtype(dtype)
        self.latency = latency if latency is not None else LatencyModel()
        self.verify_checksums = bool(verify_checksums)
        self.faults = faults
        self._pages: list = []
        self._checksums: list = []
        self._last_page: int = -2  # nothing is adjacent to the first access
        self.stats = DiskStats()

    @staticmethod
    def _checksum(data: np.ndarray) -> int:
        return hash(data.tobytes())

    def _charge(self, page_id: int) -> None:
        if page_id != self._last_page + 1 and page_id != self._last_page:
            self.stats.elapsed += self.latency.seek
        self.stats.elapsed += self.latency.transfer
        self._last_page = page_id

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    def allocate(self, pages: int) -> int:
        """Allocate ``pages`` zeroed pages; returns the first new page id."""
        if pages < 0:
            raise StorageError(f"cannot allocate {pages} pages")
        first = len(self._pages)
        for _ in range(pages):
            page = np.zeros(self.page_size, dtype=self.dtype)
            self._pages.append(page)
            self._checksums.append(self._checksum(page))
        return first

    def read_page(self, page_id: int) -> np.ndarray:
        """Return a copy of one page's cells; charges one page read.

        With ``verify_checksums=True``, a page whose contents no longer
        match the checksum recorded at write time raises
        :class:`~repro.errors.StorageError` — the torn-page/bit-rot
        detection real engines perform on every read.
        """
        self._check(page_id)
        self.stats.pages_read += 1
        self._charge(page_id)
        page = self._pages[page_id].copy()
        if self.faults is not None:
            corrupt, extra = self.faults.on_disk_read(site="disk")
            self.stats.elapsed += extra
            if corrupt:
                cell = self.faults.corruption_offset(self.page_size)
                page[cell] += 1
        if self.verify_checksums and (
            self._checksum(page) != self._checksums[page_id]
        ):
            raise StorageError(
                f"checksum mismatch reading page {page_id}: "
                f"on-disk contents are corrupt"
            )
        return page

    def write_page(self, page_id: int, data: np.ndarray) -> None:
        """Overwrite one page; charges one page write."""
        self._check(page_id)
        buf = np.asarray(data, dtype=self.dtype)
        if buf.shape != (self.page_size,):
            raise StorageError(
                f"page data must have shape ({self.page_size},), "
                f"got {buf.shape}"
            )
        if self.faults is not None:
            # an injected failure leaves the page untouched — the write
            # never happened, as with a failed block write
            self.stats.elapsed += self.faults.on_disk_write(site="disk")
        self._pages[page_id] = buf.copy()
        self._checksums[page_id] = self._checksum(buf)
        self.stats.pages_written += 1
        self._charge(page_id)

    def corrupt_page(self, page_id: int, cell: int = 0, delta=1) -> None:
        """Test hook: silently flip one on-disk cell, bypassing checksum
        maintenance (models media corruption between write and read)."""
        self._check(page_id)
        self._pages[page_id][cell] += delta

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise StorageError(
                f"page {page_id} out of range "
                f"(disk has {len(self._pages)} pages)"
            )

    def __repr__(self) -> str:
        return (
            f"SimulatedDisk(pages={self.page_count}, "
            f"page_size={self.page_size})"
        )

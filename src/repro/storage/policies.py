"""Page replacement policies for the buffer pool.

Section 4.4's argument only needs *a* cache between RP and the disk; which
replacement policy backs it changes the constant factors real deployments
see. Three classics are provided — LRU (the default), FIFO, and CLOCK
(second chance) — behind one small interface so the E9-style benchmarks
can ablate them.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import StorageError


class ReplacementPolicy(abc.ABC):
    """Decides which resident page to evict.

    The pool calls :meth:`admitted` when a page is faulted in,
    :meth:`touched` on every hit, :meth:`evict` when space is needed, and
    :meth:`removed` when a page leaves residency for any other reason.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def admitted(self, page_id: int) -> None:
        """A page became resident."""

    @abc.abstractmethod
    def touched(self, page_id: int) -> None:
        """A resident page was accessed."""

    @abc.abstractmethod
    def evict(self) -> int:
        """Choose and forget a victim page; returns its id."""

    @abc.abstractmethod
    def removed(self, page_id: int) -> None:
        """A page left residency without an eviction decision."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: evict the page untouched the longest."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def admitted(self, page_id: int) -> None:
        self._order[page_id] = None

    def touched(self, page_id: int) -> None:
        self._order.move_to_end(page_id)

    def evict(self) -> int:
        if not self._order:
            raise StorageError("nothing to evict")
        victim, _ = self._order.popitem(last=False)
        return victim

    def removed(self, page_id: int) -> None:
        self._order.pop(page_id, None)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict the page resident the longest,
    regardless of use."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def admitted(self, page_id: int) -> None:
        self._order[page_id] = None

    def touched(self, page_id: int) -> None:
        pass  # recency is ignored

    def evict(self) -> int:
        if not self._order:
            raise StorageError("nothing to evict")
        victim, _ = self._order.popitem(last=False)
        return victim

    def removed(self, page_id: int) -> None:
        self._order.pop(page_id, None)


class ClockPolicy(ReplacementPolicy):
    """CLOCK / second-chance: a circulating hand clears reference bits
    and evicts the first unreferenced page it meets."""

    name = "clock"

    def __init__(self) -> None:
        self._referenced: Dict[int, bool] = {}
        self._ring: list = []
        self._hand: int = 0

    def admitted(self, page_id: int) -> None:
        self._referenced[page_id] = True
        self._ring.append(page_id)

    def touched(self, page_id: int) -> None:
        self._referenced[page_id] = True

    def evict(self) -> int:
        if not self._ring:
            raise StorageError("nothing to evict")
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            page_id = self._ring[self._hand]
            if self._referenced.get(page_id, False):
                self._referenced[page_id] = False
                self._hand += 1
            else:
                del self._ring[self._hand]
                self._referenced.pop(page_id, None)
                return page_id

    def removed(self, page_id: int) -> None:
        if page_id in self._referenced:
            self._referenced.pop(page_id, None)
            index = self._ring.index(page_id)
            del self._ring[index]
            if index < self._hand:
                self._hand -= 1


POLICIES = {
    LruPolicy.name: LruPolicy,
    FifoPolicy.name: FifoPolicy,
    ClockPolicy.name: ClockPolicy,
}


def make_policy(name: Optional[str]) -> ReplacementPolicy:
    """Instantiate a policy by name (``None`` means LRU)."""
    if name is None:
        return LruPolicy()
    try:
        return POLICIES[name]()
    except KeyError:
        raise StorageError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None

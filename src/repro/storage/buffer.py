"""A buffer pool over the simulated disk, with pluggable replacement.

Completes the Section 4.4 substrate: cells of RP are only ever touched
through pages cached here, so the benchmark harness can report both cold
(page I/Os) and warm (buffer hits) behaviour of the disk-resident RPS
configuration. The replacement policy is pluggable (LRU by default; see
:mod:`repro.storage.policies`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.policies import ReplacementPolicy, make_policy


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for one pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero the counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """Page cache with write-back semantics and pluggable replacement.

    Args:
        disk: backing :class:`SimulatedDisk`.
        capacity: maximum cached pages; must be >= 1.
        policy: replacement policy — a name (``"lru"``, ``"fifo"``,
            ``"clock"``), a :class:`ReplacementPolicy` instance, or
            ``None`` for LRU.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int,
        policy: Union[str, ReplacementPolicy, None] = None,
    ) -> None:
        if capacity < 1:
            raise StorageError(f"buffer capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = int(capacity)
        self.stats = BufferStats()
        self.policy: ReplacementPolicy = (
            policy if isinstance(policy, ReplacementPolicy)
            else make_policy(policy)
        )
        self._frames: Dict[int, np.ndarray] = {}
        self._dirty: set = set()

    def get_page(self, page_id: int, for_write: bool = False) -> np.ndarray:
        """Return the cached frame for a page, faulting it in if needed.

        The returned array is the live frame: mutations become durable at
        eviction or :meth:`flush` time. Pass ``for_write=True`` when the
        caller will mutate it so the frame is marked dirty.
        """
        if page_id in self._frames:
            self.policy.touched(page_id)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            self._evict_if_full()
            self._frames[page_id] = self.disk.read_page(page_id)
            self.policy.admitted(page_id)
        if for_write:
            self._dirty.add(page_id)
        return self._frames[page_id]

    def _evict_if_full(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = self.policy.evict()
            frame = self._frames.pop(victim)
            if victim in self._dirty:
                self.disk.write_page(victim, frame)
                self._dirty.discard(victim)
            self.stats.evictions += 1

    def flush(self) -> int:
        """Write every dirty frame back to disk; returns pages written."""
        written = 0
        for page_id in sorted(self._dirty):
            self.disk.write_page(page_id, self._frames[page_id])
            written += 1
        self._dirty.clear()
        return written

    def drop(self) -> None:
        """Flush then empty the cache (simulates a cold restart)."""
        self.flush()
        for page_id in list(self._frames):
            self.policy.removed(page_id)
        self._frames.clear()

    @property
    def cached_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._frames)

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, "
            f"policy={self.policy.name}, "
            f"cached={self.cached_pages}, dirty={len(self._dirty)})"
        )

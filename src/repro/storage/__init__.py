"""Simulated block storage: disk, buffer pool, layouts, paged RPS (Sec 4.4)."""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import DiskStats, LatencyModel, SimulatedDisk
from repro.storage.policies import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.storage.layout import BoxAlignedLayout, PageLayout, RowMajorLayout
from repro.storage.paged_array import PagedNDArray
from repro.storage.paged_rps import PagedRPSCube

__all__ = [
    "BoxAlignedLayout",
    "BufferPool",
    "BufferStats",
    "ClockPolicy",
    "DiskStats",
    "FifoPolicy",
    "LatencyModel",
    "LruPolicy",
    "ReplacementPolicy",
    "make_policy",
    "PageLayout",
    "PagedNDArray",
    "PagedRPSCube",
    "RowMajorLayout",
    "SimulatedDisk",
]

"""Per-figure experiment drivers (DESIGN.md experiment index E1-E10).

Each function regenerates one table or figure from the paper and returns
a :class:`~repro.bench.reporting.ResultTable` whose rows carry both the
measured values and — where the paper publishes numbers — the expected
ones, so the harness (and the tests) can verify the reproduction
row-by-row. Wall-clock timing is left to ``benchmarks/`` (pytest-benchmark);
these drivers measure the paper's own unit, cells and pages touched.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro import paper
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.baselines.fenwick import FenwickCube
from repro.bench.reporting import ResultTable
from repro.core.rps import RelativePrefixSumCube
from repro.metrics import complexity
from repro.storage.layout import BoxAlignedLayout, RowMajorLayout
from repro.storage.paged_rps import PagedRPSCube
from repro.workloads import datagen, querygen, updategen
from repro.workloads.runner import WorkloadRunner

METHODS = {
    "naive": NaiveCube,
    "prefix_sum": PrefixSumCube,
    "rps": RelativePrefixSumCube,
    "fenwick": FenwickCube,
}


def e1_prefix_table() -> ResultTable:
    """E1 — Figure 2: the prefix-sum array P of the paper's array A."""
    table = ResultTable(
        "E1",
        "Figure 2: prefix sum array P of the example cube (cell-exact)",
        ["row", "computed", "paper", "match"],
    )
    ps = PrefixSumCube(paper.ARRAY_A)
    computed = ps.prefix_array()
    for r in range(computed.shape[0]):
        table.add_row(
            r,
            " ".join(str(v) for v in computed[r]),
            " ".join(str(v) for v in paper.ARRAY_P[r]),
            bool(np.array_equal(computed[r], paper.ARRAY_P[r])),
        )
    table.notes.append(
        "all rows must match Figure 2 exactly; any False is a regression"
    )
    return table


def e2_region_sums(seed: int = 0, trials: int = 200) -> ResultTable:
    """E2 — Figure 3: the 2^d-corner identity against a direct scan."""
    table = ResultTable(
        "E2",
        "Figure 3: inclusion-exclusion region algebra vs direct scan",
        ["d", "trials", "mismatches"],
    )
    rng = np.random.default_rng(seed)
    for d, n in [(1, 64), (2, 32), (3, 12), (4, 8)]:
        cube = datagen.uniform_cube((n,) * d, seed=seed + d)
        ps = PrefixSumCube(cube)
        naive = NaiveCube(cube)
        mismatches = 0
        for _ in range(trials):
            low = tuple(int(x) for x in rng.integers(0, n, size=d))
            high = tuple(int(rng.integers(l, n)) for l in low)
            if ps.range_sum(low, high) != naive.range_sum(low, high):
                mismatches += 1
        table.add_row(d, trials, mismatches)
    table.notes.append("mismatches must be zero in every dimension")
    return table


def e3_prefix_update() -> ResultTable:
    """E3 — Figure 4: the prefix-sum update cascade on the example cube."""
    table = ResultTable(
        "E3",
        "Figure 4: cells rewritten by prefix sum update of A[1,1]",
        ["cell", "cells_written", "paper_expected", "table_matches_fig4"],
    )
    ps = PrefixSumCube(paper.ARRAY_A)
    before = ps.counter.snapshot()
    ps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
    written = before.delta(ps.counter).cells_written
    table.add_row(
        paper.UPDATE_EXAMPLE_CELL,
        written,
        paper.UPDATE_EXAMPLE_PS_CELLS,
        bool(np.array_equal(ps.prefix_array(), paper.ARRAY_P_AFTER_UPDATE)),
    )
    return table


def e4_overlay_tables() -> ResultTable:
    """E4 — Figures 5-13: overlay anchors/borders and the RP array."""
    table = ResultTable(
        "E4",
        "Figures 10/13: overlay and RP values for the example cube (k=3)",
        ["artifact", "checked_cells", "matches"],
    )
    rps = RelativePrefixSumCube(paper.ARRAY_A, box_size=paper.BOX_SIZE)
    rp_ok = np.array_equal(rps.rp.array(), paper.ARRAY_RP)
    table.add_row("RP array (Figure 10)", paper.ARRAY_RP.size, bool(rp_ok))
    anchors_ok = np.array_equal(
        rps.overlay.anchors_array().astype(np.int64), paper.OVERLAY_ANCHORS
    )
    table.add_row(
        "anchor values (Figure 13)", paper.OVERLAY_ANCHORS.size, bool(anchors_ok)
    )
    row_ok = all(
        rps.overlay.border_value(cell) == value
        for cell, value in paper.BORDER_ROW_VALUES.items()
    )
    table.add_row(
        "row border values (X, Figure 13)",
        len(paper.BORDER_ROW_VALUES),
        bool(row_ok),
    )
    col_ok = all(
        rps.overlay.border_value(cell) == value
        for cell, value in paper.BORDER_COLUMN_VALUES.items()
    )
    table.add_row(
        "column border values (Y, Figure 13)",
        len(paper.BORDER_COLUMN_VALUES),
        bool(col_ok),
    )
    query_ok = (
        rps.prefix_sum(paper.EXAMPLE_QUERY_TARGET)
        == paper.EXAMPLE_QUERY_RESULT
    )
    table.add_row("worked query SUM(A[0,0]:A[7,5]) = 168", 1, bool(query_ok))
    return table


def e5_rps_update() -> ResultTable:
    """E5 — Figure 15: the constrained RPS update cascade (16 cells)."""
    table = ResultTable(
        "E5",
        "Figure 15: cells touched by RPS update of A[1,1] (k=3)",
        ["structure", "cells_written", "paper_expected", "match"],
    )
    rps = RelativePrefixSumCube(paper.ARRAY_A, box_size=paper.BOX_SIZE)
    rps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
    rp_cells = rps.counter.structure_written("RP")
    overlay_cells = rps.counter.structure_written(
        "overlay.border"
    ) + rps.counter.structure_written("overlay.anchor")
    table.add_row(
        "RP", rp_cells, paper.UPDATE_EXAMPLE_RPS_RP_CELLS,
        rp_cells == paper.UPDATE_EXAMPLE_RPS_RP_CELLS,
    )
    table.add_row(
        "overlay", overlay_cells, paper.UPDATE_EXAMPLE_RPS_OVERLAY_CELLS,
        overlay_cells == paper.UPDATE_EXAMPLE_RPS_OVERLAY_CELLS,
    )
    total = rp_cells + overlay_cells
    table.add_row(
        "total", total, paper.UPDATE_EXAMPLE_RPS_TOTAL_CELLS,
        total == paper.UPDATE_EXAMPLE_RPS_TOTAL_CELLS,
    )
    table.notes.append(
        "paper's comparison: 16 cells for RPS vs 64 for prefix sum (E3)"
    )
    return table


def e6_storage_ratio(
    dims: Sequence[int] = (1, 2, 3, 4, 5),
    box_sizes: Sequence[int] = (2, 5, 10, 20, 50, 100),
) -> ResultTable:
    """E6 — Figure 16: overlay storage as % of the covered RP region."""
    table = ResultTable(
        "E6",
        "Figure 16: overlay storage % of covered RP region, by d and k",
        ["d", "k", "paper_percent", "allocated_percent"],
    )
    for row in complexity.storage_ratio_table(dims, box_sizes):
        table.add_row(
            row["d"],
            row["k"],
            100.0 * row["paper_ratio"],
            100.0 * row["allocated_ratio"],
        )
    table.notes.append(
        "paper quotes k=100, d=2 -> 199/10000 = 1.99%; ratios fall with k "
        "and rise with d"
    )
    return table


def e7_box_size_sweep(
    n: int = 256, d: int = 2, seed: int = 0
) -> ResultTable:
    """E7 — Section 4.3: measured update cost vs k; minimum near sqrt(n)."""
    table = ResultTable(
        "E7",
        f"Section 4.3: update cells vs box size (n={n}, d={d})",
        ["k", "measured_worst", "analytic_worst", "analytic_approx"],
    )
    cube = datagen.uniform_cube((n,) * d, seed=seed)
    sweep = sorted(
        {2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128,
         complexity.optimal_box_size(n)}
    )
    worst = updategen.worst_case_cell((n,) * d, "rps")
    for k in sweep:
        if k > n:
            continue
        rps = RelativePrefixSumCube(cube, box_size=k)
        measured = rps.update_cost_breakdown(worst)["total"]
        table.add_row(
            k,
            measured,
            complexity.rps_update_cost(n, d, k),
            complexity.rps_update_cost_approx(n, d, k),
        )
    k_opt = complexity.optimal_box_size(n)
    table.notes.append(
        f"paper: optimum at k = sqrt(n) = {k_opt}; the measured column's "
        "minimum should sit at or adjacent to it"
    )
    return table


def e8_complexity_table(
    sizes: Sequence[int] = (16, 64, 256),
    dims: Sequence[int] = (1, 2, 3),
    seed: int = 0,
) -> ResultTable:
    """E8 — Sections 2/5: measured worst-case costs and their product."""
    table = ResultTable(
        "E8",
        "Sections 2/5: worst-case query x update cost product by method",
        ["d", "n", "method", "query_cells", "update_cells", "product"],
    )
    for d in dims:
        for n in sizes:
            if n**d > 2_000_000:  # keep harness runtime sane
                continue
            cube = datagen.uniform_cube((n,) * d, seed=seed)
            # Interior near-full range: exercises all 2^d corners (a range
            # touching index 0 skips its empty-prefix corners and would
            # understate the constant-time methods' costs).
            big_low = tuple(1 for _ in range(d))
            big_high = tuple(n - 2 for _ in range(d))
            for name, cls in METHODS.items():
                method = cls(cube)
                before = method.counter.snapshot()
                method.range_sum(big_low, big_high)
                query_cells = before.delta(method.counter).cells_read
                worst = updategen.worst_case_cell((n,) * d, name)
                before = method.counter.snapshot()
                method.apply_delta(worst, 1)
                update_cells = before.delta(method.counter).cells_written
                table.add_row(
                    d, n, name, query_cells, update_cells,
                    query_cells * update_cells,
                )
    table.notes.append(
        "expected shape: naive and prefix_sum products grow ~n^d; the rps "
        "product grows ~n^{d/2}; fenwick grows polylog (extension)"
    )
    return table


def e9_disk_io(
    n: int = 256, box_size: int = 16, operations: int = 64, seed: int = 0
) -> ResultTable:
    """E9 — Section 4.4: RP on disk, overlay in RAM; pages per operation."""
    table = ResultTable(
        "E9",
        f"Section 4.4: page I/Os per op, RP on disk (n={n}, k={box_size})",
        ["layout", "buffer_pages", "op", "mean_pages_per_op", "max_pages_per_op"],
    )
    cube = datagen.uniform_cube((n, n), seed=seed)
    rng = np.random.default_rng(seed)
    for layout_name, layout in [
        ("box_aligned", BoxAlignedLayout((n, n), box_size)),
        ("row_major", RowMajorLayout((n, n), box_size * box_size)),
    ]:
        for buffer_pages in (4, 64):
            paged = PagedRPSCube(
                cube, box_size=box_size, layout=layout,
                buffer_capacity=buffer_pages,
            )
            for op in ("query", "update"):
                costs = []
                for _ in range(operations):
                    paged.rp_pages.pool.drop()
                    paged.reset_io_stats()
                    if op == "query":
                        low = tuple(int(x) for x in rng.integers(0, n, size=2))
                        high = tuple(int(rng.integers(l, n)) for l in low)
                        paged.range_sum(low, high)
                    else:
                        cell = tuple(int(x) for x in rng.integers(0, n, size=2))
                        paged.apply_delta(cell, 1)
                        paged.flush()
                    stats = paged.io_stats()
                    costs.append(stats["pages_read"] + stats["pages_written"])
                table.add_row(
                    layout_name, buffer_pages, op,
                    float(np.mean(costs)), int(np.max(costs)),
                )
    table.notes.append(
        "box-aligned layout: a cold query reads <= 2^d pages and a cold "
        "update touches 1 RP page — the paper's 'constant number of disk "
        "reads or writes'; row-major updates straddle many pages"
    )
    return table


def e10_wallclock(
    n: int = 512, d: int = 2, operations: int = 200, seed: int = 0
) -> ResultTable:
    """E10 — wall-clock sanity check of the complexity claims."""
    table = ResultTable(
        "E10",
        f"Wall-clock microbenchmark (n={n}, d={d}, {operations} ops each)",
        ["method", "query_us", "update_us", "cells/query", "cells/update"],
    )
    cube = datagen.uniform_cube((n,) * d, seed=seed)
    for name, cls in METHODS.items():
        method = cls(cube)
        runner = WorkloadRunner(method)
        result = runner.run(
            queries=querygen.random_ranges((n,) * d, operations, seed=seed),
            updates=updategen.random_updates((n,) * d, operations, seed=seed),
        )
        table.add_row(
            name,
            1e6 * result.query_seconds / max(result.queries, 1),
            1e6 * result.update_seconds / max(result.updates, 1),
            result.cells_per_query,
            result.cells_per_update,
        )
    return table


def a1_batch_crossover(n: int = 128, seed: int = 0) -> ResultTable:
    """A1 — ablation: incremental vs rebuild batch updates (crossover)."""
    table = ResultTable(
        "A1",
        f"Ablation: RPS batch-update strategies (n={n}, d=2)",
        ["batch_size", "incremental_cells", "rebuild_cells", "auto_cells",
         "auto_choice"],
    )
    cube = datagen.uniform_cube((n, n), seed=seed)
    for batch_size in (4, 16, 64, 256, 1024, 4096):
        updates = list(
            updategen.random_updates((n, n), batch_size, seed=batch_size)
        )
        costs = {}
        for strategy in ("incremental", "rebuild", "auto"):
            rps = RelativePrefixSumCube(cube, box_size=None)
            before = rps.counter.snapshot()
            rps.apply_batch(list(updates), strategy=strategy)
            costs[strategy] = before.delta(rps.counter).cells_written
        choice = (
            "rebuild" if costs["auto"] == costs["rebuild"] else "incremental"
        )
        table.add_row(
            batch_size, costs["incremental"], costs["rebuild"],
            costs["auto"], choice,
        )
    table.notes.append(
        "rebuild cost is flat in batch size; incremental is linear; auto "
        "should track the lower envelope (crossover near m ~ n^{d/2})"
    )
    return table


def a2_anisotropic_boxes(seed: int = 0) -> ResultTable:
    """A2 — ablation: per-axis box sizes on an anisotropic cube."""
    from repro.core.rps import default_box_sizes

    table = ResultTable(
        "A2",
        "Ablation: per-axis vs uniform box sizes on a 365x50 cube",
        ["policy", "box_sizes", "worst_update_cells", "storage_cells"],
    )
    shape = (365, 50)
    cube = datagen.uniform_cube(shape, seed=seed)
    worst = updategen.worst_case_cell(shape, "rps")
    for label, box in (
        ("uniform sqrt(min)", 7),
        ("uniform sqrt(max)", 19),
        ("uniform sqrt(geo)", None),
        ("per-axis sqrt(n_i)", default_box_sizes(shape)),
    ):
        rps = RelativePrefixSumCube(cube, box_size=box)
        table.add_row(
            label,
            str(rps.box_sizes),
            rps.update_cost_breakdown(worst)["total"],
            rps.storage_cells(),
        )
    table.notes.append(
        "the per-axis rule k_i = sqrt(n_i) minimizes worst-case update "
        "cells among the listed policies"
    )
    return table


def a3_generalized_operators(seed: int = 0, trials: int = 150) -> ResultTable:
    """A3 — ablation: Section 2's any-invertible-operator claim."""
    from functools import reduce

    from repro.aggregates.generalized import (
        GROUP_PRODUCT,
        GROUP_SUM,
        GROUP_XOR,
        GroupRelativePrefixCube,
    )

    table = ResultTable(
        "A3",
        "Ablation: RPS over arbitrary group operators (Section 2 claim)",
        ["operator", "trials", "mismatches"],
    )
    rng = np.random.default_rng(seed)
    for op in (GROUP_SUM, GROUP_XOR, GROUP_PRODUCT):
        if op is GROUP_PRODUCT:
            cube = rng.uniform(0.5, 2.0, size=(24, 24))
        else:
            cube = rng.integers(1, 1 << 12, size=(24, 24))
        group = GroupRelativePrefixCube(cube, op, box_size=5)
        mismatches = 0
        for _ in range(trials):
            low = tuple(int(x) for x in rng.integers(0, 24, size=2))
            high = tuple(int(rng.integers(l, 24)) for l in low)
            slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
            expected = reduce(
                lambda a, b: op.combine(a, b),
                np.asarray(cube[slices], dtype=op.dtype).ravel(),
                np.asarray(op.identity, dtype=op.dtype)[()],
            )
            got = group.range_query(low, high)
            if not np.isclose(float(got), float(expected), rtol=1e-9):
                mismatches += 1
        table.add_row(op.name, trials, mismatches)
    table.notes.append("mismatches must be zero for every operator")
    return table


def a6_hierarchical(seed: int = 0) -> ResultTable:
    """A6 — ablation: multi-level RPS growth rates (beyond the paper)."""
    import math

    from repro.extensions.hierarchical import HierarchicalRPSCube

    table = ResultTable(
        "A6",
        "Ablation: multi-level RPS worst-case update cells vs n (d=2)",
        ["levels", "n", "box", "worst_update_cells", "growth_vs_prev_n"],
    )
    for levels in (1, 2, 3):
        previous = None
        for n in (64, 256, 1024):
            k = (
                round(math.sqrt(n)) if levels == 1
                else max(2, round(n ** 0.4))
            )
            cube = HierarchicalRPSCube(
                np.zeros((n, n), dtype=np.int64), box_size=k, levels=levels
            )
            before = cube.counter.snapshot()
            cube.apply_delta((1, 1), 1)
            cost = before.delta(cube.counter).cells_written
            growth = round(cost / previous, 2) if previous else ""
            table.add_row(levels, n, k, cost, growth)
            previous = cost
    table.notes.append(
        "flat (L=1) grows ~4x per 4x of n (the paper's n^{d/2}); deeper "
        "levels grow slower but start higher — the classic O(1)-query "
        "partial-sums trade-off the paper's line of work leads to"
    )
    return table


#: Experiment registry used by the harness and the CLI. E-entries
#: reproduce the paper's artifacts; A-entries are this library's
#: documented ablations (DESIGN.md Section 5).
ALL_EXPERIMENTS: Dict[str, callable] = {
    "E1": e1_prefix_table,
    "E2": e2_region_sums,
    "E3": e3_prefix_update,
    "E4": e4_overlay_tables,
    "E5": e5_rps_update,
    "E6": e6_storage_ratio,
    "E7": e7_box_size_sweep,
    "E8": e8_complexity_table,
    "E9": e9_disk_io,
    "E10": e10_wallclock,
    "A1": a1_batch_crossover,
    "A2": a2_anisotropic_boxes,
    "A3": a3_generalized_operators,
    "A6": a6_hierarchical,
}

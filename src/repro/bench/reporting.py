"""Plain-text and CSV rendering for experiment results."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ResultTable:
    """One reproduced table/figure: metadata plus rows.

    Attributes:
        experiment_id: e.g. ``"E6"`` (see DESIGN.md's experiment index).
        title: human description including the paper artifact.
        headers: column names.
        rows: row values (any printable types).
        notes: free-form caveats/observations appended after the table.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (arity-checked against the headers)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} values "
                f"for {len(self.headers)} headers"
            )
        self.rows.append(values)

    def column(self, name: str) -> List:
        """All values of one column (for assertions in tests)."""
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(table: ResultTable) -> str:
    """Render one result table as aligned plain text."""
    headers = [str(h) for h in table.headers]
    body = [[_fmt(v) for v in row] for row in table.rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [f"== {table.experiment_id}: {table.title} =="]
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in body:
        out.append(line(row))
    for note in table.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)


def to_csv(table: ResultTable) -> str:
    """Render one result table as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(table.headers)
    for row in table.rows:
        writer.writerow(row)
    return buf.getvalue()


def write_csv(table: ResultTable, path) -> None:
    """Write one result table to a CSV file."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(table))


def render_series(
    title: str,
    series: "dict",
    width: int = 50,
    logarithmic: bool = True,
) -> str:
    """Render named numeric series as aligned ASCII bars.

    The terminal-report stand-in for the paper's figures: each
    ``(label, value)`` gets a bar scaled to the max (log-scaled by
    default, since the cost curves span orders of magnitude).
    """
    import math

    items = [(str(k), float(v)) for k, v in dict(series).items()]
    if not items:
        return f"-- {title} -- (empty)"
    label_width = max(len(label) for label, _ in items)
    positives = [v for _, v in items if v > 0]
    top = max(positives) if positives else 1.0
    floor = min(positives) if positives else 1.0
    lines = [f"-- {title} --"]
    for label, value in items:
        if value <= 0:
            bar = ""
        elif logarithmic and top > floor:
            span = math.log(top) - math.log(floor) or 1.0
            fraction = (math.log(value) - math.log(floor)) / span
            bar = "#" * max(1, round(width * fraction))
        else:
            bar = "#" * max(1, round(width * value / top))
        lines.append(f"{label:>{label_width}}  {_fmt(value):>10}  {bar}")
    return "\n".join(lines)


def render_matrix(title: str, matrix, row_label: str = "") -> str:
    """Render a 2-d numpy array the way the paper prints its figures."""
    lines = [f"-- {title} --"]
    for i, row in enumerate(matrix):
        cells = " ".join(f"{_fmt(v):>5}" for v in row)
        prefix = f"{row_label}{i}: " if row_label else f"{i}: "
        lines.append(prefix + cells)
    return "\n".join(lines)

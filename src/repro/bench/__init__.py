"""Benchmark harness: per-figure experiment drivers and reporting."""

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import ExperimentRun, report, run_all, run_experiment, save_csvs
from repro.bench.reporting import ResultTable, render_matrix, render_table, to_csv, write_csv

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentRun",
    "ResultTable",
    "render_matrix",
    "render_table",
    "report",
    "run_all",
    "run_experiment",
    "save_csvs",
    "to_csv",
    "write_csv",
]

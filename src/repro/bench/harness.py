"""Experiment harness: run, render, and persist the E1-E10 reproductions."""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import ResultTable, render_table, write_csv
from repro.errors import WorkloadError


@dataclass
class ExperimentRun:
    """One executed experiment: its table plus run metadata."""

    table: ResultTable
    seconds: float


def run_experiment(experiment_id: str, **kwargs) -> ExperimentRun:
    """Run one experiment by id (e.g. ``"E6"``)."""
    key = experiment_id.upper()
    if key not in ALL_EXPERIMENTS:
        raise WorkloadError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(ALL_EXPERIMENTS)}"
        )
    start = time.perf_counter()
    table = ALL_EXPERIMENTS[key](**kwargs)
    return ExperimentRun(table=table, seconds=time.perf_counter() - start)


def run_all(
    experiment_ids: Optional[Iterable[str]] = None,
) -> List[ExperimentRun]:
    """Run several experiments (all of them by default), in id order."""
    ids = list(experiment_ids) if experiment_ids else sorted(
        ALL_EXPERIMENTS, key=lambda e: (e[0], int(e[1:]))
    )
    return [run_experiment(eid) for eid in ids]


def report(runs: Iterable[ExperimentRun]) -> str:
    """Render executed experiments as one plain-text report."""
    sections = []
    for run in runs:
        sections.append(render_table(run.table))
        sections.append(f"  ({run.seconds:.2f}s)")
        sections.append("")
    return "\n".join(sections)


def save_csvs(runs: Iterable[ExperimentRun], directory) -> Dict[str, str]:
    """Write each experiment's table to ``<dir>/<id>.csv``.

    Returns a mapping of experiment id to written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for run in runs:
        path = directory / f"{run.table.experiment_id}.csv"
        write_csv(run.table, path)
        written[run.table.experiment_id] = str(path)
    return written

"""repro — Relative Prefix Sums for dynamic OLAP data cubes.

A production-quality reproduction of Geffner, Agrawal, El Abbadi and
Smith, "Relative Prefix Sums: An Efficient Approach for Querying Dynamic
OLAP Data Cubes" (ICDE 1999).

Quick start::

    import numpy as np
    from repro import RelativePrefixSumCube

    cube = RelativePrefixSumCube(np.random.randint(0, 100, (365, 50)))
    total = cube.range_sum((0, 37), (89, 52))   # O(1) lookups
    cube.apply_delta((120, 40), +250)           # O(n^{d/2}) cells touched

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.aggregates import (
    SUM,
    AggregateCube,
    GroupOperator,
    GroupPrefixCube,
    GroupRelativePrefixCube,
    InvertibleOperator,
)
from repro.baselines import (
    FenwickCube,
    NaiveCube,
    PrefixSumCube,
    SparseNaiveCube,
)
from repro.core import (
    Overlay,
    RangeSumMethod,
    RelativePrefixArray,
    RelativePrefixSumCube,
    default_box_size,
    default_box_sizes,
)
from repro.cluster import (
    BreakerPolicy,
    ClusterUnavailableError,
    CubeCluster,
    HedgePolicy,
    ShardMap,
)
from repro.cube import (
    BandHierarchy,
    BinningEncoder,
    CalendarHierarchy,
    CategoricalEncoder,
    CubeSchema,
    DataCubeEngine,
    DateEncoder,
    Dimension,
    FactTable,
    IdentityEncoder,
    IntegerEncoder,
    MultiMeasureEngine,
    Selection,
    execute_query,
    parse_query,
)
from repro.deadline import Deadline
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
    StorageError,
)
from repro.extensions import HierarchicalRPSCube
from repro.faults import FaultPlan, InjectedFault
from repro.ingest import (
    CheckpointStore,
    ClusterTarget,
    ColumnarSource,
    CSVSource,
    DeadLetterFile,
    IngestPipeline,
    IngestReport,
    MemorySource,
    RollingCubeService,
    RollingServiceTarget,
    ServiceTarget,
)
from repro.persistence import (
    load_engine,
    load_method,
    load_schema,
    save_engine,
    save_method,
    save_schema,
)
from repro.metrics import (
    AccessCounter,
    LatencyRecorder,
    NetMetrics,
    RouterMetrics,
    ServiceMetrics,
)
from repro.net import Authenticator, CubeClient, CubeServer, Tenant
from repro.routing import (
    HotPatternTracker,
    QueryRouter,
    ResultCache,
    RollupBuilder,
    RollupCube,
    RoutedBatch,
)
from repro.serve import (
    CubeService,
    DurabilityPolicy,
    ServiceClosedError,
    WriteAheadLog,
    call_with_retries,
)
from repro.storage import BoxAlignedLayout, PagedRPSCube, RowMajorLayout

__version__ = "1.0.0"

__all__ = [
    "AccessCounter",
    "AggregateCube",
    "Authenticator",
    "BandHierarchy",
    "BinningEncoder",
    "BreakerPolicy",
    "CalendarHierarchy",
    "BoxAlignedLayout",
    "CategoricalEncoder",
    "CheckpointStore",
    "ClusterTarget",
    "ClusterUnavailableError",
    "ColumnarSource",
    "CSVSource",
    "CubeClient",
    "CubeCluster",
    "CubeSchema",
    "CubeServer",
    "CubeService",
    "Deadline",
    "DeadlineExceededError",
    "DataCubeEngine",
    "DateEncoder",
    "DeadLetterFile",
    "Dimension",
    "DurabilityPolicy",
    "FactTable",
    "FaultPlan",
    "FenwickCube",
    "HedgePolicy",
    "HotPatternTracker",
    "InjectedFault",
    "HierarchicalRPSCube",
    "IdentityEncoder",
    "IngestPipeline",
    "IngestReport",
    "IntegerEncoder",
    "InvertibleOperator",
    "LatencyRecorder",
    "MemorySource",
    "MultiMeasureEngine",
    "NaiveCube",
    "NetMetrics",
    "Overlay",
    "PagedRPSCube",
    "PrefixSumCube",
    "QueryRouter",
    "RangeSumMethod",
    "RelativePrefixArray",
    "RelativePrefixSumCube",
    "ReproError",
    "ResultCache",
    "RollingCubeService",
    "RollingServiceTarget",
    "RollupBuilder",
    "RollupCube",
    "RoutedBatch",
    "RouterMetrics",
    "ServiceClosedError",
    "ServiceTarget",
    "ShardMap",
    "Tenant",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "StorageError",
    "WriteAheadLog",
    "call_with_retries",
    "GroupOperator",
    "GroupPrefixCube",
    "GroupRelativePrefixCube",
    "RowMajorLayout",
    "SUM",
    "Selection",
    "SparseNaiveCube",
    "execute_query",
    "parse_query",
    "default_box_size",
    "default_box_sizes",
    "load_engine",
    "load_method",
    "load_schema",
    "save_engine",
    "save_method",
    "save_schema",
    "__version__",
]

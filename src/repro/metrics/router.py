"""Per-tier counters for the adaptive query router.

The router (:mod:`repro.routing`) answers each box query from one of
three tiers — memoized result cache, pre-aggregated rollup, or the
backing RPS service — and the first operational question is always
"which tier is doing the work, and is the cache actually fresh?".
:class:`RouterMetrics` tallies per-tier hits, misses and stale rejects
(an entry or rollup discarded because the snapshot version moved on),
rollup build activity, and latency histograms for the routed path and
the fallback reads, thread-safely, in the same plain-dict
:meth:`RouterMetrics.snapshot` idiom as
:class:`~repro.metrics.service.ServiceMetrics` and
:class:`~repro.metrics.cluster.ClusterMetrics`.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.metrics.service import LatencyRecorder


class RouterMetrics:
    """Counters for one :class:`~repro.routing.QueryRouter`.

    Attributes:
        route_latency: per routed *call* durations (a call may carry a
            whole query batch), whatever mix of tiers answered it.
        backend_latency: durations of the fallback reads that went all
            the way to the RPS service/cluster.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.route_latency = LatencyRecorder()
        self.backend_latency = LatencyRecorder()
        # per-tier serving counters (units: individual box queries)
        self.queries_routed = 0
        self.cache_hits = 0
        self.batch_hits = 0
        self.rollup_hits = 0
        self.backend_queries = 0
        # freshness: entries found but refused because the snapshot
        # version moved on (each one is a precisely-invalidated write)
        self.cache_stale_rejects = 0
        self.batch_stale_rejects = 0
        self.rollup_stale_rejects = 0
        # rollup lifecycle
        self.rollup_builds = 0
        self.rollup_build_failures = 0
        self.rollup_discards = 0
        # deadline pressure on the routed path
        self.deadline_exceeded = 0

    # -- recording (called by the router) ------------------------------------

    def record_route(self, seconds: float, queries: int) -> None:
        """One routed call answering ``queries`` box queries."""
        with self._lock:
            self.queries_routed += int(queries)
        self.route_latency.record(seconds)

    def record_cache_hits(self, queries: int) -> None:
        """``queries`` answers served from per-box memoized results."""
        with self._lock:
            self.cache_hits += int(queries)

    def record_batch_hit(self, queries: int) -> None:
        """One whole-batch memo hit covering ``queries`` box queries."""
        with self._lock:
            self.batch_hits += int(queries)

    def record_rollup_hits(self, queries: int) -> None:
        """``queries`` answers served from a pre-aggregated rollup."""
        with self._lock:
            self.rollup_hits += int(queries)

    def record_backend_queries(self, queries: int, seconds: float) -> None:
        """``queries`` fell through to the backing service/cluster."""
        with self._lock:
            self.backend_queries += int(queries)
        self.backend_latency.record(seconds)

    def record_cache_stale(self, entries: int = 1) -> None:
        """``entries`` cached box results were version-rejected."""
        with self._lock:
            self.cache_stale_rejects += int(entries)

    def record_batch_stale(self) -> None:
        """A whole-batch memo entry was version-rejected."""
        with self._lock:
            self.batch_stale_rejects += 1

    def record_rollup_stale(self) -> None:
        """A published rollup was discarded: built from a superseded
        snapshot version."""
        with self._lock:
            self.rollup_stale_rejects += 1

    def record_rollup_built(self) -> None:
        """One rollup cube was materialized and published."""
        with self._lock:
            self.rollup_builds += 1

    def record_rollup_build_failure(self) -> None:
        """A rollup build failed; queries degrade to the RPS fallback."""
        with self._lock:
            self.rollup_build_failures += 1

    def record_rollup_discard(self) -> None:
        """A published rollup was dropped (stale or evicted)."""
        with self._lock:
            self.rollup_discards += 1

    def record_deadline_exceeded(self) -> None:
        """A routed call ran out of its deadline budget."""
        with self._lock:
            self.deadline_exceeded += 1

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict:
        """All tallies, latency summaries, and derived hit rates."""
        with self._lock:
            served = (
                self.cache_hits + self.batch_hits + self.rollup_hits
                + self.backend_queries
            )
            counts = {
                "queries_routed": self.queries_routed,
                "cache_hits": self.cache_hits,
                "batch_hits": self.batch_hits,
                "rollup_hits": self.rollup_hits,
                "backend_queries": self.backend_queries,
                "cache_stale_rejects": self.cache_stale_rejects,
                "batch_stale_rejects": self.batch_stale_rejects,
                "rollup_stale_rejects": self.rollup_stale_rejects,
                "rollup_builds": self.rollup_builds,
                "rollup_build_failures": self.rollup_build_failures,
                "rollup_discards": self.rollup_discards,
                "deadline_exceeded": self.deadline_exceeded,
            }
            cached = self.cache_hits + self.batch_hits
            counts["cache_hit_rate"] = cached / served if served else 0.0
            counts["rollup_hit_rate"] = (
                self.rollup_hits / served if served else 0.0
            )
            counts["backend_rate"] = (
                self.backend_queries / served if served else 0.0
            )
        counts["route_latency"] = self.route_latency.summary()
        counts["backend_latency"] = self.backend_latency.summary()
        return counts

"""Operational counters for a replicated, sharded serving cluster.

One :class:`ClusterMetrics` instance per :class:`repro.cluster.CubeCluster`
tallies what the single-service :class:`~repro.metrics.service.ServiceMetrics`
cannot see: routing fan-out, failovers, circuit-breaker trips, hedged
reads and their wins, probe outcomes, and anti-entropy scrub activity —
per node and per shard, because "which replica is sick" is the first
question an operator asks. Everything is thread-safe (probes, hedged
reads, and the scrubber all run concurrently with client traffic) and
lands in one plain-dict :meth:`ClusterMetrics.snapshot` for dashboards.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.metrics.service import LatencyRecorder


class ClusterMetrics:
    """Counters for one cluster: routing, failover, hedging, scrubbing.

    Attributes:
        read_latency: per *routed shard read* durations — the winning
            arm of a hedged read, which is what the hedge-delay
            percentile must be computed from.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.read_latency = LatencyRecorder()
        # routing
        self.queries_routed = 0
        self.query_shard_reads = 0
        self.updates_routed = 0
        self.shard_queries: Dict[int, int] = {}
        self.shard_updates: Dict[int, int] = {}
        # health / failover
        self.probes = 0
        self.probe_failures: Dict[str, int] = {}
        self.breaker_trips: Dict[str, int] = {}
        self.breaker_resets: Dict[str, int] = {}
        self.failovers: Dict[int, int] = {}
        self.node_failures: Dict[str, int] = {}
        # hedging / deadlines
        self.hedged_reads = 0
        self.hedge_wins = 0
        self.deadline_exceeded = 0
        self.unavailable_errors = 0
        # replication / anti-entropy
        self.replica_lags: Dict[str, int] = {}
        self.replica_resyncs: Dict[str, int] = {}
        self.scrub_rounds = 0
        self.scrub_digest_checks = 0
        self.scrub_divergences = 0
        self.scrub_repairs = 0
        # resharding
        self.reshards_started = 0
        self.reshard_phases: Dict[str, int] = {}
        self.reshard_flips = 0
        self.reshard_rollbacks = 0
        self.dual_writes = 0
        self.warming_failures: Dict[str, int] = {}
        # degraded (estimated) reads
        self.degraded_reads = 0
        self.degraded_shard_reads: Dict[int, int] = {}
        self.estimate_refused = 0

    @staticmethod
    def _bump(table: Dict, key, amount: int = 1) -> None:
        table[key] = table.get(key, 0) + amount

    # -- routing -------------------------------------------------------------

    def record_query(self, shards: int) -> None:
        """One client query routed across ``shards`` shard reads."""
        with self._lock:
            self.queries_routed += 1
            self.query_shard_reads += int(shards)

    def record_shard_read(self, shard: int, seconds: float) -> None:
        """One shard read answered (the winning hedge arm's duration)."""
        with self._lock:
            self._bump(self.shard_queries, int(shard))
        self.read_latency.record(seconds)

    def record_update(self, shard: int) -> None:
        """One update sub-group acknowledged by ``shard``'s primary."""
        with self._lock:
            self.updates_routed += 1
            self._bump(self.shard_updates, int(shard))

    # -- health and failover -------------------------------------------------

    def record_probe(self, node_id: str, ok: bool) -> None:
        """One health probe against ``node_id`` succeeded or failed."""
        with self._lock:
            self.probes += 1
            if not ok:
                self._bump(self.probe_failures, str(node_id))

    def record_breaker_trip(self, node_id: str) -> None:
        """``node_id``'s circuit breaker opened."""
        with self._lock:
            self._bump(self.breaker_trips, str(node_id))

    def record_breaker_reset(self, node_id: str) -> None:
        """``node_id``'s circuit breaker closed again after a success."""
        with self._lock:
            self._bump(self.breaker_resets, str(node_id))

    def record_node_failure(self, node_id: str) -> None:
        """A read/submit against ``node_id`` failed (any cause)."""
        with self._lock:
            self._bump(self.node_failures, str(node_id))

    def record_failover(self, shard: int) -> None:
        """``shard`` promoted a replica to primary."""
        with self._lock:
            self._bump(self.failovers, int(shard))

    # -- hedging and deadlines -----------------------------------------------

    def record_hedge(self, won: bool) -> None:
        """A hedge arm was launched; ``won`` if it answered first."""
        with self._lock:
            self.hedged_reads += 1
            if won:
                self.hedge_wins += 1

    def record_hedge_win(self) -> None:
        """The hedge arm recorded at launch turned out to answer first."""
        with self._lock:
            self.hedge_wins += 1

    def record_deadline_exceeded(self) -> None:
        """A client call ran out of its deadline budget."""
        with self._lock:
            self.deadline_exceeded += 1

    def record_unavailable(self) -> None:
        """A call failed exactly (ClusterUnavailableError) rather than
        returning a partial answer."""
        with self._lock:
            self.unavailable_errors += 1

    # -- replication and anti-entropy ----------------------------------------

    def record_replica_lag(self, node_id: str) -> None:
        """A replica missed a forwarded group and was marked lagging."""
        with self._lock:
            self._bump(self.replica_lags, str(node_id))

    def record_resync(self, node_id: str) -> None:
        """``node_id`` was rebuilt from the primary's durable log."""
        with self._lock:
            self._bump(self.replica_resyncs, str(node_id))

    def record_scrub_round(self, checks: int) -> None:
        """One anti-entropy pass compared ``checks`` replica digests."""
        with self._lock:
            self.scrub_rounds += 1
            self.scrub_digest_checks += int(checks)

    def record_scrub_divergence(self) -> None:
        """A replica's digest disagreed with its primary's."""
        with self._lock:
            self.scrub_divergences += 1

    def record_scrub_repair(self) -> None:
        """A diverged replica was repaired (self-check rebuild or
        resync from the primary's log)."""
        with self._lock:
            self.scrub_repairs += 1

    # -- resharding ----------------------------------------------------------

    def record_reshard_started(self) -> None:
        """A live split/merge migration began executing."""
        with self._lock:
            self.reshards_started += 1

    def record_reshard_phase(self, phase: str) -> None:
        """The coordinator entered a migration phase."""
        with self._lock:
            self._bump(self.reshard_phases, str(phase))

    def record_reshard_flip(self) -> None:
        """An epoch-stamped shard-map flip was installed atomically."""
        with self._lock:
            self.reshard_flips += 1

    def record_reshard_rollback(self) -> None:
        """A failed migration restored the prior epoch's topology."""
        with self._lock:
            self.reshard_rollbacks += 1

    def record_dual_write(self) -> None:
        """One acked group was mirrored across the migration boundary
        (old->new pre-flip, new->old post-flip)."""
        with self._lock:
            self.dual_writes += 1

    def record_warming_failure(self, node_id: str) -> None:
        """A warming migration-target node failed a probe/call; counted
        separately so warming targets are never quarantined."""
        with self._lock:
            self._bump(self.warming_failures, str(node_id))

    # -- degraded reads ------------------------------------------------------

    def record_degraded_read(self, shards) -> None:
        """One batched read answered with estimates for ``shards``."""
        with self._lock:
            self.degraded_reads += 1
            for shard in shards:
                self._bump(self.degraded_shard_reads, int(shard))

    def record_estimate_refused(self) -> None:
        """``allow_estimate`` was set but no aggregate could answer
        (the call failed exactly instead)."""
        with self._lock:
            self.estimate_refused += 1

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict:
        """All tallies as one plain dict (per-node/per-shard sub-dicts)."""
        with self._lock:
            report = {
                "queries_routed": self.queries_routed,
                "query_shard_reads": self.query_shard_reads,
                "updates_routed": self.updates_routed,
                "shard_queries": dict(self.shard_queries),
                "shard_updates": dict(self.shard_updates),
                "probes": self.probes,
                "probe_failures": dict(self.probe_failures),
                "breaker_trips": dict(self.breaker_trips),
                "breaker_resets": dict(self.breaker_resets),
                "node_failures": dict(self.node_failures),
                "failovers": dict(self.failovers),
                "hedged_reads": self.hedged_reads,
                "hedge_wins": self.hedge_wins,
                "deadline_exceeded": self.deadline_exceeded,
                "unavailable_errors": self.unavailable_errors,
                "replica_lags": dict(self.replica_lags),
                "replica_resyncs": dict(self.replica_resyncs),
                "scrub_rounds": self.scrub_rounds,
                "scrub_digest_checks": self.scrub_digest_checks,
                "scrub_divergences": self.scrub_divergences,
                "scrub_repairs": self.scrub_repairs,
                "reshards_started": self.reshards_started,
                "reshard_phases": dict(self.reshard_phases),
                "reshard_flips": self.reshard_flips,
                "reshard_rollbacks": self.reshard_rollbacks,
                "dual_writes": self.dual_writes,
                "warming_failures": dict(self.warming_failures),
                "degraded_reads": self.degraded_reads,
                "degraded_shard_reads": dict(self.degraded_shard_reads),
                "estimate_refused": self.estimate_refused,
            }
        report["read_latency"] = self.read_latency.summary()
        return report

"""Access-cost instrumentation.

The paper's evaluation is expressed in *numbers of cells touched* (and, for
the disk configuration of Section 4.4, numbers of pages touched). Every
range-sum method in this library charges its reads and writes to an
:class:`AccessCounter`; the benchmark harness snapshots counters around
operations to reproduce the paper's cost tables exactly.

Counters deliberately count *logical* cell accesses, not numpy memory
traffic: a vectorized slice update of ``m`` cells charges ``m`` writes,
because that is the unit the paper reasons in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


@dataclass
class AccessCounter:
    """Tallies logical cell reads/writes, optionally split by structure.

    Attributes:
        cells_read: total cells read since construction or last reset.
        cells_written: total cells written.
        by_structure: per-structure breakdown, e.g. how many writes hit the
            RP array versus the overlay during one update (the split the
            paper reports for its Figure 15 example: 4 RP + 12 overlay).
    """

    cells_read: int = 0
    cells_written: int = 0
    by_structure: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def read(self, count: int = 1, structure: str = "") -> None:
        """Charge ``count`` cell reads, optionally to a named structure."""
        self.cells_read += count
        if structure:
            bucket = self.by_structure.setdefault(
                structure, {"read": 0, "written": 0}
            )
            bucket["read"] += count

    def write(self, count: int = 1, structure: str = "") -> None:
        """Charge ``count`` cell writes, optionally to a named structure."""
        self.cells_written += count
        if structure:
            bucket = self.by_structure.setdefault(
                structure, {"read": 0, "written": 0}
            )
            bucket["written"] += count

    def reset(self) -> None:
        """Zero all tallies."""
        self.cells_read = 0
        self.cells_written = 0
        self.by_structure.clear()

    def snapshot(self) -> "CounterSnapshot":
        """Capture current totals for later differencing."""
        return CounterSnapshot(self.cells_read, self.cells_written)

    def structure_written(self, structure: str) -> int:
        """Writes charged to a named structure (0 if never touched)."""
        return self.by_structure.get(structure, {}).get("written", 0)

    def structure_read(self, structure: str) -> int:
        """Reads charged to a named structure (0 if never touched)."""
        return self.by_structure.get(structure, {}).get("read", 0)


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable point-in-time copy of an :class:`AccessCounter`'s totals."""

    cells_read: int
    cells_written: int

    def delta(self, counter: AccessCounter) -> "CounterSnapshot":
        """Totals accumulated on ``counter`` since this snapshot."""
        return CounterSnapshot(
            counter.cells_read - self.cells_read,
            counter.cells_written - self.cells_written,
        )


@contextmanager
def measured(counter: AccessCounter) -> Iterator[CounterSnapshot]:
    """Context manager yielding a snapshot whose fields are filled on exit.

    Usage::

        with measured(method.counter) as cost:
            method.update((1, 1), 4)
        print(cost.cells_written)

    The yielded object is a mutable proxy; after the block exits its
    ``cells_read``/``cells_written`` attributes hold the deltas.
    """
    before = counter.snapshot()
    proxy = _MutableSnapshot()
    try:
        yield proxy
    finally:
        after = before.delta(counter)
        proxy.cells_read = after.cells_read
        proxy.cells_written = after.cells_written


class _MutableSnapshot:
    """Mutable holder filled in by :func:`measured` when its block exits."""

    def __init__(self) -> None:
        self.cells_read = 0
        self.cells_written = 0

    @property
    def cells_touched(self) -> int:
        """Total of reads and writes — the paper's 'affected cells' unit."""
        return self.cells_read + self.cells_written

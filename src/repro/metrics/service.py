"""Latency and throughput instrumentation for the serving layer.

The :class:`~repro.metrics.counters.AccessCounter` family measures the
paper's unit — logical cells touched. A serving process needs the
operational complement: how long reads and batch applications take, how
many of them happened, and where the tail is. :class:`LatencyRecorder`
and :class:`ServiceMetrics` provide that, thread-safely, for
:class:`repro.serve.CubeService`; nothing here is specific to serving,
so other drivers (the CLI, benchmarks) can reuse them.
"""

from __future__ import annotations

import threading
from typing import Dict, List


class LatencyRecorder:
    """Thread-safe duration tally with percentile summaries.

    Keeps exact count/total/min/max plus a bounded sample reservoir for
    percentiles (the first ``capacity`` observations — adequate for the
    benchmark- and test-sized runs this library performs; it is not a
    streaming quantile sketch).
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._lock = threading.Lock()
        self._capacity = int(capacity)
        self._samples: List[float] = []
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Add one observed duration (seconds)."""
        value = float(seconds)
        with self._lock:
            self.count += 1
            self.total_seconds += value
            if value < self.min_seconds:
                self.min_seconds = value
            if value > self.max_seconds:
                self.max_seconds = value
            if len(self._samples) < self._capacity:
                self._samples.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if empty)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, int(q / 100.0 * len(samples))))
        return samples[rank]

    def summary(self) -> Dict[str, float]:
        """Count, mean, p50/p95/p99 and extrema as a plain dict."""
        with self._lock:
            count = self.count
            total = self.total_seconds
            low = self.min_seconds if count else 0.0
            high = self.max_seconds
        return {
            "count": count,
            "mean_s": (total / count) if count else 0.0,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "min_s": low,
            "max_s": high,
            "total_s": total,
        }


class ServiceMetrics:
    """Operational counters for one :class:`~repro.serve.CubeService`.

    Attributes:
        read_latency: per read-call durations (one call may carry a
            whole query batch).
        apply_latency: per writer-cycle durations: coalesce + apply +
            swap + back-buffer catch-up.
        swap_wait: time the writer spent waiting for in-flight readers
            to drain off the retiring snapshot.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.read_latency = LatencyRecorder()
        self.apply_latency = LatencyRecorder()
        self.swap_wait = LatencyRecorder()
        self.read_calls = 0
        self.queries_served = 0
        self.updates_submitted = 0
        self.updates_applied = 0
        self.updates_coalesced = 0
        self.batches_applied = 0
        self.swaps = 0
        # failure visibility: each counter names a distinct bad day
        self.reader_retries = 0
        self.writer_errors = 0
        self.groups_quarantined = 0
        self.rebuilds = 0
        # durability path
        self.wal_appends = 0
        self.wal_bytes = 0
        self.wal_fsyncs = 0
        self.wal_failures = 0
        self.checkpoints_written = 0
        self.recovery_replays = 0

    # -- recording (called by the service) ----------------------------------

    def record_read(self, seconds: float, queries: int) -> None:
        """One reader call serving ``queries`` range/prefix queries."""
        with self._lock:
            self.read_calls += 1
            self.queries_served += int(queries)
        self.read_latency.record(seconds)

    def record_submit(self, updates: int) -> None:
        """``updates`` deltas entered the write queue."""
        with self._lock:
            self.updates_submitted += int(updates)

    def record_apply_counts(self, submitted: int, applied: int) -> None:
        """One writer cycle's tallies: ``submitted`` queued deltas
        coalesced down to ``applied`` distinct-cell deltas.

        Recorded the moment the cycle's snapshot is published (before the
        retired buffer is caught up), so a ``flush()``-then-``stats()``
        sequence observes the counts of every cycle it waited for.
        """
        with self._lock:
            self.batches_applied += 1
            self.swaps += 1
            self.updates_applied += int(applied)
            self.updates_coalesced += int(submitted) - int(applied)

    def record_reader_retry(self) -> None:
        """A reader lost the snapshot race in ``_acquire`` and retried."""
        with self._lock:
            self.reader_retries += 1

    def record_writer_error(self) -> None:
        """The writer caught an exception (supervised or fatal)."""
        with self._lock:
            self.writer_errors += 1

    def record_quarantine(self, groups: int = 1) -> None:
        """``groups`` poisoned update groups were skipped, not applied."""
        with self._lock:
            self.groups_quarantined += int(groups)

    def record_rebuild(self) -> None:
        """A buffer pair was rebuilt from scratch (supervision or
        ``self_check`` repair)."""
        with self._lock:
            self.rebuilds += 1

    def record_wal_append(self, nbytes: int, fsynced: bool) -> None:
        """One WAL record hit the disk (``fsynced`` if it was synced)."""
        with self._lock:
            self.wal_appends += 1
            self.wal_bytes += int(nbytes)
            if fsynced:
                self.wal_fsyncs += 1

    def record_wal_fsync(self) -> None:
        """One group-commit fsync made pending WAL records durable."""
        with self._lock:
            self.wal_fsyncs += 1

    def record_wal_failure(self) -> None:
        """The WAL was poisoned (injected fault or real I/O error)."""
        with self._lock:
            self.wal_failures += 1

    def record_checkpoint(self) -> None:
        """One checkpoint snapshot was written."""
        with self._lock:
            self.checkpoints_written += 1

    def record_recovery_replay(self, groups: int) -> None:
        """``groups`` committed WAL groups were replayed at recovery."""
        with self._lock:
            self.recovery_replays += int(groups)

    def record_apply_latency(
        self, seconds: float, swap_wait_seconds: float
    ) -> None:
        """One writer cycle's durations, recorded when the cycle ends."""
        self.apply_latency.record(seconds)
        self.swap_wait.record(swap_wait_seconds)

    def record_apply(
        self,
        seconds: float,
        submitted: int,
        applied: int,
        swap_wait_seconds: float,
    ) -> None:
        """One writer cycle, counts and durations in one call (kept for
        drivers that measure a whole cycle after the fact)."""
        self.record_apply_counts(submitted, applied)
        self.record_apply_latency(seconds, swap_wait_seconds)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict:
        """All tallies and latency summaries as one plain dict."""
        with self._lock:
            counts = {
                "read_calls": self.read_calls,
                "queries_served": self.queries_served,
                "updates_submitted": self.updates_submitted,
                "updates_applied": self.updates_applied,
                "updates_coalesced": self.updates_coalesced,
                "batches_applied": self.batches_applied,
                "swaps": self.swaps,
                "reader_retries": self.reader_retries,
                "writer_errors": self.writer_errors,
                "groups_quarantined": self.groups_quarantined,
                "rebuilds": self.rebuilds,
                "wal_appends": self.wal_appends,
                "wal_bytes": self.wal_bytes,
                "wal_fsyncs": self.wal_fsyncs,
                "wal_failures": self.wal_failures,
                "checkpoints_written": self.checkpoints_written,
                "recovery_replays": self.recovery_replays,
            }
        counts["read_latency"] = self.read_latency.summary()
        counts["apply_latency"] = self.apply_latency.summary()
        counts["swap_wait"] = self.swap_wait.summary()
        return counts

"""Operational counters for the streaming ingest pipeline.

Same contract as the other per-subsystem metrics modules: thread-safe
increments, one :meth:`IngestMetrics.snapshot` dict for reports,
benchmarks, and the CLI. The quarantine tally is per *reason* — the
dead-letter file is the record, these counters are the dashboard.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict


class IngestMetrics:
    """Counters for one :class:`~repro.ingest.IngestPipeline` run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.rows_read = 0
        self.rows_applied = 0
        self.rows_quarantined = 0
        self.quarantine_reasons: Counter = Counter()
        self.chunks_read = 0
        self.groups_submitted = 0
        self.cells_submitted = 0
        self.fence_skips = 0
        self.partial_resubmits = 0
        self.resumes = 0
        self.overload_backoffs = 0
        self.rolls = 0

    def record_chunk(self, rows: int) -> None:
        with self._lock:
            self.chunks_read += 1
            self.rows_read += int(rows)

    def record_applied(self, rows: int) -> None:
        with self._lock:
            self.rows_applied += int(rows)

    def record_quarantine(self, reason: str) -> None:
        with self._lock:
            self.rows_quarantined += 1
            self.quarantine_reasons[str(reason)] += 1

    def record_group(self, cells: int) -> None:
        with self._lock:
            self.groups_submitted += 1
            self.cells_submitted += int(cells)

    def record_fence_skip(self) -> None:
        with self._lock:
            self.fence_skips += 1

    def record_partial_resubmit(self) -> None:
        with self._lock:
            self.partial_resubmits += 1

    def record_resume(self) -> None:
        with self._lock:
            self.resumes += 1

    def record_overload(self) -> None:
        with self._lock:
            self.overload_backoffs += 1

    def record_roll(self, slots: int = 1) -> None:
        with self._lock:
            self.rolls += int(slots)

    def snapshot(self) -> Dict:
        """All counters as one plain dict."""
        with self._lock:
            return {
                "rows_read": self.rows_read,
                "rows_applied": self.rows_applied,
                "rows_quarantined": self.rows_quarantined,
                "quarantine_reasons": dict(self.quarantine_reasons),
                "chunks_read": self.chunks_read,
                "groups_submitted": self.groups_submitted,
                "cells_submitted": self.cells_submitted,
                "fence_skips": self.fence_skips,
                "partial_resubmits": self.partial_resubmits,
                "resumes": self.resumes,
                "overload_backoffs": self.overload_backoffs,
                "rolls": self.rolls,
            }

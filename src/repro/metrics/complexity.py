"""The paper's analytic cost model (Sections 2, 4.3, 4.4).

Closed-form counts of cells read/written per operation for each method,
the worst-case RPS update formula, the optimal overlay box size, and the
overlay-vs-RP storage ratios of Figure 16. The benchmark harness plots
these curves next to measured counts so the reproduction can show both.

All formulas follow the paper's simplified model: every dimension has the
same size ``n``, overlay boxes have side ``k``, and ``n`` is treated as
divisible by ``k`` (the implementation handles partial boxes; the model
does not need to).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


def naive_query_cost(n: int, d: int) -> int:
    """Worst-case cells read by a naive range query: the whole cube."""
    return n**d


def naive_update_cost(n: int, d: int) -> int:
    """Cells written by a naive update: always exactly one."""
    return 1


def prefix_query_cost(n: int, d: int) -> int:
    """Cells read by a prefix-sum range query: one per corner, ``2^d``."""
    return 2**d


def prefix_update_cost(n: int, d: int) -> int:
    """Worst-case cells written by a prefix-sum update (cell 0 changes
    every cell of P): ``n^d``."""
    return n**d


def rps_query_cost(n: int, d: int) -> int:
    """Worst-case cells read by an RPS range query.

    Each of the ``2^d`` region sums reads one anchor, one RP cell and up
    to ``2^d - 2`` border values (one per nonempty proper subset of the
    off-anchor dimensions — exactly the paper's "d border values" when
    d = 2; see DESIGN.md Section 1 for the d-dimensional count).
    """
    return 2**d * 2**d


def rps_update_cost(n: int, d: int, k: int) -> float:
    """The paper's worst-case RPS update formula (Section 4.3)::

        (k-1)^d  RP cells  +  d (n/k) k^{d-1}  border cells  +  (n/k - 1)^d  anchors

    approximated in the paper as ``k^d + d n k^{d-2} + (n/k)^d``. We return
    the *exact* pre-approximation form, which the measured worst case
    (updating cell (1,1,...,1)) matches closely.
    """
    boxes = n / k
    return (k - 1) ** d + d * boxes * k ** (d - 1) + (boxes - 1) ** d


def rps_update_cost_approx(n: int, d: int, k: int) -> float:
    """The paper's simplified update formula ``k^d + d n k^{d-2} + (n/k)^d``."""
    return k**d + d * n * float(k) ** (d - 2) + (n / k) ** d


def optimal_box_size(n: int, d: int = 2, exact: bool = False) -> int:
    """The update-cost-minimizing box size.

    The paper derives ``k = sqrt(n)`` by approximation (Section 4.3). With
    ``exact=True`` the integer minimizer of the exact formula is found by
    search (useful for the E7 k-sweep, where the measured minimum can sit
    a step or two away from ``round(sqrt(n))``).
    """
    if n < 1:
        raise ValueError(f"dimension size must be >= 1, got {n}")
    if not exact:
        return max(1, round(math.sqrt(n)))
    best_k, best_cost = 1, float("inf")
    for k in range(1, n + 1):
        cost = rps_update_cost(n, d, k)
        if cost < best_cost:
            best_k, best_cost = k, cost
    return best_k


def cost_product(query_cost: float, update_cost: float) -> float:
    """The paper's overall-complexity measure: query cost x update cost."""
    return query_cost * update_cost


def method_cost_table(n: int, d: int, k: int = None) -> List[Dict]:
    """Worst-case cost rows for all three paper methods (Section 5 recap).

    Returns one dict per method with ``query``, ``update`` and ``product``
    entries — the table the paper's conclusion presents in O-notation,
    instantiated with concrete counts.
    """
    if k is None:
        k = optimal_box_size(n, d)
    rows = [
        {
            "method": "naive",
            "query": naive_query_cost(n, d),
            "update": naive_update_cost(n, d),
        },
        {
            "method": "prefix_sum",
            "query": prefix_query_cost(n, d),
            "update": prefix_update_cost(n, d),
        },
        {
            "method": "rps",
            "query": rps_query_cost(n, d),
            "update": rps_update_cost(n, d, k),
        },
    ]
    for row in rows:
        row["product"] = cost_product(row["query"], row["update"])
    return rows


# ---------------------------------------------------------------------------
# Storage (Section 4.4, Figure 16)
# ---------------------------------------------------------------------------


def overlay_cells_per_box(k: int, d: int) -> int:
    """The paper's stored-cell count per overlay box: ``k^d - (k-1)^d``."""
    return k**d - (k - 1) ** d


def overlay_storage_ratio(k: int, d: int) -> float:
    """Overlay storage as a fraction of the RP region it covers (Figure 16).

    ``(k^d - (k-1)^d) / k^d`` — e.g. k=100, d=2 gives 199/10000 < 2%, the
    example the paper quotes.
    """
    return overlay_cells_per_box(k, d) / float(k**d)


def rps_update_cost_bound(n: int, d: int, k: int) -> float:
    """Closed-form upper bound on this implementation's update cost.

    Summing the per-subset slice sizes gives ``((n/k) + k)^d`` (binomial
    over subsets; DESIGN.md Section 1) — ``O(n^{d/2})`` at ``k = sqrt(n)``,
    matching the paper's asymptotic claim.
    """
    return (n / k + k) ** d


def allocated_cells_per_box(k: int, d: int) -> int:
    """Backing-array cells per box in this library's physical layout.

    The overlay keeps one dense array per nonempty dimension subset with
    non-subset axes at full extent for O(1) indexing, allocating
    ``(k+1)^d - k^d`` slots per box of which ``k^d - (k-1)^d`` (the
    paper's count) hold live values.
    """
    return (k + 1) ** d - k**d


def storage_ratio_table(
    dims: Iterable[int], box_sizes: Iterable[int]
) -> List[Dict]:
    """Figure 16's data: overlay storage percentage as d and k vary."""
    rows = []
    for d in dims:
        for k in box_sizes:
            rows.append(
                {
                    "d": d,
                    "k": k,
                    "paper_ratio": overlay_storage_ratio(k, d),
                    "allocated_ratio": allocated_cells_per_box(k, d)
                    / float(k**d),
                }
            )
    return rows

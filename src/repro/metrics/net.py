"""Request counters for the network serving tier.

:class:`NetMetrics` tallies what the :mod:`repro.net` server does at the
socket boundary — connections, per-op request counts and latencies,
bytes moved, and every rejection class the wire protocol documents
(auth failures, quota refusals, admission-control overloads, deadline
expiries, protocol errors) — thread-safely, in the same plain-dict
:meth:`NetMetrics.snapshot` idiom as the other metrics classes.

Rejections are deliberately first-class: for a serving tier the
operational question is rarely "how fast are the 200s" and usually
"who is being told no, and why".
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.metrics.service import LatencyRecorder


class NetMetrics:
    """Counters for one :class:`~repro.net.server.CubeServer`.

    Attributes:
        request_latency: per-request durations across every op,
            accept-to-last-byte (streaming ops count once, at the final
            chunk).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.request_latency = LatencyRecorder()
        self.connections_opened = 0
        self.connections_closed = 0
        self.requests = 0
        self.requests_by_op: Dict[str, int] = {}
        self.errors_by_code: Dict[str, int] = {}
        self.bytes_in = 0
        self.bytes_out = 0
        self.stream_chunks = 0
        # rejection classes (each is also counted in errors_by_code)
        self.auth_rejects = 0
        self.quota_rejects = 0
        self.overload_rejects = 0
        self.deadline_rejects = 0
        self.protocol_errors = 0
        # admission-control gauge
        self.inflight = 0
        self.inflight_peak = 0

    # -- recording (called by the server) ------------------------------------

    def record_connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1

    def record_connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1

    def record_request(self, op: str, seconds: float) -> None:
        """One completed request (success or failure) for ``op``."""
        with self._lock:
            self.requests += 1
            self.requests_by_op[op] = self.requests_by_op.get(op, 0) + 1
        self.request_latency.record(seconds)

    def record_error(self, code: str) -> None:
        """One error response sent with wire ``code``."""
        with self._lock:
            self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1
            if code == "auth_failed":
                self.auth_rejects += 1
            elif code == "quota_exceeded":
                self.quota_rejects += 1
            elif code == "overloaded":
                self.overload_rejects += 1
            elif code == "deadline_exceeded":
                self.deadline_rejects += 1
            elif code in ("bad_request", "payload_too_large"):
                self.protocol_errors += 1

    def record_bytes(self, inbound: int = 0, outbound: int = 0) -> None:
        with self._lock:
            self.bytes_in += int(inbound)
            self.bytes_out += int(outbound)

    def record_stream_chunk(self) -> None:
        with self._lock:
            self.stream_chunks += 1

    def inflight_enter(self) -> None:
        with self._lock:
            self.inflight += 1
            if self.inflight > self.inflight_peak:
                self.inflight_peak = self.inflight

    def inflight_exit(self) -> None:
        with self._lock:
            self.inflight -= 1

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict:
        """All tallies plus the request latency summary, one plain dict."""
        with self._lock:
            errors = sum(self.errors_by_code.values())
            counts = {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "connections_active": (
                    self.connections_opened - self.connections_closed
                ),
                "requests": self.requests,
                "requests_by_op": dict(self.requests_by_op),
                "errors": errors,
                "errors_by_code": dict(self.errors_by_code),
                "error_rate": errors / self.requests if self.requests else 0.0,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "stream_chunks": self.stream_chunks,
                "auth_rejects": self.auth_rejects,
                "quota_rejects": self.quota_rejects,
                "overload_rejects": self.overload_rejects,
                "deadline_rejects": self.deadline_rejects,
                "protocol_errors": self.protocol_errors,
                "inflight": self.inflight,
                "inflight_peak": self.inflight_peak,
            }
        counts["request_latency"] = self.request_latency.summary()
        return counts

"""Empirical method profiles: measured cost characteristics in one table.

:func:`characterize` runs a standard probe battery against one method
and reports the quantities the paper's analysis talks about — build cost,
query cost distribution, update cost distribution, worst cases, storage —
as a plain dict, which the CLI's ``profile`` subcommand renders. It is
the "spec sheet" view of a method: everything E7/E8 measure, for one
structure at a time.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

import numpy as np


def characterize(
    method_cls,
    shape: Sequence[int] = (256, 256),
    operations: int = 200,
    seed: int = 0,
    **method_kwargs,
) -> Dict:
    """Measure one method's cost profile on a uniform cube.

    Returns a dict with build/query/update/storage sections; all cell
    counts are exact (from the instrumented counters), times are
    wall-clock seconds.
    """
    # Imported here: repro.metrics is a dependency of repro.core, so the
    # profile helpers (which drive core methods) must load lazily to keep
    # the package import graph acyclic.
    from repro.workloads import datagen, querygen, updategen

    shape = tuple(int(n) for n in shape)
    cube = datagen.uniform_cube(shape, seed=seed)

    start = time.perf_counter()
    method = method_cls(cube, **method_kwargs)
    build_seconds = time.perf_counter() - start

    query_cells = []
    query_start = time.perf_counter()
    for low, high in querygen.random_ranges(shape, operations, seed=seed):
        before = method.counter.snapshot()
        method.range_sum(low, high)
        query_cells.append(before.delta(method.counter).cells_read)
    query_seconds = time.perf_counter() - query_start

    update_cells = []
    update_start = time.perf_counter()
    for cell, delta in updategen.random_updates(
        shape, operations, seed=seed
    ):
        before = method.counter.snapshot()
        method.apply_delta(cell, delta)
        update_cells.append(before.delta(method.counter).cells_written)
    update_seconds = time.perf_counter() - update_start

    worst_update_cell = updategen.worst_case_cell(shape, method.name)
    before = method.counter.snapshot()
    method.apply_delta(worst_update_cell, 1)
    worst_update = before.delta(method.counter).cells_written
    method.apply_delta(worst_update_cell, -1)

    full_low = tuple(1 for _ in shape)
    full_high = tuple(n - 2 for n in shape)
    before = method.counter.snapshot()
    method.range_sum(full_low, full_high)
    worst_query = before.delta(method.counter).cells_read

    return {
        "method": method.name,
        "shape": shape,
        "cube_cells": int(np.prod(shape)),
        "build_seconds": build_seconds,
        "storage_cells": method.storage_cells(),
        "query": {
            "operations": operations,
            "mean_cells": float(np.mean(query_cells)),
            "median_cells": float(np.median(query_cells)),
            "max_cells": int(np.max(query_cells)),
            "worst_case_cells": int(worst_query),
            "mean_seconds": query_seconds / operations,
        },
        "update": {
            "operations": operations,
            "mean_cells": float(np.mean(update_cells)),
            "median_cells": float(np.median(update_cells)),
            "max_cells": int(np.max(update_cells)),
            "worst_case_cells": int(worst_update),
            "mean_seconds": update_seconds / operations,
        },
        "cost_product_mean": float(
            np.mean(query_cells) * np.mean(update_cells)
        ),
        "cost_product_worst": float(worst_query * worst_update),
    }


def render_profile(profile: Dict) -> str:
    """Render a :func:`characterize` result as aligned plain text."""
    lines = [
        f"== profile: {profile['method']} on "
        f"{'x'.join(str(n) for n in profile['shape'])} "
        f"({profile['cube_cells']} cells) ==",
        f"  build: {profile['build_seconds'] * 1e3:.1f} ms; "
        f"storage: {profile['storage_cells']} cells "
        f"({profile['storage_cells'] / profile['cube_cells']:.2f}x cube)",
    ]
    for op in ("query", "update"):
        section = profile[op]
        lines.append(
            f"  {op:>6}: mean {section['mean_cells']:.1f} / "
            f"median {section['median_cells']:.1f} / "
            f"max {section['max_cells']} cells, "
            f"worst-case {section['worst_case_cells']}; "
            f"{section['mean_seconds'] * 1e6:.1f} us/op"
        )
    lines.append(
        f"  query x update product: mean "
        f"{profile['cost_product_mean']:.0f}, worst "
        f"{profile['cost_product_worst']:.0f}"
    )
    return "\n".join(lines)

"""Cost instrumentation and the paper's analytic complexity models."""

from repro.metrics.cluster import ClusterMetrics
from repro.metrics.counters import AccessCounter, CounterSnapshot, measured
from repro.metrics.ingest import IngestMetrics
from repro.metrics.net import NetMetrics
from repro.metrics.profile import characterize, render_profile
from repro.metrics.router import RouterMetrics
from repro.metrics.service import LatencyRecorder, ServiceMetrics

__all__ = [
    "AccessCounter",
    "ClusterMetrics",
    "CounterSnapshot",
    "IngestMetrics",
    "LatencyRecorder",
    "NetMetrics",
    "RouterMetrics",
    "ServiceMetrics",
    "characterize",
    "measured",
    "render_profile",
]

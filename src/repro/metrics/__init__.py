"""Cost instrumentation and the paper's analytic complexity models."""

from repro.metrics.counters import AccessCounter, CounterSnapshot, measured
from repro.metrics.profile import characterize, render_profile

__all__ = [
    "AccessCounter",
    "CounterSnapshot",
    "characterize",
    "measured",
    "render_profile",
]

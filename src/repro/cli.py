"""Command-line entry point: ``repro-bench`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — the experiment index (E1-E10 reproductions, A1-A3 ablations).
* ``run E6 E7`` — run selected experiments and print their tables.
* ``all`` — run every experiment.
* ``demo`` — the paper's worked example end-to-end on the 9x9 cube.
* ``workload [scenario]`` — run a named workload scenario across methods.
* ``profile`` — measure methods' empirical cost spec sheets.
* ``cluster`` — drive a replicated, sharded serving cluster (optionally
  killing a primary mid-run) and print its operational stats.
* ``router`` — serve a repeated dashboard workload through the adaptive
  query router and print per-tier hit rates (``--no-cache`` /
  ``--no-rollup`` toggle individual tiers).
* ``serve`` — stand up the TCP serving tier (``repro.net``) in front of
  a cube service, optionally routed (``--router``) and tenant-gated
  (``--tenant name=token[:rate[:burst]]``), until interrupted.
* ``ingest`` — stream a CSV fact file into a durable cube service
  under exactly-once semantics: re-running the same command after a
  crash (or ``^C``) resumes from the last fenced checkpoint, poison
  rows land in the state dir's dead-letter file, and the final JSON
  report counts every row exactly once.

``run``/``all`` accept ``--csv DIR`` to also write each table as
``DIR/<id>.csv``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import paper
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import report, run_all, save_csvs
from repro.bench.reporting import render_matrix
from repro.core.rps import RelativePrefixSumCube


def _cmd_list(_args) -> int:
    print("Available experiments (see DESIGN.md for the full index):")
    for eid in sorted(ALL_EXPERIMENTS, key=lambda e: (e[0], int(e[1:]))):
        doc = (ALL_EXPERIMENTS[eid].__doc__ or "").strip().splitlines()[0]
        print(f"  {eid:>4}  {doc}")
    return 0


def _cmd_run(args) -> int:
    runs = run_all(args.experiments or None)
    print(report(runs))
    if args.csv:
        written = save_csvs(runs, args.csv)
        for eid, path in sorted(written.items()):
            print(f"wrote {eid} -> {path}")
    return 0


def _cmd_demo(_args) -> int:
    print("Relative prefix sums on the paper's 9x9 example cube (k=3)\n")
    rps = RelativePrefixSumCube(paper.ARRAY_A, box_size=paper.BOX_SIZE)
    print(render_matrix("array A (Figure 1)", paper.ARRAY_A))
    print()
    print(render_matrix("RP array (Figure 10)", rps.rp.array()))
    print()
    print(render_matrix("overlay anchors (Figure 13)", rps.overlay.anchors_array()))
    print()
    target = paper.EXAMPLE_QUERY_TARGET
    explained = rps.explain_prefix(target)
    print(f"worked query: SUM(A[0,0]:A[{target[0]},{target[1]}])")
    parts = [f"anchor{explained['anchor']} {explained['anchor_value']}"]
    parts += [
        f"border{cell} {value}"
        for cell, value in sorted(explained["border_values"].items())
    ]
    parts.append(f"RP{explained['target']} {explained['rp_value']}")
    print("  = " + " + ".join(parts))
    print(f"  = {explained['total']} (paper: {paper.EXAMPLE_QUERY_RESULT})")
    print()
    before = rps.counter.snapshot()
    rps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
    cost = before.delta(rps.counter)
    print(
        f"update A{paper.UPDATE_EXAMPLE_CELL} += 1 touched "
        f"{cost.cells_written} cells "
        f"(paper: {paper.UPDATE_EXAMPLE_RPS_TOTAL_CELLS}; "
        f"prefix sum method: {paper.UPDATE_EXAMPLE_PS_CELLS})"
    )
    return 0


def _cmd_workload(args) -> int:
    from repro.bench.experiments import METHODS
    from repro.errors import WorkloadError
    from repro.workloads.scenarios import SCENARIOS, run_scenario

    if args.scenario is None:
        print("Available scenarios:")
        for name, scenario in sorted(SCENARIOS.items()):
            print(f"  {name:>12}  {scenario.description}")
        return 0
    header = (
        f"{'method':>12} {'queries':>8} {'updates':>8} "
        f"{'cells/query':>12} {'cells/update':>13} {'product':>12} "
        f"{'mismatches':>11}"
    )
    print(
        f"scenario {args.scenario!r}: {args.n}x{args.n} cube, "
        f"{args.ops} ops, seed {args.seed}\n"
    )
    print(header)
    print("-" * len(header))
    for name in args.methods:
        if name not in METHODS:
            raise WorkloadError(
                f"unknown method {name!r}; choose from {sorted(METHODS)}"
            )
        result = run_scenario(
            args.scenario, METHODS[name],
            shape=(args.n, args.n), operations=args.ops, seed=args.seed,
        )
        print(
            f"{name:>12} {result.queries:>8} {result.updates:>8} "
            f"{result.cells_per_query:>12.1f} "
            f"{result.cells_per_update:>13.1f} "
            f"{result.cost_product:>12.0f} {result.mismatches:>11}"
        )
    return 0


def _cmd_profile(args) -> int:
    from repro.bench.experiments import METHODS
    from repro.errors import WorkloadError
    from repro.metrics.profile import characterize, render_profile

    for name in args.methods:
        if name not in METHODS:
            raise WorkloadError(
                f"unknown method {name!r}; choose from {sorted(METHODS)}"
            )
        kwargs = {}
        if name == "rps" and args.box_size:
            kwargs["box_size"] = args.box_size
        profile = characterize(
            METHODS[name], shape=(args.n, args.n),
            operations=args.ops, seed=args.seed, **kwargs,
        )
        print(render_profile(profile))
        print()
    return 0


def _cmd_trace(args) -> int:
    from repro.bench.experiments import METHODS
    from repro.errors import WorkloadError
    from repro.workloads.scenarios import get_scenario
    from repro.workloads.trace import Trace

    if args.action == "capture":
        scenario = get_scenario(args.scenario)
        shape = (args.n, args.n)
        trace = Trace.capture(
            queries=scenario.make_queries(shape, args.ops, args.seed),
            updates=scenario.make_updates(shape, args.ops, args.seed),
            interleave=scenario.interleave,
        )
        trace.save(args.file)
        print(f"captured {trace!r} from scenario {args.scenario!r} "
              f"-> {args.file}")
        return 0
    # replay
    trace = Trace.load(args.file)
    from repro.workloads import datagen

    cube = datagen.uniform_cube((args.n, args.n), seed=args.seed)
    print(f"replaying {trace!r} from {args.file} on a "
          f"{args.n}x{args.n} cube\n")
    header = (
        f"{'method':>12} {'cells/query':>12} {'cells/update':>13} "
        f"{'q p95 us':>9} {'u p95 us':>9} {'mismatches':>11}"
    )
    print(header)
    print("-" * len(header))
    for name in args.methods:
        if name not in METHODS:
            raise WorkloadError(
                f"unknown method {name!r}; choose from {sorted(METHODS)}"
            )
        result = trace.replay(METHODS[name](cube), oracle=cube.copy())
        q95 = 1e6 * result.latency_percentiles("query")["p95"]
        u95 = 1e6 * result.latency_percentiles("update")["p95"]
        print(
            f"{name:>12} {result.cells_per_query:>12.1f} "
            f"{result.cells_per_update:>13.1f} {q95:>9.1f} "
            f"{u95:>9.1f} {result.mismatches:>11}"
        )
    return 0


def _cmd_cluster(args) -> int:
    import json
    import tempfile

    import numpy as np

    from repro.cluster import BreakerPolicy, CubeCluster
    from repro.faults import FaultPlan
    from repro.workloads import ClusterWorkloadRunner

    rng = np.random.default_rng(args.seed)
    shape = (args.n, args.n)
    cube = rng.integers(0, 100, shape).astype(np.int64)
    plan = FaultPlan(seed=args.seed)
    print(
        f"cluster: {args.shards} shards x {args.replicas} replicas on a "
        f"{args.n}x{args.n} cube, {args.ops} ops, seed {args.seed}"
        + (", killing one primary mid-run" if args.kill_primary else "")
    )
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        with CubeCluster(
            RelativePrefixSumCube,
            cube,
            data_dir=tmp,
            num_shards=args.shards,
            replication_factor=args.replicas,
            fault_plan=plan,
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=30.0),
            seed=args.seed,
        ) as cluster:
            runner = ClusterWorkloadRunner(cluster, cube.astype(np.float64))

            def traffic(count):
                queries, groups = [], []
                for _ in range(count):
                    low, high = [], []
                    for n in shape:
                        a, b = sorted(
                            int(x) for x in rng.integers(0, n, size=2)
                        )
                        low.append(a)
                        high.append(b)
                    queries.append((tuple(low), tuple(high)))
                    groups.append([
                        (
                            tuple(int(rng.integers(0, n)) for n in shape),
                            float(rng.integers(-9, 10) or 1),
                        )
                        for _ in range(4)
                    ])
                return queries, groups

            half = max(1, args.ops // 2)
            result = runner.run(*traffic(half))
            if args.kill_primary:
                cluster.kill_node("s0.n0")
                for _ in range(3):
                    cluster.monitor.tick()
            late = runner.run(*traffic(args.ops - half))
            result.queries += late.queries
            result.updates += late.updates
            result.mismatches += late.mismatches
            result.unavailable += late.unavailable
            cluster.scrubber.scrub_once()
            stats = cluster.stats()
    print(
        f"\n{result.queries} queries, {result.updates} update groups, "
        f"{result.mismatches} mismatches, {result.unavailable} unavailable"
    )
    print(json.dumps(stats["metrics"], indent=2, default=str))
    return 1 if result.mismatches else 0


def _cmd_router(args) -> int:
    import json

    import numpy as np

    from repro.routing import QueryRouter
    from repro.serve import CubeService

    rng = np.random.default_rng(args.seed)
    shape = (args.n, args.n)
    cube = rng.integers(0, 100, shape).astype(np.float64)
    g = args.granularity
    print(
        f"router: {args.n}x{args.n} cube, {args.rounds} rounds x "
        f"{args.queries} queries, cache={'on' if args.cache else 'off'}, "
        f"rollup={'on' if args.rollup else 'off'}, seed {args.seed}"
    )
    # a dashboard-shaped workload: a fixed page of hot boxes asked every
    # round (cache tier), grid-aligned drill-downs (rollup tier), and a
    # trickle of ad-hoc boxes (RPS tier), with writes between rounds
    hot_lows = rng.integers(0, args.n // 2, (args.queries, 2))
    hot_highs = np.minimum(hot_lows + rng.integers(1, args.n // 2,
                                                   (args.queries, 2)),
                           args.n - 1)
    blocks = args.n // g
    mismatches = 0
    with CubeService(RelativePrefixSumCube, cube) as service:
        with QueryRouter(
            service, enable_cache=args.cache, enable_rollup=args.rollup,
            auto_build=False,
        ) as router:
            if args.rollup:
                router.build_rollup(g)
            oracle = cube.copy()
            for round_no in range(args.rounds):
                blo = rng.integers(0, blocks, (args.queries, 2)) * g
                bhi = blo + g * rng.integers(
                    1, max(2, blocks // 2), (args.queries, 2)
                )
                bhi = np.minimum(bhi - 1, args.n - 1)
                for lows, highs in ((hot_lows, hot_highs), (blo, bhi)):
                    for _ in range(args.repeats):
                        values = router.range_sum_many(lows, highs)
                        expect = np.array([
                            oracle[lo[0]:hi[0] + 1, lo[1]:hi[1] + 1].sum()
                            for lo, hi in zip(lows, highs)
                        ])
                        mismatches += int((~np.isclose(values, expect)).sum())
                if round_no + 1 < args.rounds:
                    cell = tuple(int(c) for c in rng.integers(0, args.n, 2))
                    delta = float(rng.integers(1, 10))
                    router.submit_batch([(cell, delta)])
                    router.flush()
                    oracle[cell] += delta
                    if args.rollup:
                        router.build_rollup(g)
    stats = router.stats()
    print(f"\n{mismatches} mismatches")
    print(json.dumps(stats["router"], indent=2, default=str))
    return 1 if mismatches else 0


def _cmd_serve(args) -> int:
    import json

    import numpy as np

    from repro.net import Authenticator, CubeServer
    from repro.routing import QueryRouter
    from repro.serve import CubeService

    rng = np.random.default_rng(args.seed)
    shape = (args.n, args.n)
    cube = rng.integers(0, 100, shape).astype(np.float64)
    authenticator = (
        Authenticator.parse(args.tenant) if args.tenant else None
    )
    with CubeService(RelativePrefixSumCube, cube) as service:
        backend = service
        router = None
        if args.router:
            router = QueryRouter(service)
            backend = router
        server = CubeServer(
            backend,
            host=args.host,
            port=args.port,
            authenticator=authenticator,
            max_inflight=args.max_inflight,
        )
        try:
            host, port = server.start_background()
            print(
                f"serving a {args.n}x{args.n} cube on {host}:{port} "
                f"(router={'on' if args.router else 'off'}, "
                f"tenants={len(authenticator.tenants) if authenticator else 0}, "
                f"max_inflight={args.max_inflight})",
                flush=True,
            )
            if args.duration is not None:
                import time as _time

                _time.sleep(args.duration)
            else:
                try:
                    import threading

                    threading.Event().wait()
                except KeyboardInterrupt:
                    pass
        finally:
            server.stop_background()
            if router is not None:
                router.close()
        print(json.dumps(server.metrics.snapshot(), indent=2, default=str))
    return 0


def _cmd_ingest(args) -> int:
    import json
    from pathlib import Path

    import numpy as np

    from repro.cube.encoders import IntegerEncoder
    from repro.cube.schema import CubeSchema, Dimension
    from repro.errors import IngestError
    from repro.ingest import (
        CSVSource,
        IngestPipeline,
        RollingCubeService,
        RollingServiceTarget,
        ServiceTarget,
    )
    from repro.serve import CubeService, DurabilityPolicy

    dims = []
    for spec in args.dim:
        try:
            name, lo, hi = spec.split(":")
            dims.append(Dimension(name, IntegerEncoder(int(lo), int(hi))))
        except ValueError:
            raise IngestError(
                f"bad --dim {spec!r}; expected name:lo:hi (e.g. x:0:15)"
            ) from None
    if not dims:
        raise IngestError("at least one --dim name:lo:hi is required")
    schema = CubeSchema(dims, args.measure)
    shape = tuple(d.size for d in dims)
    if args.time_column:
        shape = (args.window,) + shape

    state = Path(args.state)
    state.mkdir(parents=True, exist_ok=True)
    existing = sorted(state.glob("wal-*.seg")) or sorted(
        state.glob("ckpt-*.npz")
    )
    if existing:
        service = CubeService.recover(state, RelativePrefixSumCube)
        print(f"recovered durable state from {state}")
    else:
        service = CubeService(
            RelativePrefixSumCube,
            np.zeros(shape),
            durability=DurabilityPolicy(dir=state),
        )
        print(f"created durable state in {state}")

    converters = {d.name: int for d in dims}
    converters[args.measure] = float
    if args.time_column:
        converters[args.time_column] = int
        target = RollingServiceTarget(RollingCubeService(service))
    else:
        target = ServiceTarget(service)
    try:
        with IngestPipeline(
            CSVSource(args.file, converters=converters),
            schema,
            target,
            checkpoint_path=state / "ingest-checkpoint.json",
            deadletter_path=state / "ingest-deadletter.log",
            time_column=args.time_column,
            measure_dtype=np.float64,
            group_rows=args.group_rows,
        ) as pipeline:
            report = pipeline.run()
        service.flush()
    finally:
        service.close()
    print(json.dumps(dict(report), indent=2, default=str))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro-bench argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the tables and figures of the RPS paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run selected experiments")
    run_parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help="experiment ids (e.g. E6 E7); all when omitted",
    )
    run_parser.add_argument(
        "--csv", metavar="DIR", help="also write per-experiment CSV files"
    )
    run_parser.set_defaults(func=_cmd_run)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--csv", metavar="DIR", help="also write per-experiment CSV files"
    )
    all_parser.set_defaults(func=_cmd_run, experiments=[])

    sub.add_parser(
        "demo", help="walk the paper's worked example"
    ).set_defaults(func=_cmd_demo)

    workload_parser = sub.add_parser(
        "workload", help="run a named workload scenario across methods"
    )
    workload_parser.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario name (omit to list scenarios)",
    )
    workload_parser.add_argument(
        "--methods", nargs="*", default=["naive", "prefix_sum", "rps",
                                         "fenwick"],
        help="method names to run (default: all four)",
    )
    workload_parser.add_argument(
        "--n", type=int, default=128, help="cube side length (default 128)"
    )
    workload_parser.add_argument(
        "--ops", type=int, default=100,
        help="operations per stream (default 100)",
    )
    workload_parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    workload_parser.set_defaults(func=_cmd_workload)

    profile_parser = sub.add_parser(
        "profile", help="measure one or more methods' cost spec sheet"
    )
    profile_parser.add_argument(
        "--methods", nargs="*",
        default=["naive", "prefix_sum", "rps", "fenwick"],
        help="method names (default: all four)",
    )
    profile_parser.add_argument("--n", type=int, default=256)
    profile_parser.add_argument("--ops", type=int, default=200)
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument(
        "--box-size", type=int, default=None,
        help="override the RPS box size",
    )
    profile_parser.set_defaults(func=_cmd_profile)

    trace_parser = sub.add_parser(
        "trace", help="capture a scenario to a trace file, or replay one"
    )
    trace_parser.add_argument("action", choices=["capture", "replay"])
    trace_parser.add_argument("file", help="trace file (JSON lines)")
    trace_parser.add_argument(
        "--scenario", default="dashboard",
        help="scenario to capture (capture only)",
    )
    trace_parser.add_argument(
        "--methods", nargs="*",
        default=["prefix_sum", "rps"],
        help="methods to replay against (replay only)",
    )
    trace_parser.add_argument("--n", type=int, default=128)
    trace_parser.add_argument("--ops", type=int, default=100)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.set_defaults(func=_cmd_trace)

    cluster_parser = sub.add_parser(
        "cluster",
        help="drive a replicated sharded cluster and print its stats",
    )
    cluster_parser.add_argument(
        "--shards", type=int, default=2, help="number of shards (default 2)"
    )
    cluster_parser.add_argument(
        "--replicas", type=int, default=2,
        help="replicas per shard including the primary (default 2)",
    )
    cluster_parser.add_argument("--n", type=int, default=64)
    cluster_parser.add_argument("--ops", type=int, default=40)
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument(
        "--kill-primary", action="store_true",
        help="kill shard 0's primary halfway through and fail over",
    )
    cluster_parser.set_defaults(func=_cmd_cluster)

    router_parser = sub.add_parser(
        "router",
        help="serve a dashboard workload through the adaptive query "
             "router and print per-tier hit rates",
    )
    router_parser.add_argument("--n", type=int, default=128)
    router_parser.add_argument(
        "--rounds", type=int, default=5,
        help="write rounds (a flush between each, default 5)",
    )
    router_parser.add_argument(
        "--queries", type=int, default=64,
        help="boxes per workload page (default 64)",
    )
    router_parser.add_argument(
        "--repeats", type=int, default=3,
        help="times each page is re-asked per round (default 3)",
    )
    router_parser.add_argument(
        "--granularity", type=int, default=16,
        help="rollup grid size (default 16)",
    )
    router_parser.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="disable the memoized result tier",
    )
    router_parser.add_argument(
        "--no-rollup", dest="rollup", action="store_false",
        help="disable the pre-aggregated rollup tier",
    )
    router_parser.add_argument("--seed", type=int, default=0)
    router_parser.set_defaults(func=_cmd_router)

    serve_parser = sub.add_parser(
        "serve",
        help="stand up the TCP serving tier in front of a cube service",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=7421,
        help="bind port; 0 picks a free one (default 7421)",
    )
    serve_parser.add_argument("--n", type=int, default=256)
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--router", action="store_true",
        help="front the service with the adaptive query router",
    )
    serve_parser.add_argument(
        "--tenant", action="append", default=[],
        metavar="NAME=TOKEN[:RATE[:BURST]]",
        help="require auth; repeatable, one spec per tenant",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission-control cap on concurrent backend calls",
    )
    serve_parser.add_argument(
        "--duration", type=float, default=None,
        help="serve this many seconds then exit (default: until ^C)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    ingest_parser = sub.add_parser(
        "ingest",
        help="stream a CSV fact file into a durable cube service with "
             "exactly-once resume",
    )
    ingest_parser.add_argument("file", help="CSV file with a header row")
    ingest_parser.add_argument(
        "--state", required=True, metavar="DIR",
        help="durable state directory (WAL, checkpoints, ingest "
             "checkpoint, dead-letter file); re-running against the "
             "same dir resumes where the last run stopped",
    )
    ingest_parser.add_argument(
        "--dim", action="append", default=[], metavar="NAME:LO:HI",
        help="dimension column and its integer domain; repeatable, "
             "order fixes the cube axes (e.g. --dim age:0:99)",
    )
    ingest_parser.add_argument(
        "--measure", default="sales",
        help="measure column name (default sales)",
    )
    ingest_parser.add_argument(
        "--time-column", default=None, metavar="NAME",
        help="integer time-slot column; enables a rolling window cube "
             "with a leading time axis",
    )
    ingest_parser.add_argument(
        "--window", type=int, default=7,
        help="rolling window size in slots for --time-column (default 7)",
    )
    ingest_parser.add_argument(
        "--group-rows", type=int, default=4096,
        help="initial source rows per submitted group (default 4096)",
    )
    ingest_parser.set_defaults(func=_cmd_ingest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

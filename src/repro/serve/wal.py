"""Write-ahead log and checkpoints for durable cube serving.

The paper's premise is *dynamic* cubes — updates are first-class — so a
serving process must not lose acknowledged update groups when it dies.
This module provides the two halves of the classic durability contract
:class:`~repro.serve.CubeService` builds on:

* a **segmented, checksummed, binary WAL**: every submitted update group
  is appended (and optionally fsynced) *before* the submit call returns,
  so an acknowledged group is on disk by definition;
* **checkpoints**: periodic snapshots of the cube written through
  :func:`repro.persistence.save_method` (atomic rename + embedded
  SHA-256), which bound replay time and let the WAL be pruned.

Commit point and crash anatomy
------------------------------

A group is *committed* the moment its WAL record is fully on disk, and
*durable* once that record is fsynced — the service acknowledges only
after both (appends are buffered under the admission lock, then
group-committed to disk via :meth:`WriteAheadLog.sync_upto`, so
concurrent submitters share one fsync). A crash can therefore leave two
kinds of artifact: a **torn tail** — a partial final record from an
append that never finished — and a **headerless final segment** — a
rotation that died before the 8-byte header hit the disk. Both are
expected, not errors: replay detects a torn tail (short record or
checksum mismatch at end-of-log), truncates it, and recovers the
committed prefix; reopening the log discards a headerless final segment
(it holds no records by construction) and rotates into a fresh one. A
checksum mismatch *before* the tail means real corruption and raises
:class:`~repro.errors.WALCorruptionError` — replay never guesses past
damaged committed data.

On-disk format
--------------

Segments are named ``wal-<seq>.seg`` where ``<seq>`` is the first
sequence number the segment was opened for. Each begins with an 8-byte
header: magic ``RPWAL1\\x00`` plus one checksum-algorithm byte (0 =
zlib CRC-32, the default — C speed; 1 = CRC-32C/Castagnoli via the
pure-Python fallback table in :func:`crc32c`). Records follow
back-to-back::

    <u32 payload_len> <u32 checksum(payload)> <payload>
    payload = <u64 seq> <u32 m> <u16 d> <u8 dtype> <u8 0>
              <m*d int64 indices> <m int64|float64 deltas>

Checkpoints are ``ckpt-<seq>.npz`` files; ``<seq>`` is the number of
update groups folded in. The newest *valid* checkpoint wins at recovery;
a corrupt one (digest mismatch, truncation) falls back to the previous,
which is why :func:`prune_wal` only drops segments below the *oldest*
retained checkpoint — the fallback path must still find every record it
needs to replay.
"""

from __future__ import annotations

import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    RecoveryError,
    StorageError,
    WALCorruptionError,
    WALError,
)

SEGMENT_MAGIC = b"RPWAL1\x00"
#: checksum-algorithm byte values recorded in the segment header
ALGO_CRC32 = 0
ALGO_CRC32C = 1

_RECORD_HEADER = struct.Struct("<II")  # payload length, payload checksum
_PAYLOAD_HEADER = struct.Struct("<QIHBB")  # seq, m, d, dtype code, reserved
_DTYPE_CODES = {0: np.dtype(np.int64), 1: np.dtype(np.float64)}

_SEGMENT_RE = re.compile(r"^wal-(\d{20})\.seg$")
_CKPT_RE = re.compile(r"^ckpt-(\d{20})\.npz$")


def _make_crc32c_table() -> Tuple[int, ...]:
    polynomial = 0x82F63B78  # Castagnoli, reflected
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ polynomial if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _make_crc32c_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C (Castagnoli) of ``data`` — pure-Python, table-driven.

    Kept as the portable reference implementation; the WAL defaults to
    zlib's C-speed CRC-32 and records which algorithm each segment uses
    in its header, so either can read the other's files.
    """
    crc = ~crc & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32C_TABLE[(crc ^ byte) & 0xFF]
    return ~crc & 0xFFFFFFFF


def _checksum(algo: int, payload: bytes) -> int:
    if algo == ALGO_CRC32:
        return zlib.crc32(payload) & 0xFFFFFFFF
    if algo == ALGO_CRC32C:
        return crc32c(payload)
    raise WALError(f"unknown WAL checksum algorithm byte {algo}")


# ---------------------------------------------------------------------------
# Record encoding
# ---------------------------------------------------------------------------


def encode_record(
    seq: int, indices: np.ndarray, deltas: np.ndarray, algo: int = ALGO_CRC32
) -> bytes:
    """One framed WAL record for update group ``seq``."""
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise WALError(
            f"indices must be (m, d), got shape {indices.shape}"
        )
    m, d = indices.shape
    deltas = np.asarray(deltas)
    if deltas.shape != (m,):
        raise WALError(
            f"deltas must align with indices: {deltas.shape} vs m={m}"
        )
    if np.issubdtype(deltas.dtype, np.floating):
        code, deltas = 1, np.ascontiguousarray(deltas, dtype=np.float64)
    else:
        code, deltas = 0, np.ascontiguousarray(deltas, dtype=np.int64)
    payload = (
        _PAYLOAD_HEADER.pack(int(seq), m, d, code, 0)
        + indices.tobytes()
        + deltas.tobytes()
    )
    return _RECORD_HEADER.pack(len(payload), _checksum(algo, payload)) + payload


def _decode_payload(payload: bytes) -> Tuple[int, np.ndarray, np.ndarray]:
    seq, m, d, code, _ = _PAYLOAD_HEADER.unpack_from(payload)
    if code not in _DTYPE_CODES:
        raise WALCorruptionError(f"unknown delta dtype code {code}")
    expected = _PAYLOAD_HEADER.size + m * d * 8 + m * 8
    if len(payload) != expected:
        raise WALCorruptionError(
            f"payload length {len(payload)} != declared {expected}"
        )
    offset = _PAYLOAD_HEADER.size
    indices = np.frombuffer(
        payload, dtype=np.int64, count=m * d, offset=offset
    ).reshape(m, d).astype(np.intp)
    deltas = np.frombuffer(
        payload, dtype=_DTYPE_CODES[code], count=m, offset=offset + m * d * 8
    ).copy()
    return seq, indices, deltas


@dataclass(frozen=True)
class WalRecord:
    """One committed update group read back from the log."""

    seq: int
    indices: np.ndarray
    deltas: np.ndarray


@dataclass(frozen=True)
class TornTail:
    """A partial final record left by a crash mid-append."""

    path: str
    offset: int  # file offset where the committed prefix ends
    size: int  # bytes of torn garbage after it


# ---------------------------------------------------------------------------
# Segment scanning and replay
# ---------------------------------------------------------------------------


def _list_segments(directory) -> List[Tuple[int, Path]]:
    directory = Path(directory)
    found = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
    return sorted(found)


def _scan_segment(
    path,
) -> Tuple[List[WalRecord], int, int, int]:
    """Parse one segment: ``(records, good_bytes, torn_bytes, algo)``.

    ``good_bytes`` is the offset where the committed prefix ends;
    ``torn_bytes`` counts trailing bytes that do not form a complete,
    checksum-valid record. A bad record *followed by more data* is
    corruption of the committed body and raises
    :class:`~repro.errors.WALCorruptionError`.
    """
    blob = Path(path).read_bytes()
    if len(blob) < len(SEGMENT_MAGIC) + 1:
        # a segment header that never finished writing is itself a torn tail
        return [], 0, len(blob), ALGO_CRC32
    if blob[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise WALCorruptionError(
            f"{os.fspath(path)!r} is not a WAL segment (bad magic)"
        )
    algo = blob[len(SEGMENT_MAGIC)]
    if algo not in (ALGO_CRC32, ALGO_CRC32C):
        raise WALCorruptionError(
            f"{os.fspath(path)!r} declares unknown checksum algorithm {algo}"
        )
    records: List[WalRecord] = []
    offset = len(SEGMENT_MAGIC) + 1
    size = len(blob)
    while offset < size:
        if size - offset < _RECORD_HEADER.size:
            return records, offset, size - offset, algo
        length, crc = _RECORD_HEADER.unpack_from(blob, offset)
        end = offset + _RECORD_HEADER.size + length
        if end > size:
            return records, offset, size - offset, algo
        payload = blob[offset + _RECORD_HEADER.size : end]
        if _checksum(algo, payload) != crc:
            if end == size:
                # checksum failure on the very last record: torn tail
                return records, offset, size - offset, algo
            raise WALCorruptionError(
                f"{os.fspath(path)!r}: checksum mismatch at offset "
                f"{offset} with committed records after it — the log "
                f"body is corrupt"
            )
        try:
            seq, indices, deltas = _decode_payload(payload)
        except WALCorruptionError as err:
            if end == size:
                return records, offset, size - offset, algo
            raise WALCorruptionError(
                f"{os.fspath(path)!r}: undecodable record at offset "
                f"{offset}: {err}"
            ) from None
        records.append(WalRecord(seq, indices, deltas))
        offset = end
    return records, offset, 0, algo


def replay(
    directory, *, tolerate_torn_tail: bool = True
) -> Tuple[List[WalRecord], Optional[TornTail]]:
    """Read every committed record in sequence order.

    Only the *last* segment may carry a torn tail (appends are strictly
    sequential, so a crash can only tear the end of the log); a torn or
    short earlier segment raises :class:`~repro.errors.WALCorruptionError`,
    as does any gap or regression in the record sequence numbers.
    """
    segments = _list_segments(directory)
    records: List[WalRecord] = []
    torn: Optional[TornTail] = None
    for position, (_, path) in enumerate(segments):
        found, good, torn_bytes, _ = _scan_segment(path)
        if torn_bytes:
            last = position == len(segments) - 1
            if not last or not tolerate_torn_tail:
                raise WALCorruptionError(
                    f"{os.fspath(path)!r} has {torn_bytes} torn bytes but "
                    f"is not the final segment"
                )
            torn = TornTail(os.fspath(path), good, torn_bytes)
        records.extend(found)
    for previous, current in zip(records, records[1:]):
        if current.seq != previous.seq + 1:
            raise WALCorruptionError(
                f"WAL sequence gap: record {previous.seq} followed by "
                f"{current.seq}"
            )
    return records, torn


# ---------------------------------------------------------------------------
# The writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only segmented log of update groups.

    Args:
        directory: where segments live (created if missing).
        segment_max_bytes: rotate to a fresh segment once the current
            one exceeds this size.
        sync: fsync after every append (the durability of the ack).
        checksum: ``"crc32"`` (zlib, default) or ``"crc32c"``.
        faults: optional :class:`~repro.faults.FaultPlan`; consulted
            before every append (fail-nth-write, torn writes).
        metrics: optional :class:`~repro.metrics.service.ServiceMetrics`
            to tally appends, bytes, and fsyncs.
        repair: truncate a torn tail found at open so appends continue
            from the committed prefix; with ``repair=False`` a torn tail
            raises :class:`~repro.errors.WALError` instead.

    A torn append injected by the fault plan leaves the partial record
    on disk and marks the log **failed**: every later append raises
    :class:`~repro.errors.WALError`. That mirrors a real engine losing
    its log device — the service degrades to read-only instead of
    appending after garbage.
    """

    def __init__(
        self,
        directory,
        *,
        segment_max_bytes: int = 4 << 20,
        sync: bool = True,
        checksum: str = "crc32",
        faults=None,
        metrics=None,
        repair: bool = True,
    ) -> None:
        if checksum not in ("crc32", "crc32c"):
            raise WALError(
                f"checksum must be 'crc32' or 'crc32c', got {checksum!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = int(segment_max_bytes)
        self.sync = bool(sync)
        self._algo = ALGO_CRC32C if checksum == "crc32c" else ALGO_CRC32
        self._faults = faults
        self._metrics = metrics
        self._lock = threading.RLock()
        self._sync_lock = threading.Lock()
        self._handle = None
        self._failed: Optional[str] = None
        self._segment_last_seq: Dict[Path, int] = {}
        self._open_existing(repair)
        self._durable_seq = self._next_seq - 1

    def _open_existing(self, repair: bool) -> None:
        segments = _list_segments(self.directory)
        header_size = len(SEGMENT_MAGIC) + 1
        last_seq = 0
        for position, (start, path) in enumerate(segments):
            records, good, torn_bytes, _ = _scan_segment(path)
            if torn_bytes:
                if position != len(segments) - 1:
                    raise WALCorruptionError(
                        f"{os.fspath(path)!r} has a torn tail but is not "
                        f"the final segment"
                    )
                if not repair:
                    raise WALError(
                        f"{os.fspath(path)!r} ends in a {torn_bytes}-byte "
                        f"torn record; open with repair=True to truncate it"
                    )
                with open(path, "r+b") as handle:
                    handle.truncate(good)
            if records:
                last_seq = records[-1].seq
                self._segment_last_seq[path] = records[-1].seq
            else:
                self._segment_last_seq[path] = start - 1
        self._next_seq = last_seq + 1 if segments else 1
        self._current_path = None
        if segments:
            path = segments[-1][1]
            if path.stat().st_size < header_size:
                # A crash during rotation — or the torn-header truncation
                # above — left the final segment without a complete
                # RPWAL1 header. Appending to it would produce a
                # headerless file that replay can never read, so discard
                # the empty shell; the next append rotates into a fresh,
                # properly-headered segment. Nothing committed is lost:
                # a segment without a header holds no records.
                if not repair:
                    raise WALError(
                        f"{os.fspath(path)!r} has no complete segment "
                        f"header; open with repair=True to discard it"
                    )
                path.unlink()
                self._segment_last_seq.pop(path, None)
            else:
                # keep appending to the final segment (post-repair)
                self._current_path = path
                self._handle = open(path, "ab")

    # -- properties ----------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next append must carry."""
        with self._lock:
            return self._next_seq

    @property
    def failed(self) -> bool:
        """True once a torn/failed append has poisoned the log."""
        with self._lock:
            return self._failed is not None

    @property
    def durable_seq(self) -> int:
        """Highest sequence number known to be fsynced to disk."""
        with self._lock:
            return self._durable_seq

    # -- appending -----------------------------------------------------------

    def _poison(self, reason: str) -> None:
        """Mark the log failed (caller holds ``_lock``) and count it."""
        self._failed = reason
        if self._metrics is not None:
            self._metrics.record_wal_failure()

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            # everything written so far lives in the segment just synced
            self._durable_seq = self._next_seq - 1
            self._handle.close()
        path = self.directory / f"wal-{self._next_seq:020d}.seg"
        self._handle = open(path, "ab")
        self._handle.write(SEGMENT_MAGIC + bytes([self._algo]))
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self._current_path = path
        self._segment_last_seq[path] = self._next_seq - 1

    def append(self, seq: int, indices, deltas, *, sync=None) -> int:
        """Log update group ``seq``; returns bytes written.

        With ``sync`` left at ``None`` the log's own ``sync`` setting
        decides: the record is on disk — fsynced — before this returns,
        and the caller may acknowledge the group afterwards. Passing
        ``sync=False`` writes the record (buffered, flushed to the OS)
        but defers durability to a later :meth:`sync_upto` — the
        group-commit path :class:`~repro.serve.CubeService` uses so
        concurrent submitters share one fsync.

        On any failure — injected or a real ``OSError`` from the write
        or fsync (disk full, I/O error) — nothing is acknowledged, the
        tail may hold a partial record, and the log refuses further
        appends until reopened (the service degrades to read-only).
        """
        with self._lock:
            if self._failed is not None:
                raise WALError(
                    f"write-ahead log has failed ({self._failed}); the "
                    f"service is degraded to read-only"
                )
            if seq != self._next_seq:
                raise WALError(
                    f"append out of order: got seq {seq}, expected "
                    f"{self._next_seq}"
                )
            record = encode_record(seq, indices, deltas, self._algo)
            action, keep = "ok", len(record)
            if self._faults is not None:
                action, keep = self._faults.on_wal_append(len(record))
            if action == "fail":
                self._poison(f"injected write failure at seq {seq}")
                from repro.faults import InjectedFault

                raise InjectedFault(self._failed)
            do_sync = self.sync if sync is None else bool(sync)
            try:
                if (
                    self._handle is None
                    or self._handle.tell() >= self.segment_max_bytes
                ):
                    self._rotate()
                if action == "torn":
                    # persist the partial record — the crash image —
                    # then fail
                    self._handle.write(record[:keep])
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                    self._poison(f"injected torn write at seq {seq}")
                    from repro.faults import InjectedFault

                    raise InjectedFault(self._failed)
                self._handle.write(record)
                self._handle.flush()
                if do_sync:
                    os.fsync(self._handle.fileno())
            except BaseException as err:
                # A real I/O failure leaves the same artifact as an
                # injected torn write: an unknown amount of the record
                # on disk. Appending after it would bury garbage inside
                # the committed body, so the log is poisoned either way.
                if self._failed is None:
                    self._poison(f"append of seq {seq} failed: {err!r}")
                raise
            self._next_seq = seq + 1
            if do_sync:
                self._durable_seq = seq
            self._segment_last_seq[self._current_path] = seq
            if self._metrics is not None:
                self._metrics.record_wal_append(len(record), do_sync)
            return len(record)

    def sync_upto(self, seq: int) -> None:
        """Block until record ``seq`` is durable (fsynced); group commit.

        Safe to call from many threads: callers serialize on a dedicated
        sync lock, and one fsync covers every record written before it,
        so concurrent submitters share a single disk flush instead of
        paying one each. A no-op when the log was opened with
        ``sync=False`` (durability disabled by policy) or when ``seq``
        is already durable. An fsync failure poisons the log exactly
        like a failed append.
        """
        if not self.sync:
            return
        with self._sync_lock:
            with self._lock:
                if self._durable_seq >= seq:
                    return
                if self._failed is not None:
                    raise WALError(
                        f"write-ahead log has failed ({self._failed}); "
                        f"durability of seq {seq} cannot be guaranteed"
                    )
                if seq >= self._next_seq:
                    raise WALError(
                        f"sync_upto({seq}): only {self._next_seq - 1} "
                        f"records have been appended"
                    )
                handle = self._handle
                written = self._next_seq - 1
            if handle is None:
                raise WALError(
                    f"sync_upto({seq}): the log has no open segment"
                )
            try:
                # outside ``_lock`` on purpose: appenders keep writing
                # (buffered) while the flush runs, and the service's
                # admission lock never waits behind the disk
                os.fsync(handle.fileno())
            except (OSError, ValueError) as err:
                with self._lock:
                    # a concurrent rotation fsyncs-and-closes the handle
                    # under us — re-check before declaring failure
                    if self._durable_seq >= seq:
                        return
                    self._poison(f"fsync of seq {seq} failed: {err!r}")
                raise WALError(
                    f"write-ahead log fsync failed: {err!r}"
                ) from err
            with self._lock:
                if self._durable_seq < written:
                    self._durable_seq = written
            if self._metrics is not None:
                self._metrics.record_wal_fsync()

    # -- maintenance ---------------------------------------------------------

    def prune_upto(self, seq: int) -> int:
        """Delete segments whose every record is ``<= seq``; returns the
        number removed. The active segment is never deleted."""
        removed = 0
        with self._lock:
            for start, path in _list_segments(self.directory):
                if path == self._current_path:
                    continue
                last = self._segment_last_seq.get(path)
                if last is None:
                    last = start - 1
                    records, _, _, _ = _scan_segment(path)
                    if records:
                        last = records[-1].seq
                if last <= seq:
                    path.unlink()
                    self._segment_last_seq.pop(path, None)
                    removed += 1
        return removed

    def close(self, sync: bool = True) -> None:
        """Close the active segment handle (optionally without fsync, to
        model an unclean shutdown)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    if sync:
                        os.fsync(self._handle.fileno())
                        self._durable_seq = self._next_seq - 1
                finally:
                    self._handle.close()
                    self._handle = None

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(dir={os.fspath(self.directory)!r}, "
            f"next_seq={self._next_seq}, failed={self.failed})"
        )


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


def checkpoint_path(directory, seq: int) -> Path:
    """Canonical path of the checkpoint at ``seq`` applied groups."""
    return Path(directory) / f"ckpt-{int(seq):020d}.npz"


def list_checkpoints(directory) -> List[Tuple[int, Path]]:
    """All checkpoint files, sorted by sequence ascending."""
    directory = Path(directory)
    found = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _CKPT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
    return sorted(found)


def write_checkpoint(method, directory, seq: int) -> Path:
    """Snapshot ``method`` as the state after ``seq`` groups.

    Goes through :func:`repro.persistence.save_method` — atomic rename
    plus embedded digest — so a crash mid-checkpoint leaves either the
    old file set or the new one, never a half-written snapshot.
    """
    from repro import persistence

    path = checkpoint_path(directory, seq)
    persistence.save_method(method, path)
    return path


def prune_checkpoints(directory, keep: int = 2) -> int:
    """Remove all but the newest ``keep`` checkpoints; returns count."""
    checkpoints = list_checkpoints(directory)
    removed = 0
    for _, path in checkpoints[: max(0, len(checkpoints) - int(keep))]:
        path.unlink()
        removed += 1
    return removed


def prune_wal(directory, wal: WriteAheadLog, keep_checkpoints: int = 2) -> int:
    """Drop WAL segments no retained checkpoint could need.

    Replay starts from the newest valid checkpoint but may *fall back*
    to an older one if the newest is corrupt — so segments are pruned
    only below the oldest retained checkpoint's sequence.
    """
    retained = list_checkpoints(directory)[-max(1, int(keep_checkpoints)):]
    if not retained:
        return 0
    return wal.prune_upto(retained[0][0])


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveredState:
    """What :func:`recover_state` restored, and how it got there."""

    method: object  # the rebuilt RangeSumMethod
    version: int  # update groups folded in (checkpoint + replay)
    checkpoint_seq: int  # sequence of the checkpoint that loaded
    replayed_groups: int  # committed WAL groups applied on top
    quarantined: Tuple[Tuple[int, str], ...] = ()  # (seq, error) skipped
    skipped_checkpoints: Tuple[Tuple[int, str], ...] = ()  # corrupt ckpts
    torn_tail: Optional[TornTail] = None  # truncatable crash artifact


def recover_state(
    directory,
    method_cls=None,
    *,
    method_kwargs: Optional[dict] = None,
) -> RecoveredState:
    """Rebuild the newest recoverable cube state from ``directory``.

    The algorithm (see ``docs/architecture.md`` for the crash matrix):

    1. try checkpoints newest-first; digest or read failures fall back
       to the next-older checkpoint (recorded in
       ``skipped_checkpoints``),
    2. replay every committed WAL record with ``seq`` greater than the
       checkpoint's through ``apply_batch_array`` — a torn tail is
       truncated-by-ignoring, a record that fails to apply is
       quarantined (skipped, recorded) exactly as the live writer would,
    3. the recovered ``version`` is the highest committed sequence seen
       (or the checkpoint's, if the log is empty).

    Args:
        directory: the durability directory (checkpoints + WAL).
        method_cls: optionally rebuild as a different
            :class:`~repro.core.base.RangeSumMethod` subclass than the
            checkpoint recorded.
        method_kwargs: forwarded when ``method_cls`` forces a rebuild.

    Raises:
        RecoveryError: no checkpoint loads, or committed groups are
            missing from the log (a sequence gap above the checkpoint).
    """
    from repro import persistence

    checkpoints = list_checkpoints(directory)
    if not checkpoints:
        raise RecoveryError(
            f"no checkpoints in {os.fspath(directory)!r}; nothing to "
            f"recover from"
        )
    method = None
    base_seq = 0
    skipped: List[Tuple[int, str]] = []
    for seq, path in reversed(checkpoints):
        try:
            method = persistence.load_method(path)
            base_seq = seq
            break
        except StorageError as err:
            skipped.append((seq, str(err)))
    if method is None:
        raise RecoveryError(
            f"every checkpoint in {os.fspath(directory)!r} is corrupt: "
            f"{[(seq, msg[:80]) for seq, msg in skipped]}"
        )
    if method_cls is not None and type(method) is not method_cls:
        kwargs = dict(method_kwargs or {})
        if not kwargs and getattr(method, "box_sizes", None) is not None:
            kwargs["box_size"] = method.box_sizes
        try:
            method = method_cls(method.to_array(), **kwargs)
        except TypeError:
            method = method_cls(method.to_array())

    records, torn = replay(directory)
    pending = [record for record in records if record.seq > base_seq]
    if pending and pending[0].seq != base_seq + 1:
        raise RecoveryError(
            f"WAL starts at seq {pending[0].seq} but the checkpoint is at "
            f"{base_seq}: committed groups "
            f"{base_seq + 1}..{pending[0].seq - 1} are missing"
        )
    quarantined: List[Tuple[int, str]] = []
    replayed = 0
    version = base_seq
    for record in pending:
        try:
            method.apply_batch_array(record.indices, record.deltas)
            replayed += 1
        except Exception as err:  # poisoned group: skip, like the writer
            quarantined.append((record.seq, repr(err)))
        version = record.seq
    return RecoveredState(
        method=method,
        version=version,
        checkpoint_seq=base_seq,
        replayed_groups=replayed,
        quarantined=tuple(quarantined),
        skipped_checkpoints=tuple(skipped),
        torn_tail=torn,
    )


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DurabilityPolicy:
    """How a :class:`~repro.serve.CubeService` persists its updates.

    Args:
        dir: durability directory; WAL segments and checkpoints live
            here, and :meth:`~repro.serve.CubeService.recover` reads it.
        checkpoint_every: write a checkpoint after this many applied
            groups (bounds replay length). ``0`` disables periodic
            checkpoints (one is still written at open and close).
        fsync: fsync the WAL before every ack — the strict reading of
            "acked means durable". The flush is *group-committed*: the
            record is written (buffered) under the service's admission
            lock to pin the sequence order, but the fsync itself runs
            outside it via :meth:`WriteAheadLog.sync_upto`, so
            concurrent submitters share one disk flush and readers,
            ``stats()``, and the writer's publish path never serialize
            behind the disk. Disable for throughput experiments.
        segment_max_bytes: WAL segment rotation threshold.
        keep_checkpoints: checkpoints retained for corruption fallback;
            WAL segments below the oldest retained one are pruned.
    """

    dir: object = field(default=None)
    checkpoint_every: int = 256
    fsync: bool = True
    segment_max_bytes: int = 4 << 20
    keep_checkpoints: int = 2

    def __post_init__(self):
        if self.dir is None:
            raise StorageError("DurabilityPolicy requires a dir")
        if self.checkpoint_every < 0:
            raise StorageError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.keep_checkpoints < 1:
            raise StorageError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )

"""Exponential backoff with jitter for overloaded-service callers.

When a :class:`~repro.serve.CubeService` runs with a bounded submission
queue, a saturated writer surfaces as
:class:`~repro.errors.ServiceOverloadedError` at submit time. The
textbook client response is capped exponential backoff with jitter —
retrying immediately synchronizes the herd; jitter de-correlates it.
This module provides the policy as a reusable iterator
(:class:`ExponentialBackoff`) and the loop most callers want
(:func:`call_with_retries`), both deterministic under a seed so tests
and chaos runs replay exactly.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.deadline import Deadline
from repro.errors import ServiceOverloadedError


class ExponentialBackoff:
    """Iterator of capped, jittered exponential delays (seconds).

    Delay ``i`` (0-based) is drawn uniformly from
    ``[(1 - jitter) * d_i, d_i]`` where
    ``d_i = min(base_delay * multiplier**i, max_delay)`` — "equal jitter
    lite": the upper envelope stays exponential, the floor keeps a
    minimum spacing so retries never stampede.

    Args:
        base_delay: first delay's upper bound.
        multiplier: growth factor per attempt.
        max_delay: cap on the undithered delay.
        jitter: fraction of each delay randomized away (0 = none).
        seed: seeds the jitter stream; ``None`` uses entropy.
    """

    def __init__(
        self,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)
        self._attempt = 0

    def __iter__(self) -> Iterator[float]:
        return self

    def __next__(self) -> float:
        delay = min(
            self.base_delay * self.multiplier**self._attempt, self.max_delay
        )
        self._attempt += 1
        if self.jitter:
            delay -= delay * self.jitter * self._rng.random()
        return delay


def call_with_retries(
    fn: Callable,
    *,
    attempts: int = 5,
    retry_on: Tuple[Type[BaseException], ...] = (ServiceOverloadedError,),
    base_delay: float = 0.01,
    multiplier: float = 2.0,
    max_delay: float = 1.0,
    jitter: float = 0.5,
    seed: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    deadline: Optional[Deadline] = None,
):
    """Call ``fn()`` with capped exponential backoff on overload.

    Args:
        fn: zero-argument callable (wrap arguments in a lambda or
            ``functools.partial``).
        attempts: total tries including the first; the final failure is
            re-raised unchanged.
        retry_on: exception types worth retrying — anything else
            propagates immediately.
        base_delay / multiplier / max_delay / jitter / seed: backoff
            shape, see :class:`ExponentialBackoff`.
        sleep: injectable clock for tests.
        on_retry: optional observer called as
            ``on_retry(attempt_number, error, delay_seconds)`` before
            each sleep.
        deadline: optional total-elapsed cap shared with the cluster
            layer (:class:`repro.deadline.Deadline`). Retrying stops the
            moment the budget is exhausted — the last failure is
            re-raised instead of running out the remaining attempts —
            and each backoff sleep is clamped to the remaining budget so
            a retry loop can never outlive its caller's deadline.

    Returns whatever ``fn`` returns on the first success.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    backoff = ExponentialBackoff(
        base_delay=base_delay,
        multiplier=multiplier,
        max_delay=max_delay,
        jitter=jitter,
        seed=seed,
    )
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as error:
            if attempt == attempts:
                raise
            if deadline is not None and deadline.expired:
                raise
            delay = next(backoff)
            if deadline is not None:
                delay = deadline.bound(delay)
            if on_retry is not None:
                on_retry(attempt, error, delay)
            sleep(delay)

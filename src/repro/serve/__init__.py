"""Concurrent serving: snapshot-isolated reads over batched writes.

See :mod:`repro.serve.service` for the design; the short version is
double buffering — readers pin an immutable snapshot, a single writer
thread coalesces queued deltas into ``apply_batch`` on the back buffer
and atomically swaps it in.
"""

from repro.serve.service import CubeService, ServiceClosedError

__all__ = ["CubeService", "ServiceClosedError"]

"""Concurrent serving: snapshot-isolated reads over batched writes.

See :mod:`repro.serve.service` for the design; the short version is
double buffering — readers pin an immutable snapshot, a single writer
thread coalesces queued deltas into ``apply_batch`` on the back buffer
and atomically swaps it in. :mod:`repro.serve.wal` adds the durability
layer (write-ahead log + checkpoints + crash recovery) and
:mod:`repro.serve.retry` the client-side backoff for overloaded
services.
"""

from repro.errors import ServiceOverloadedError
from repro.serve.retry import ExponentialBackoff, call_with_retries
from repro.serve.service import CubeService, ServiceClosedError
from repro.serve.wal import (
    DurabilityPolicy,
    RecoveredState,
    WriteAheadLog,
    recover_state,
    replay,
)

__all__ = [
    "CubeService",
    "DurabilityPolicy",
    "ExponentialBackoff",
    "RecoveredState",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "WriteAheadLog",
    "call_with_retries",
    "recover_state",
    "replay",
]

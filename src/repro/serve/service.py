"""Snapshot-isolated concurrent serving of a range-sum method.

The paper's structures are single-writer by construction: an update
cascades through shared arrays, so a reader that interleaves with it can
observe a half-applied state (a torn read). :class:`CubeService` makes
the trade the OLAP workload actually wants — heavy concurrent reads,
periodic batched writes — safe:

* **Readers** run against an immutable *snapshot*: a fully-built method
  instance that is never mutated while published. Any number of threads
  may query it concurrently (queries only read).
* **A single writer thread** drains queued deltas, coalesces them per
  cell with one array pass (``np.unique`` over the index rows plus a
  segment-summing scatter), applies them to the *back buffer* via the
  method's own ``apply_batch_array`` (so the RPS strategy planner —
  incremental, vectorized, or rebuild — still applies), and atomically
  swaps the back buffer in as the new snapshot.
* After the swap the writer waits for in-flight readers to drain off the
  retired snapshot, then replays the same batch onto it — classic
  double buffering: each batch is applied twice, but no reader ever
  sees a structure mid-cascade, and batch cost stays proportional to
  the batch (no per-batch rebuild).

Consistency contract: every read observes the state after some prefix
of the submitted update groups — never a partially applied group. Each
``submit_*`` call is one atomic group; the snapshot ``version`` equals
the number of groups applied, so ``query_many`` callers can correlate
results with an exact logical state.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import RangeSumMethod
from repro.errors import ReproError
from repro.metrics.service import ServiceMetrics


class ServiceClosedError(ReproError):
    """Raised when submitting to or querying a closed service."""


class _Snapshot:
    """One published state: a method instance plus reader accounting.

    ``version`` is the number of update groups folded in. ``active`` is
    the count of in-flight reader calls; the writer mutates the instance
    only while it is unpublished *and* ``active == 0``.
    """

    __slots__ = ("method", "version", "active", "cond")

    def __init__(self, method: RangeSumMethod, version: int) -> None:
        self.method = method
        self.version = version
        self.active = 0
        self.cond = threading.Condition(threading.Lock())


class CubeService:
    """Serve one data cube to concurrent readers during batched writes.

    Args:
        method_cls: any :class:`~repro.core.base.RangeSumMethod`
            subclass; two instances are built (front and back buffer).
        array: the initial dense cube.
        method_kwargs: forwarded to both constructions (box sizes etc.).
        poll_seconds: writer wake-up interval while the queue is idle.
        max_groups_per_cycle: most queued groups merged into one
            ``apply_batch`` cycle (bounds swap latency under a firehose).

    Use as a context manager, or call :meth:`close` explicitly — the
    writer is a daemon thread, but an orderly close drains the queue::

        with CubeService(RelativePrefixSumCube, cube) as svc:
            svc.submit_batch([((3, 4), +10), ((0, 1), -2)])
            svc.flush()
            total = svc.total()
    """

    def __init__(
        self,
        method_cls,
        array: np.ndarray,
        *,
        method_kwargs: Optional[Dict] = None,
        poll_seconds: float = 0.002,
        max_groups_per_cycle: int = 1024,
    ) -> None:
        kwargs = dict(method_kwargs or {})
        source = np.asarray(array)
        self._front = _Snapshot(method_cls(source, **kwargs), version=0)
        self._back = method_cls(source, **kwargs)
        self.shape = self._front.method.shape
        self.metrics = ServiceMetrics()
        self._poll_seconds = float(poll_seconds)
        self._max_groups = int(max_groups_per_cycle)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._state_lock = threading.Condition(threading.Lock())
        self._submitted_groups = 0
        self._applied_groups = 0
        self._completed_groups = 0
        self._closed = False
        self._writer_error: Optional[BaseException] = None
        self._writer = threading.Thread(
            target=self._writer_loop, name="cube-service-writer", daemon=True
        )
        self._writer.start()

    # -- reader API ----------------------------------------------------------

    def _acquire(self) -> _Snapshot:
        """Pin the current snapshot against retirement while reading.

        Retry protocol: after registering on a snapshot, re-check that it
        is still published; the writer only mutates a snapshot once it is
        unpublished and its active count has hit zero, so a successful
        re-check guarantees the instance stays frozen until release.
        """
        while True:
            snap = self._front
            with snap.cond:
                snap.active += 1
            if snap is self._front:
                return snap
            self._release(snap)

    def _release(self, snap: _Snapshot) -> None:
        with snap.cond:
            snap.active -= 1
            if snap.active == 0:
                snap.cond.notify_all()

    def _read(self, fn):
        if self._writer_error is not None:
            raise ServiceClosedError(
                "service writer died"
            ) from self._writer_error
        start = time.perf_counter()
        snap = self._acquire()
        try:
            result = fn(snap.method)
            version = snap.version
        finally:
            self._release(snap)
        return result, version, time.perf_counter() - start

    def query_many(
        self, lows, highs
    ) -> Tuple[np.ndarray, int]:
        """Batched range sums plus the snapshot version that served them.

        The whole batch is answered by one snapshot — results are
        mutually consistent, and ``version`` names the exact logical
        state (number of update groups applied).
        """
        values, version, seconds = self._read(
            lambda m: m.range_sum_many(lows, highs)
        )
        self.metrics.record_read(seconds, len(values))
        return values, version

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched range sums against one consistent snapshot."""
        return self.query_many(lows, highs)[0]

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched prefix sums against one consistent snapshot."""
        values, _, seconds = self._read(
            lambda m: m.prefix_sum_many(targets)
        )
        self.metrics.record_read(seconds, len(values))
        return values

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """One range sum (snapshot-isolated like the batched calls)."""
        value, _, seconds = self._read(lambda m: m.range_sum(low, high))
        self.metrics.record_read(seconds, 1)
        return value

    def prefix_sum(self, target: Sequence[int]):
        """One prefix sum against the current snapshot."""
        value, _, seconds = self._read(lambda m: m.prefix_sum(target))
        self.metrics.record_read(seconds, 1)
        return value

    def cell_value(self, index: Sequence[int]):
        """One cell read against the current snapshot."""
        value, _, seconds = self._read(lambda m: m.cell_value(index))
        self.metrics.record_read(seconds, 1)
        return value

    def total(self):
        """Sum of the whole cube at the current snapshot."""
        value, _, seconds = self._read(lambda m: m.total())
        self.metrics.record_read(seconds, 1)
        return value

    @property
    def version(self) -> int:
        """Update groups visible to a reader acquiring a snapshot now."""
        with self._state_lock:
            return self._front.version

    # -- writer API ----------------------------------------------------------

    def submit_delta(self, index: Sequence[int], delta) -> int:
        """Queue one cell delta as its own atomic group; returns the
        group's sequence number (compare with :attr:`version`)."""
        return self.submit_batch([(index, delta)])

    def submit_batch(
        self, updates: Iterable[Tuple[Sequence[int], object]]
    ) -> int:
        """Queue one atomic group of ``(index, delta)`` updates.

        The group is applied in a single ``apply_batch`` cycle — readers
        either see all of it or none of it. Returns the group's sequence
        number: once :attr:`version` reaches it, every read reflects it.
        """
        group = [
            (tuple(int(c) for c in index), delta) for index, delta in updates
        ]
        with self._state_lock:
            if self._writer_error is not None:
                # Nothing enqueued now can ever be applied; failing the
                # submit is the only honest answer.
                raise ServiceClosedError(
                    "service writer died"
                ) from self._writer_error
            if self._closed:
                raise ServiceClosedError("service is closed to new updates")
            self._submitted_groups += 1
            seq = self._submitted_groups
            # enqueue under the lock so queue order == sequence order
            self._queue.put((seq, group))
        self.metrics.record_submit(len(group))
        return seq

    def flush(self, timeout: Optional[float] = None) -> int:
        """Block until every group submitted so far is applied.

        Returns the applied-group count (== the version any subsequent
        read will see at minimum). Waits for the whole writer cycle —
        including the retired buffer's catch-up and the metrics record —
        so ``stats()`` after a flush reflects every awaited group.
        Raises on writer death or timeout.
        """
        with self._state_lock:
            target = self._submitted_groups
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._completed_groups < target:
                if self._writer_error is not None:
                    raise ServiceClosedError(
                        "service writer died"
                    ) from self._writer_error
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"flush timed out at {self._applied_groups}/"
                        f"{target} groups applied"
                    )
                self._state_lock.wait(remaining)
            return self._applied_groups

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting updates, drain the queue, stop the writer."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._writer.join(timeout)
        if self._writer.is_alive():
            raise TimeoutError("service writer did not stop in time")
        if self._writer_error is not None:
            raise ServiceClosedError(
                "service writer died"
            ) from self._writer_error

    def __enter__(self) -> "CubeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> Dict:
        """Operational snapshot: version, backlog, and metrics.

        Version and group counters are read in one ``_state_lock``
        acquisition (the lock is not reentrant, so this reads
        ``_front.version`` directly rather than via :attr:`version`), and
        the writer publishes the new snapshot and bumps
        ``_applied_groups`` under the same lock — the report is
        internally consistent: ``version <= groups_applied`` always.
        """
        with self._state_lock:
            version = self._front.version
            submitted = self._submitted_groups
            applied = self._applied_groups
        report = self.metrics.snapshot()
        report.update(
            version=version,
            groups_submitted=submitted,
            groups_applied=applied,
            groups_pending=submitted - applied,
        )
        return report

    # -- the writer ----------------------------------------------------------

    def _writer_loop(self) -> None:
        try:
            while True:
                try:
                    first = self._queue.get(timeout=self._poll_seconds)
                except queue.Empty:
                    with self._state_lock:
                        if (
                            self._closed
                            and self._applied_groups
                            == self._submitted_groups
                        ):
                            return
                    continue
                groups = [first]
                while len(groups) < self._max_groups:
                    try:
                        groups.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                self._apply_groups(groups)
        except BaseException as error:  # surface to readers/flushers
            with self._state_lock:
                self._writer_error = error
                self._state_lock.notify_all()

    def _apply_groups(self, groups) -> None:
        """One double-buffered write cycle over whole submitted groups."""
        start = time.perf_counter()
        cells = []
        raw = []
        for _, group in groups:
            for cell, delta in group:
                cells.append(cell)
                raw.append(delta)
        submitted = len(cells)
        # Coalesce per cell in one array pass: sort-unique the index
        # rows, segment-sum the deltas onto their unique row, and drop
        # cells whose deltas cancelled.
        if cells:
            idx = np.asarray(cells, dtype=np.intp)
            deltas = np.asarray(raw)
            unique, inverse = np.unique(idx, axis=0, return_inverse=True)
            summed = np.zeros(len(unique), dtype=deltas.dtype)
            # reshape(-1): inverse is (m, 1) on some numpy versions
            np.add.at(summed, inverse.reshape(-1), deltas)
            live = summed != 0
            indices = unique[live]
            deltas = summed[live]
        else:
            indices = np.empty((0, len(self.shape)), dtype=np.intp)
            deltas = np.empty(0)
        applied = len(indices)
        retired = self._front
        if applied:
            self._back.apply_batch_array(indices, deltas)
        fresh = _Snapshot(self._back, retired.version + len(groups))
        # Publish the snapshot and the applied-group counter in one
        # critical section so stats()/flush() never observe a version
        # ahead of groups_applied (or vice versa).
        self.metrics.record_apply_counts(submitted, applied)
        with self._state_lock:
            self._front = fresh
            self._applied_groups = groups[-1][0]
        # Wait out readers still pinned to the retired snapshot, then
        # catch it up off-line; it becomes the next cycle's back buffer.
        wait_start = time.perf_counter()
        with retired.cond:
            while retired.active:
                retired.cond.wait()
        swap_wait = time.perf_counter() - wait_start
        if applied:
            retired.method.apply_batch_array(indices, deltas)
        self._back = retired.method
        self.metrics.record_apply_latency(
            time.perf_counter() - start, swap_wait
        )
        with self._state_lock:
            self._completed_groups = groups[-1][0]
            self._state_lock.notify_all()

"""Snapshot-isolated, durable, fault-tolerant serving of a range-sum method.

The paper's structures are single-writer by construction: an update
cascades through shared arrays, so a reader that interleaves with it can
observe a half-applied state (a torn read). :class:`CubeService` makes
the trade the OLAP workload actually wants — heavy concurrent reads,
periodic batched writes — safe:

* **Readers** run against an immutable *snapshot*: a fully-built method
  instance that is never mutated while published. Any number of threads
  may query it concurrently (queries only read).
* **A single writer thread** drains queued deltas, coalesces them per
  cell with one array pass (``np.unique`` over the index rows plus a
  segment-summing scatter), applies them to the *back buffer* via the
  method's own ``apply_batch_array`` (so the RPS strategy planner —
  incremental, vectorized, or rebuild — still applies), and atomically
  swaps the back buffer in as the new snapshot.
* After the swap the writer waits for in-flight readers to drain off the
  retired snapshot, then replays the same batch onto it — classic
  double buffering: each batch is applied twice, but no reader ever
  sees a structure mid-cascade, and batch cost stays proportional to
  the batch (no per-batch rebuild).

Consistency contract: every read observes the state after some prefix
of the submitted update groups — never a partially applied group. Each
``submit_*`` call is one atomic group; the snapshot ``version`` equals
the number of groups processed, so ``query_many`` callers can correlate
results with an exact logical state.

On top of that, this layer makes the service *production-shaped*:

* **Durability** (:class:`~repro.serve.wal.DurabilityPolicy`): each
  submitted group is appended to a checksummed write-ahead log — and
  fsynced — *before* the submit call returns, checkpoints bound replay,
  and :meth:`CubeService.recover` restores the committed prefix after a
  crash (torn WAL tails are truncated, corrupt checkpoints fall back).
* **Overload control**: ``max_pending_groups`` bounds the submission
  backlog; a full queue raises
  :class:`~repro.errors.ServiceOverloadedError` after the caller's
  ``timeout`` instead of buffering without limit (pair with
  :mod:`repro.serve.retry` for jittered backoff).
* **Supervision**: a group whose ``apply_batch`` raises no longer kills
  the writer — the poisoned group is quarantined, the back buffer is
  rebuilt from the last published state, and serving continues.
  :meth:`self_check` verifies snapshot integrity on demand and rebuilds
  both buffers on a mismatch.
* **Fault injection** (:class:`~repro.faults.FaultPlan`): deterministic
  torn writes, write failures, latency spikes, and writer crashes for
  reproducible chaos tests.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import RangeSumMethod
from repro.deadline import Deadline
from repro.errors import (
    RecoveryError,
    ReproError,
    ServiceOverloadedError,
)
from repro.metrics.service import ServiceMetrics
from repro.serve import wal as wal_mod
from repro.serve.wal import DurabilityPolicy, WriteAheadLog


class ServiceClosedError(ReproError):
    """Raised when submitting to or querying a closed service."""


#: queue sentinel: wakes the writer immediately at close/abandon time
_CLOSE = object()


class _Rebuild:
    """Queue token asking the writer to rebuild both buffers in place."""

    __slots__ = ("event", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.error: Optional[BaseException] = None


class _Snapshot:
    """One published state: a method instance plus reader accounting.

    ``version`` is the number of update groups folded in. ``active`` is
    the count of in-flight reader calls; the writer mutates the instance
    only while it is unpublished *and* ``active == 0``.
    """

    __slots__ = ("method", "version", "active", "cond")

    def __init__(self, method: RangeSumMethod, version: int) -> None:
        self.method = method
        self.version = version
        self.active = 0
        self.cond = threading.Condition(threading.Lock())


class CubeService:
    """Serve one data cube to concurrent readers during batched writes.

    Args:
        method_cls: any :class:`~repro.core.base.RangeSumMethod`
            subclass; two instances are built (front and back buffer).
        array: the initial dense cube.
        method_kwargs: forwarded to both constructions (box sizes etc.).
        poll_seconds: writer heartbeat while idle. The writer blocks on
            the queue (submits and ``close()`` wake it immediately via
            the queue itself), so this only bounds how often an idle
            writer re-checks lifecycle state — it is not a busy-wait.
        max_groups_per_cycle: most queued groups merged into one
            ``apply_batch`` cycle (bounds swap latency under a firehose).
        durability: optional
            :class:`~repro.serve.wal.DurabilityPolicy`; when set, every
            submitted group is WAL-logged before it is acknowledged and
            checkpoints are written every ``checkpoint_every`` groups.
            Recover a crashed service's directory with :meth:`recover`.
        max_pending_groups: bound on submitted-but-unapplied groups;
            ``submit_batch`` blocks up to its ``timeout`` for space and
            then raises :class:`~repro.errors.ServiceOverloadedError`.
            ``None`` (default) keeps the queue unbounded.
        fault_plan: optional :class:`~repro.faults.FaultPlan` consulted
            by the WAL layer and the writer loop — deterministic chaos
            for tests.

    Use as a context manager, or call :meth:`close` explicitly — the
    writer is a daemon thread, but an orderly close drains the queue::

        with CubeService(RelativePrefixSumCube, cube) as svc:
            svc.submit_batch([((3, 4), +10), ((0, 1), -2)])
            svc.flush()
            total = svc.total()
    """

    def __init__(
        self,
        method_cls,
        array: np.ndarray,
        *,
        method_kwargs: Optional[Dict] = None,
        poll_seconds: float = 0.25,
        max_groups_per_cycle: int = 1024,
        durability: Optional[DurabilityPolicy] = None,
        max_pending_groups: Optional[int] = None,
        fault_plan=None,
        _initial_version: int = 0,
    ) -> None:
        kwargs = dict(method_kwargs or {})
        source = np.asarray(array)
        self._method_cls = method_cls
        self._method_kwargs = kwargs
        initial = int(_initial_version)
        self._front = _Snapshot(method_cls(source, **kwargs), version=initial)
        self._back = method_cls(source, **kwargs)
        self.shape = self._front.method.shape
        self.metrics = ServiceMetrics()
        self._poll_seconds = float(poll_seconds)
        self._max_groups = int(max_groups_per_cycle)
        self._max_pending = (
            None if max_pending_groups is None else int(max_pending_groups)
        )
        if self._max_pending is not None and self._max_pending < 1:
            raise ValueError(
                f"max_pending_groups must be >= 1, got {self._max_pending}"
            )
        self._faults = fault_plan
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._state_lock = threading.Condition(threading.Lock())
        self._submitted_groups = initial
        self._applied_groups = initial
        self._completed_groups = initial
        self._closed = False
        self._abandoned = False
        self._writer_exited = False
        self._writer_error: Optional[BaseException] = None
        self._quarantined: List[Tuple[int, str]] = []
        self._durability = durability
        self._wal: Optional[WriteAheadLog] = None
        self._last_checkpoint_seq = initial
        if durability is not None:
            self._open_durability(initial)
        self._writer = threading.Thread(
            target=self._writer_loop, name="cube-service-writer", daemon=True
        )
        self._writer.start()

    def _open_durability(self, initial: int) -> None:
        """Open the WAL, refuse stale directories, seed a checkpoint."""
        policy = self._durability
        self._wal = WriteAheadLog(
            policy.dir,
            segment_max_bytes=policy.segment_max_bytes,
            sync=policy.fsync,
            faults=self._faults,
            metrics=self.metrics,
        )
        on_disk = self._wal.next_seq - 1
        checkpoints = wal_mod.list_checkpoints(policy.dir)
        if checkpoints:
            on_disk = max(on_disk, checkpoints[-1][0])
        if on_disk > initial:
            self._wal.close()
            raise RecoveryError(
                f"{policy.dir!s} already holds state up to group {on_disk}; "
                f"opening a fresh service at version {initial} would orphan "
                f"it — use CubeService.recover() instead"
            )
        # Always (re)write the seed checkpoint, even when a file with
        # this sequence already exists: a leftover ckpt-<initial> from
        # an earlier, unrelated run (e.g. a ckpt-0 of a different
        # dataset) would otherwise be trusted and a later recovery
        # would silently restore foreign state. save_method's
        # write-temp-then-os.replace makes the overwrite crash-safe.
        wal_mod.write_checkpoint(self._front.method, policy.dir, initial)
        self.metrics.record_checkpoint()
        self._last_checkpoint_seq = initial
        wal_mod.prune_checkpoints(policy.dir, policy.keep_checkpoints)
        wal_mod.prune_wal(policy.dir, self._wal, policy.keep_checkpoints)

    # -- reader API ----------------------------------------------------------

    def _acquire(self) -> _Snapshot:
        """Pin the current snapshot against retirement while reading.

        Retry protocol: after registering on a snapshot, re-check that it
        is still published; the writer only mutates a snapshot once it is
        unpublished and its active count has hit zero, so a successful
        re-check guarantees the instance stays frozen until release.
        """
        while True:
            snap = self._front
            with snap.cond:
                snap.active += 1
            if snap is self._front:
                return snap
            self._release(snap)
            self.metrics.record_reader_retry()

    def _release(self, snap: _Snapshot) -> None:
        with snap.cond:
            snap.active -= 1
            if snap.active == 0:
                snap.cond.notify_all()

    def _read(self, fn):
        if self._writer_error is not None:
            raise ServiceClosedError(
                "service writer died"
            ) from self._writer_error
        start = time.perf_counter()
        snap = self._acquire()
        try:
            result = fn(snap.method)
            version = snap.version
        finally:
            self._release(snap)
        return result, version, time.perf_counter() - start

    def query_many(
        self, lows, highs
    ) -> Tuple[np.ndarray, int]:
        """Batched range sums plus the snapshot version that served them.

        The whole batch is answered by one snapshot — results are
        mutually consistent, and ``version`` names the exact logical
        state (number of update groups applied).
        """
        values, version, seconds = self._read(
            lambda m: m.range_sum_many(lows, highs)
        )
        self.metrics.record_read(seconds, len(values))
        return values, version

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched range sums against one consistent snapshot."""
        return self.query_many(lows, highs)[0]

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched prefix sums against one consistent snapshot."""
        values, _, seconds = self._read(
            lambda m: m.prefix_sum_many(targets)
        )
        self.metrics.record_read(seconds, len(values))
        return values

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """One range sum (snapshot-isolated like the batched calls)."""
        value, _, seconds = self._read(lambda m: m.range_sum(low, high))
        self.metrics.record_read(seconds, 1)
        return value

    def prefix_sum(self, target: Sequence[int]):
        """One prefix sum against the current snapshot."""
        value, _, seconds = self._read(lambda m: m.prefix_sum(target))
        self.metrics.record_read(seconds, 1)
        return value

    def cell_value(self, index: Sequence[int]):
        """One cell read against the current snapshot."""
        value, _, seconds = self._read(lambda m: m.cell_value(index))
        self.metrics.record_read(seconds, 1)
        return value

    def total(self):
        """Sum of the whole cube at the current snapshot."""
        value, _, seconds = self._read(lambda m: m.total())
        self.metrics.record_read(seconds, 1)
        return value

    @property
    def version(self) -> int:
        """Update groups visible to a reader acquiring a snapshot now."""
        with self._state_lock:
            return self._front.version

    @property
    def last_submitted_seq(self) -> int:
        """Sequence number of the newest submitted group (0 if none).

        On a freshly :meth:`recover`-ed service this equals the highest
        committed sequence replayed from the log — the cluster layer
        compares it against an in-flight group's expected sequence to
        decide whether a failed submit actually committed before it
        raised (and must not be resubmitted).
        """
        with self._state_lock:
            return self._submitted_groups

    # -- writer API ----------------------------------------------------------

    def submit_delta(
        self, index: Sequence[int], delta, *, timeout: Optional[float] = None
    ) -> int:
        """Queue one cell delta as its own atomic group; returns the
        group's sequence number (compare with :attr:`version`)."""
        return self.submit_batch([(index, delta)], timeout=timeout)

    def submit_batch(
        self,
        updates: Iterable[Tuple[Sequence[int], object]],
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Queue one atomic group of ``(index, delta)`` updates.

        The group is applied in a single ``apply_batch`` cycle — readers
        either see all of it or none of it. Returns the group's sequence
        number: once :attr:`version` reaches it, every read reflects it.

        With durability configured, the group is appended to the WAL
        (and fsynced, per the policy) *before* this method returns — a
        sequence number in hand means the group survives a crash.

        Args:
            updates: the ``(index, delta)`` pairs of the group.
            timeout: with a bounded queue (``max_pending_groups``), how
                long to wait for backlog space before raising
                :class:`~repro.errors.ServiceOverloadedError`; ``None``
                waits indefinitely.
        """
        pairs = [
            (tuple(int(c) for c in index), delta) for index, delta in updates
        ]
        # one conversion serves the WAL append AND the writer's apply —
        # the durability path must not re-pay the per-update Python loop
        if pairs:
            indices = np.asarray([cell for cell, _ in pairs], dtype=np.intp)
            deltas = np.asarray([delta for _, delta in pairs])
        else:
            indices = np.empty((0, len(self.shape)), dtype=np.intp)
            deltas = np.empty(0, dtype=np.int64)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._state_lock:
            while True:
                if self._writer_error is not None:
                    # Nothing enqueued now can ever be applied; failing
                    # the submit is the only honest answer.
                    raise ServiceClosedError(
                        "service writer died"
                    ) from self._writer_error
                if self._closed:
                    raise ServiceClosedError(
                        "service is closed to new updates"
                    )
                pending = self._submitted_groups - self._completed_groups
                if self._max_pending is None or pending < self._max_pending:
                    break
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ServiceOverloadedError(
                        f"submission queue full ({pending} groups pending, "
                        f"limit {self._max_pending}); back off and retry"
                    )
                self._state_lock.wait(remaining)
            seq = self._submitted_groups + 1
            if self._wal is not None:
                # Written (buffered) under the lock so append order ==
                # sequence order == queue order. The expensive fsync
                # happens below, outside the lock — the commit point is
                # still before the ack, but readers, stats(), and the
                # writer's publish path never serialize behind the disk.
                self._wal.append(seq, indices, deltas, sync=False)
            self._submitted_groups = seq
            # enqueue under the lock so queue order == sequence order
            self._queue.put((seq, indices, deltas))
        if self._wal is not None:
            # Group commit: concurrent submitters share one fsync. On
            # an fsync failure this raises — the group is not acked and
            # the poisoned log refuses further appends (read-only
            # degradation), though the unacknowledged group may still
            # be applied in memory; either surviving or vanishing at
            # recovery respects the acked-prefix contract.
            self._wal.sync_upto(seq)
        self.metrics.record_submit(len(pairs))
        return seq

    def flush(self, timeout: Optional[float] = None) -> int:
        """Block until every group submitted so far is applied.

        Returns the applied-group count (== the version any subsequent
        read will see at minimum). Waits for the whole writer cycle —
        including the retired buffer's catch-up and the metrics record —
        so ``stats()`` after a flush reflects every awaited group.
        Raises on writer death, writer exit with the awaited groups
        still unapplied (``abandon()`` racing the wait), or timeout.
        """
        with self._state_lock:
            target = self._submitted_groups
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._completed_groups < target:
                if self._writer_error is not None:
                    raise ServiceClosedError(
                        "service writer died"
                    ) from self._writer_error
                if self._writer_exited:
                    # the writer is gone for good (abandon, or a close
                    # that discarded the queue): the awaited groups will
                    # never complete, so fail now rather than sleeping
                    # out the caller's timeout
                    raise ServiceClosedError(
                        f"service writer exited with "
                        f"{self._completed_groups}/{target} groups "
                        f"completed"
                    )
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    # report the count the wait condition actually
                    # tracks — _applied_groups can run ahead of it by
                    # one in-flight cycle
                    raise TimeoutError(
                        f"flush timed out at {self._completed_groups}/"
                        f"{target} groups completed"
                    )
                self._state_lock.wait(remaining)
            return self._applied_groups

    # -- health --------------------------------------------------------------

    def snapshot_digest(self) -> Tuple[int, str]:
        """``(version, sha256)`` of the published snapshot's dense array.

        The digest covers the reconstructed values plus shape and dtype,
        so two services hold identical logical state *iff* their digests
        match at equal versions. This is the anti-entropy hook the
        cluster scrubber compares across replicas; it reads through the
        normal snapshot pin, so it is safe against concurrent writes.
        """
        import hashlib

        def digest(method: RangeSumMethod) -> str:
            array = np.ascontiguousarray(method.to_array())
            h = hashlib.sha256()
            h.update(str(array.shape).encode())
            h.update(str(array.dtype).encode())
            h.update(array.tobytes())
            return h.hexdigest()

        value, version, seconds = self._read(digest)
        self.metrics.record_read(seconds, 1)
        return version, value

    def snapshot_array(self) -> Tuple[np.ndarray, int]:
        """``(dense array copy, version)`` of the published snapshot.

        Reads through the normal snapshot pin like
        :meth:`snapshot_digest`; the cluster's reshard path uses it to
        seed degraded-read aggregates and verify migrated slabs against
        their sources without reaching into method internals.
        """
        array, version, seconds = self._read(
            lambda method: np.array(method.to_array(), copy=True)
        )
        self.metrics.record_read(seconds, 1)
        return array, version

    def quarantined_groups(self) -> Tuple[Tuple[int, str], ...]:
        """Poisoned groups skipped by supervision: ``(seq, error)``."""
        with self._state_lock:
            return tuple(self._quarantined)

    def self_check(
        self,
        probes: int = 16,
        seed: int = 0,
        repair: bool = True,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict:
        """Verify the published snapshot; optionally repair a bad one.

        Samples ``probes`` random range sums on the current snapshot and
        checks them against its own reconstructed array (the method's
        :meth:`~repro.core.base.RangeSumMethod.verify` invariant). On a
        mismatch with ``repair=True``, the writer rebuilds both buffers
        from the reconstructed array and the check runs again.

        Args:
            probes: sampled range sums per verification pass.
            seed: seeds the probe sampler.
            repair: rebuild both buffers on a failed check.
            timeout: how long to wait for the writer to finish the
                repair rebuild before raising :class:`TimeoutError`
                (default 300 s — a rebuild behind a deep backlog is
                still a rebuild, but a caller with its own budget, like
                the cluster scrubber, should pass a tighter bound).
            deadline: optional :class:`~repro.deadline.Deadline` that
                caps ``timeout`` to the caller's remaining budget.

        Returns a report dict: ``ok`` (final verdict), ``version``,
        ``repaired``, and ``error`` (the first failure message, if any).
        For the stronger guarantee — rebuilding from the durable log
        instead of the in-memory state — stop the service and use
        :meth:`recover`.
        """
        report = {"ok": True, "version": 0, "repaired": False, "error": None}

        def check() -> bool:
            values, version, _ = self._read(
                lambda m: m.verify(probes=probes, seed=seed)
            )
            report["version"] = version
            return True

        try:
            check()
            return report
        except ServiceClosedError:
            raise
        except ReproError as err:
            report["ok"] = False
            report["error"] = str(err)
        if not repair:
            return report
        with self._state_lock:
            if self._closed or self._writer_error is not None:
                return report
        if deadline is not None:
            wait = deadline.bound(timeout)
        elif timeout is not None:
            wait = float(timeout)
        else:
            wait = 300.0
        token = _Rebuild()
        self._queue.put(token)
        start = time.monotonic()
        if not token.event.wait(timeout=wait):
            elapsed = time.monotonic() - start
            raise TimeoutError(
                f"snapshot rebuild did not complete within {wait:.3f}s "
                f"(waited {elapsed:.3f}s at version {report['version']})"
            )
        if token.error is not None:
            return report
        try:
            check()
            report["ok"] = True
            report["repaired"] = True
        except ReproError as err:
            report["error"] = str(err)
        return report

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting updates, drain the queue, stop the writer.

        With durability configured, a final checkpoint is written and
        the WAL pruned, so the next open replays nothing.
        """
        with self._state_lock:
            already = self._closed
            self._closed = True
        if not already:
            self._queue.put(_CLOSE)  # wake the writer immediately
        self._writer.join(timeout)
        if self._writer.is_alive():
            raise TimeoutError("service writer did not stop in time")
        if self._writer_error is not None:
            if self._wal is not None:
                self._wal.close()
            raise ServiceClosedError(
                "service writer died"
            ) from self._writer_error
        if self._wal is not None and not self._abandoned:
            with self._state_lock:
                completed = self._completed_groups
            if completed > self._last_checkpoint_seq:
                self._write_checkpoint(self._back, completed)
            self._wal.close()

    def abandon(self) -> None:
        """Crash-simulation hook: stop serving *without* draining.

        Queued groups are discarded, no final checkpoint is written, and
        the WAL handle is closed without a sync — the durability
        directory is left exactly as a power loss would leave it, which
        is what :meth:`recover` and the chaos tests need. The in-memory
        service is unusable afterwards.
        """
        with self._state_lock:
            self._closed = True
            self._abandoned = True
        self._queue.put(_CLOSE)
        self._writer.join(timeout=10.0)
        if self._wal is not None:
            self._wal.close(sync=False)

    def __enter__(self) -> "CubeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> Dict:
        """Operational snapshot: version, backlog, health, and metrics.

        Version and group counters are read in one ``_state_lock``
        acquisition (the lock is not reentrant, so this reads
        ``_front.version`` directly rather than via :attr:`version`), and
        the writer publishes the new snapshot and bumps
        ``_applied_groups`` under the same lock — the report is
        internally consistent: ``version <= groups_applied`` always.
        """
        with self._state_lock:
            version = self._front.version
            submitted = self._submitted_groups
            applied = self._applied_groups
            completed = self._completed_groups
            quarantined = len(self._quarantined)
        report = self.metrics.snapshot()
        report.update(
            version=version,
            groups_submitted=submitted,
            groups_applied=applied,
            groups_pending=submitted - applied,
            # the true submission backlog: groups the writer has not
            # fully cycled yet (including the retired buffer's catch-up)
            # — what a health monitor or dashboard should alarm on,
            # without reaching into private counters
            queue_depth=submitted - completed,
            wal_bytes_written=report["wal_bytes"],
            quarantined_groups=quarantined,
            wal_enabled=self._wal is not None,
            wal_failed=self._wal.failed if self._wal is not None else False,
            last_checkpoint_seq=(
                self._last_checkpoint_seq if self._wal is not None else None
            ),
        )
        return report

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory,
        method_cls=None,
        *,
        method_kwargs: Optional[Dict] = None,
        durability: Optional[DurabilityPolicy] = None,
        **service_kwargs,
    ) -> "CubeService":
        """Restore a service from a durability directory after a crash.

        Loads the newest valid checkpoint (a corrupt one falls back to
        the previous), truncates any torn WAL tail, replays every
        committed group past the checkpoint through ``apply_batch``, and
        resumes serving at the recovered ``version`` — appending new
        groups to the same log. The recovered state is always the state
        after some prefix of the acknowledged groups: never a torn
        group, never a lost acked-and-fsynced one.

        Args:
            directory: the durability directory of the dead service.
            method_cls: optionally rebuild under a different method
                class than the checkpoint recorded.
            method_kwargs: forwarded to method construction (defaults to
                the persisted box sizes, when the method has them).
            durability: policy for the resumed service (defaults to
                ``DurabilityPolicy(dir=directory)``).
            **service_kwargs: forwarded to the constructor
                (``max_pending_groups``, ``fault_plan``...).
        """
        state = wal_mod.recover_state(
            directory, method_cls, method_kwargs=method_kwargs
        )
        method = state.method
        kwargs = method_kwargs
        if kwargs is None:
            box_sizes = getattr(method, "box_sizes", None)
            kwargs = {"box_size": box_sizes} if box_sizes is not None else {}
        if durability is None:
            durability = DurabilityPolicy(dir=directory)
        service = cls(
            type(method),
            method.to_array(),
            method_kwargs=kwargs,
            durability=durability,
            _initial_version=state.version,
            **service_kwargs,
        )
        service.metrics.record_recovery_replay(state.replayed_groups)
        if state.quarantined:
            service.metrics.record_quarantine(len(state.quarantined))
            with service._state_lock:
                service._quarantined.extend(state.quarantined)
        service.last_recovery = state
        return service

    # -- the writer ----------------------------------------------------------

    def _writer_loop(self) -> None:
        try:
            while True:
                try:
                    first = self._queue.get(timeout=self._poll_seconds)
                except queue.Empty:
                    with self._state_lock:
                        if (
                            self._closed
                            and self._applied_groups
                            == self._submitted_groups
                        ):
                            return
                    continue
                if self._abandoned:
                    return
                if first is _CLOSE:
                    with self._state_lock:
                        if (
                            self._applied_groups == self._submitted_groups
                        ):
                            return
                    continue
                if isinstance(first, _Rebuild):
                    self._handle_rebuild(first)
                    continue
                groups = [first]
                deferred = None
                while len(groups) < self._max_groups:
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if item is _CLOSE or isinstance(item, _Rebuild):
                        deferred = item
                        break
                    groups.append(item)
                self._apply_groups(groups)
                self._maybe_checkpoint()
                if deferred is not None:
                    if isinstance(deferred, _Rebuild):
                        self._handle_rebuild(deferred)
                    else:
                        # consumed the close sentinel early: re-queue it
                        # behind any groups still waiting
                        self._queue.put(_CLOSE)
        except BaseException as error:  # surface to readers/flushers
            self.metrics.record_writer_error()
            with self._state_lock:
                self._writer_error = error
                self._state_lock.notify_all()
        finally:
            # every exit path (clean drain, abandon, death) wakes
            # blocked flush()/submit_batch() waiters so they can fail
            # promptly instead of sleeping out their timeouts
            with self._state_lock:
                self._writer_exited = True
                self._state_lock.notify_all()

    @staticmethod
    def _coalesce(
        idx: np.ndarray, deltas: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge per-cell deltas in one array pass: sort-unique the index
        rows, segment-sum the deltas onto their unique row, and drop
        cells whose deltas cancelled."""
        if not len(idx):
            return idx, deltas
        unique, inverse = np.unique(idx, axis=0, return_inverse=True)
        summed = np.zeros(len(unique), dtype=deltas.dtype)
        # reshape(-1): inverse is (m, 1) on some numpy versions
        np.add.at(summed, inverse.reshape(-1), deltas)
        live = summed != 0
        return unique[live], summed[live]

    def _apply_groups(self, groups) -> None:
        """One double-buffered write cycle over whole submitted groups.

        Supervised: an ``apply_batch`` failure quarantines the poisoned
        group(s) and rebuilds the buffers instead of killing the writer.
        """
        if self._faults is not None:
            extra = 0.0
            for seq, _, _ in groups:
                # an injected writer crash propagates — that is the point
                extra += self._faults.on_apply_group(seq)
            if extra:
                time.sleep(extra)
        if self._wal is not None:
            # Publish-durability barrier: submitters enqueue before they
            # fsync (group commit), so make the batch durable before any
            # reader can observe it — a crash must never lose a state
            # some read already saw. On a poisoned log the submitter
            # already got the failure; apply the unacked tail
            # best-effort and keep serving.
            try:
                self._wal.sync_upto(groups[-1][0])
            except ReproError:
                pass
        start = time.perf_counter()
        merged_idx = np.concatenate([idx for _, idx, _ in groups])
        merged_deltas = np.concatenate([d for _, _, d in groups])
        submitted = len(merged_idx)
        indices, deltas = self._coalesce(merged_idx, merged_deltas)
        applied = len(indices)
        retired = self._front
        rebuilt = False
        try:
            if applied:
                self._back.apply_batch_array(indices, deltas)
            fresh_method = self._back
        except Exception:
            # the back buffer may be mid-cascade: discard it, rebuild
            # from the last published state, and skip only the groups
            # that actually fail on their own
            self.metrics.record_writer_error()
            fresh_method = self._rebuild_with_quarantine(groups)
            rebuilt = True
        fresh = _Snapshot(fresh_method, retired.version + len(groups))
        # Publish the snapshot and the applied-group counter in one
        # critical section so stats()/flush() never observe a version
        # ahead of groups_applied (or vice versa).
        self.metrics.record_apply_counts(submitted, applied)
        with self._state_lock:
            self._front = fresh
            self._applied_groups = groups[-1][0]
        # Wait out readers still pinned to the retired snapshot, then
        # catch it up off-line; it becomes the next cycle's back buffer.
        wait_start = time.perf_counter()
        with retired.cond:
            while retired.active:
                retired.cond.wait()
        swap_wait = time.perf_counter() - wait_start
        if rebuilt:
            # the retired buffer cannot replay a quarantined group
            # either; rebuild it from the freshly published state
            self._back = self._method_cls(
                fresh_method.to_array(), **self._method_kwargs
            )
        else:
            if applied:
                retired.method.apply_batch_array(indices, deltas)
            self._back = retired.method
        self.metrics.record_apply_latency(
            time.perf_counter() - start, swap_wait
        )
        with self._state_lock:
            self._completed_groups = groups[-1][0]
            self._state_lock.notify_all()

    def _rebuild_with_quarantine(self, groups) -> RangeSumMethod:
        """Re-apply a failed cycle group-by-group on a fresh buffer.

        The last published snapshot is the rollback point: its array is
        rebuilt into a new method instance, each group is applied alone,
        and a group that still fails is quarantined — recorded, counted,
        and skipped — so one poisoned group cannot take the service
        down. Mirrors the replay-side quarantine in
        :func:`repro.serve.wal.recover_state`.
        """
        base = self._front.method.to_array()
        method = self._method_cls(base, **self._method_kwargs)
        self.metrics.record_rebuild()
        for seq, indices, deltas in groups:
            if not len(indices):
                continue
            try:
                method.apply_batch_array(indices, deltas)
            except Exception as error:
                with self._state_lock:
                    self._quarantined.append((seq, repr(error)))
                self.metrics.record_quarantine()
        return method

    def _handle_rebuild(self, token: _Rebuild) -> None:
        """Rebuild both buffers from the published snapshot's array."""
        try:
            retired = self._front
            array = retired.method.to_array()
            fresh = _Snapshot(
                self._method_cls(array, **self._method_kwargs),
                retired.version,
            )
            self.metrics.record_rebuild()
            with self._state_lock:
                self._front = fresh
            with retired.cond:
                while retired.active:
                    retired.cond.wait()
            self._back = self._method_cls(array, **self._method_kwargs)
        except BaseException as error:
            token.error = error
            self.metrics.record_writer_error()
        finally:
            token.event.set()

    def _maybe_checkpoint(self) -> None:
        """Periodic checkpoint from the caught-up back buffer."""
        if self._wal is None:
            return
        every = self._durability.checkpoint_every
        if every <= 0:
            return
        with self._state_lock:
            completed = self._completed_groups
        if completed - self._last_checkpoint_seq < every:
            return
        self._write_checkpoint(self._back, completed)

    def _write_checkpoint(self, method: RangeSumMethod, seq: int) -> None:
        """Best-effort checkpoint + prune; failures degrade, not kill —
        the WAL still holds everything since the last good checkpoint."""
        policy = self._durability
        try:
            wal_mod.write_checkpoint(method, policy.dir, seq)
            self._last_checkpoint_seq = seq
            self.metrics.record_checkpoint()
            wal_mod.prune_checkpoints(policy.dir, policy.keep_checkpoints)
            wal_mod.prune_wal(policy.dir, self._wal, policy.keep_checkpoints)
        except Exception:
            self.metrics.record_writer_error()

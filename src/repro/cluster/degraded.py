"""Degraded reads: bounded-error answers when a shard cannot respond.

The cluster's default contract is *exact or error*: a query that spans
an unreachable shard raises :class:`~repro.errors.ClusterUnavailableError`.
Buccafurri et al. (PAPERS.md) argue the alternative for OLAP serving —
answer from coarse aggregates with an explicit error bound — and this
module supplies the aggregates and the bound.

Per shard the cluster maintains a :class:`SlabSummary`: a coarse block
grid over the slab with, per block, the **exact block total** ``T`` and
an **absolute-mass bound** ``A`` (the sum of ``|cell|`` of the seed
array plus ``|delta|`` of every acknowledged update — an upper bound on
``sum(|cells|)`` that only loosens under cancellation, never tightens
below the truth). Both are O(1) to maintain per update delta and cheap
enough to rebuild exactly at a reshard flip.

For a query sub-box over a degraded shard:

* blocks the box covers **fully** contribute ``T`` exactly;
* a block it covers **partially** contributes some sub-sum ``p``. Two
  hard facts bound ``p`` with no distributional assumption: the covered
  cells satisfy ``|p| <= A``, and the complement (also cells of the
  block) satisfies ``|T - p| <= A``. Intersecting,
  ``p ∈ [max(-A, T - A), min(A, T + A)]``.

The point estimate spreads each partial block's total by its covered
volume fraction (the uniform-spread model of the estimation
literature); the returned ``[low, high]`` interval is the *guaranteed*
hull above, padded by a relative float epsilon, so the true acked sum
always lies inside it. ``confidence`` is therefore reported as 1.0 —
these are deterministic bounds, stronger than any probabilistic level a
caller requests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ClusterError

#: relative padding applied to interval endpoints so float accumulation
#: error can never push the true sum outside the guaranteed hull
_EPS = 1e-9


@dataclass(frozen=True)
class RangeEstimate:
    """Provenance of one degraded (estimated) answer.

    Attributes:
        estimate: always ``True`` — the explicit marker the wire and
            router surfaces propagate.
        value: the point estimate (exact partials plus uniform-spread
            block contributions).
        low/high: guaranteed interval containing the true acked sum.
        confidence: the level the interval holds at (1.0: the bounds
            are deterministic, not sampled).
        degraded_shards: shards answered from aggregates rather than
            replicas.
        epoch: the shard-map epoch the estimate was computed under.
    """

    value: float
    low: float
    high: float
    confidence: float
    degraded_shards: Tuple[int, ...]
    epoch: int
    estimate: bool = True

    def to_wire(self) -> Dict:
        """JSON-representable form for the net protocol."""
        return {
            "estimate": True,
            "value": self.value,
            "low": self.low,
            "high": self.high,
            "confidence": self.confidence,
            "degraded_shards": list(self.degraded_shards),
            "epoch": self.epoch,
        }

    @classmethod
    def from_wire(cls, payload: Dict) -> "RangeEstimate":
        return cls(
            value=float(payload["value"]),
            low=float(payload["low"]),
            high=float(payload["high"]),
            confidence=float(payload["confidence"]),
            degraded_shards=tuple(
                int(s) for s in payload.get("degraded_shards", ())
            ),
            epoch=int(payload.get("epoch", 0)),
        )

    def contains(self, truth: float) -> bool:
        return self.low <= float(truth) <= self.high


class SlabSummary:
    """Block-grid aggregates for one shard's slab.

    Args:
        array: the slab's current dense state (copied into block sums).
        blocks_per_axis: target block count per axis (clamped to the
            axis length).
    """

    def __init__(self, array: np.ndarray, blocks_per_axis: int = 8) -> None:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim < 1:
            raise ClusterError("slab summary needs an array, not a scalar")
        self.shape = array.shape
        self.edges: List[np.ndarray] = [
            np.linspace(
                0, n, min(int(n), int(blocks_per_axis)) + 1, dtype=np.intp
            )
            for n in self.shape
        ]
        sums = array
        mass = np.abs(array)
        for axis, edges in enumerate(self.edges):
            sums = np.add.reduceat(sums, edges[:-1], axis=axis)
            mass = np.add.reduceat(mass, edges[:-1], axis=axis)
        self.block_sums = np.ascontiguousarray(sums)
        self.block_mass = np.ascontiguousarray(mass)

    def _block_of(self, cell: Sequence[int]) -> Tuple[int, ...]:
        return tuple(
            int(np.searchsorted(edges, int(c), side="right") - 1)
            for c, edges in zip(cell, self.edges)
        )

    def apply(self, updates: Sequence[Tuple[Sequence[int], object]]) -> None:
        """Fold one acknowledged local update group into the blocks."""
        for cell, delta in updates:
            block = self._block_of(cell)
            delta = float(delta)
            self.block_sums[block] += delta
            self.block_mass[block] += abs(delta)

    def _axis_fractions(self, axis: int, lo: int, hi: int) -> np.ndarray:
        """Covered fraction of each block along ``axis`` for the
        inclusive local range ``[lo, hi]``."""
        edges = self.edges[axis]
        starts = edges[:-1].astype(np.float64)
        stops = edges[1:].astype(np.float64)
        overlap = np.minimum(stops, hi + 1) - np.maximum(starts, lo)
        return np.clip(overlap, 0.0, None) / (stops - starts)

    def estimate_box(
        self, low: Sequence[int], high: Sequence[int]
    ) -> Tuple[float, float, float]:
        """``(estimate, low, high)`` for the inclusive local box.

        ``[low, high]`` is the guaranteed hull: fully covered blocks
        contribute their exact totals; partially covered blocks
        contribute ``[max(-A, T - A), min(A, T + A)]``.
        """
        coverage = np.ones((), dtype=np.float64)
        for axis, (lo, hi) in enumerate(zip(low, high)):
            frac = self._axis_fractions(axis, int(lo), int(hi))
            shape = [1] * len(self.shape)
            shape[axis] = len(frac)
            coverage = coverage * frac.reshape(shape)
        coverage = np.broadcast_to(
            coverage, self.block_sums.shape
        )
        estimate = float(np.sum(coverage * self.block_sums))
        full = coverage >= 1.0
        partial = (coverage > 0.0) & ~full
        exact = float(np.sum(self.block_sums[full]))
        totals = self.block_sums[partial]
        mass = self.block_mass[partial]
        lo_sum = exact + float(
            np.sum(np.maximum(-mass, totals - mass))
        )
        hi_sum = exact + float(np.sum(np.minimum(mass, totals + mass)))
        pad = _EPS * (
            1.0 + abs(lo_sum) + abs(hi_sum) + float(np.sum(mass))
        )
        return estimate, lo_sum - pad, hi_sum + pad


class ShardAggregates:
    """Per-shard :class:`SlabSummary` registry for one cluster.

    Thread-safe: acked writes fold in concurrently with degraded reads,
    and a reshard flip atomically replaces migrated shards' summaries
    (rebuilt exactly from the new primaries' arrays).
    """

    def __init__(
        self,
        shardmap,
        array: Optional[np.ndarray] = None,
        *,
        blocks_per_axis: int = 8,
    ) -> None:
        self._lock = threading.Lock()
        self.blocks_per_axis = int(blocks_per_axis)
        self._summaries: Dict[int, SlabSummary] = {}
        if array is not None:
            array = np.asarray(array)
            for shard in range(shardmap.num_shards):
                self._summaries[shard] = SlabSummary(
                    shardmap.subarray(array, shard),
                    blocks_per_axis=self.blocks_per_axis,
                )

    def apply(
        self,
        shard: int,
        updates: Sequence[Tuple[Sequence[int], object]],
    ) -> None:
        """Fold one acked local group of ``shard`` into its summary."""
        with self._lock:
            summary = self._summaries.get(int(shard))
            if summary is not None:
                summary.apply(updates)

    def rebuild(self, per_shard_arrays: Dict[int, np.ndarray]) -> None:
        """Replace the summaries for a new topology, exactly.

        Called under the cluster's topology lock at a reshard flip (or
        rollback) with every shard's primary array, so post-flip
        estimates are seeded from truth rather than carried over from a
        layout that no longer exists.
        """
        fresh = {
            int(shard): SlabSummary(
                arr, blocks_per_axis=self.blocks_per_axis
            )
            for shard, arr in per_shard_arrays.items()
        }
        with self._lock:
            self._summaries = fresh

    def estimate_boxes(
        self,
        shard: int,
        lows: Sequence[Sequence[int]],
        highs: Sequence[Sequence[int]],
    ) -> List[Tuple[float, float, float]]:
        """``(estimate, low, high)`` per local box of ``shard``; raises
        :class:`ClusterError` when the shard has no summary."""
        with self._lock:
            summary = self._summaries.get(int(shard))
            if summary is None:
                raise ClusterError(
                    f"no aggregates for shard {shard}: cannot estimate"
                )
            return [
                summary.estimate_box(lo, hi)
                for lo, hi in zip(lows, highs)
            ]

    def shards(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._summaries))


__all__ = ["RangeEstimate", "ShardAggregates", "SlabSummary"]

"""One shard's replica group: hedged reads, forwarded writes, failover.

**Reads** fan out across the replicas with *hedging* (Dean & Barroso,
"The Tail at Scale"): launch the request on one node, and if it has not
answered within an adaptive delay — the observed latency percentile of
recent shard reads — launch it on a second node and take whichever
answers first. The slow request is not cancelled (it finishes
harmlessly); the tail latency a straggling replica would have imposed
is. The delay adapts via :class:`HedgePolicy` from the cluster's own
:class:`~repro.metrics.service.LatencyRecorder`, so hedging stays rare
(~the chosen percentile) by construction. Replication is asynchronous
past the ack (``submit_batch`` queues the forwarded group), so before
an arm answers, a node whose snapshot trails the shard's last
acknowledged group first waits for its own writer to catch up — every
acked group is already queued on every non-lagging node by the time
the ack is visible — and a node that *cannot* catch up fails the arm
rather than serving a stale snapshot.

**Writes** go to the primary, whose service WAL-logs and fsyncs the
group *before* acknowledging; only then is the group forwarded to the
replicas, which apply the identical local group through their own
``submit_batch`` and must come back with the identical sequence number.
A replica that misses or misorders a forward is marked ``lagging`` and
excluded from reads until :meth:`ReplicaSet.resync` rebuilds it from the
primary's durable log — the same
:func:`~repro.serve.wal.recover_state` path crash recovery uses, so
there is exactly one replay implementation to trust.

**Failover** is the durability payoff: because acks happen only after
the primary's fsync, promoting a replica never trusts replica memory.
The old primary is fenced (its service abandoned, WAL handle closed),
and the promoted node *recovers from the dead primary's WAL directory*
via :meth:`CubeService.recover` — every acknowledged group is replayed,
so an ack survives the primary's death even if no replica ever saw the
forward. Zero acked-group loss, by the same argument as single-node
crash recovery.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Executor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.node import NODE_FAILURES, ClusterNode
from repro.deadline import Deadline
from repro.errors import (
    ClusterError,
    ClusterUnavailableError,
    NodeUnavailableError,
    ReproError,
)
from repro.serve import wal as wal_mod
from repro.serve.service import CubeService


@dataclass(frozen=True)
class HedgePolicy:
    """When to launch the second read of a hedged pair.

    Args:
        quantile: latency percentile (0–100) of recent shard reads used
            as the hedge delay — requests slower than this get a second
            arm. 95 hedges ~5% of reads, the classic operating point.
        initial_delay_s: delay used until ``min_samples`` reads have
            been observed (cold cluster).
        min_delay_s: floor, so a burst of very fast reads cannot drive
            the delay to zero and turn every read into two.
        min_samples: observations required before trusting the
            percentile.
    """

    quantile: float = 95.0
    initial_delay_s: float = 0.05
    min_delay_s: float = 0.001
    min_samples: int = 16

    def __post_init__(self):
        if not 0.0 <= self.quantile <= 100.0:
            raise ValueError(f"quantile must be in [0, 100]: {self.quantile}")
        if self.initial_delay_s < 0 or self.min_delay_s < 0:
            raise ValueError("hedge delays must be non-negative")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {self.min_samples}")

    def delay(self, recorder) -> float:
        """Current hedge delay given the shard-read latency recorder."""
        if recorder.count < self.min_samples:
            return self.initial_delay_s
        return max(self.min_delay_s, recorder.percentile(self.quantile))


class ReplicaSet:
    """The replicas of one shard, exactly one of which is primary.

    Args:
        shard_id: which slab of the cube this group serves.
        nodes: the member :class:`ClusterNode` s; ``nodes[0]`` starts as
            primary and must own a durability directory.
        metrics: the cluster's shared
            :class:`~repro.metrics.cluster.ClusterMetrics`.
        executor: shared thread pool for hedged read arms.
        breakers: ``{node_id: CircuitBreaker}`` shared with the monitor.
        hedge: hedge-delay policy (``None`` for defaults).
    """

    def __init__(
        self,
        shard_id: int,
        nodes: Sequence[ClusterNode],
        *,
        metrics,
        executor: Executor,
        breakers: Dict[str, object],
        hedge: Optional[HedgePolicy] = None,
    ) -> None:
        if not nodes:
            raise ClusterError(f"shard {shard_id} has no nodes")
        self.shard_id = int(shard_id)
        self.nodes: List[ClusterNode] = list(nodes)
        self.metrics = metrics
        self._executor = executor
        self._breakers = breakers
        self.hedge = hedge or HedgePolicy()
        # Reentrant: failover() runs inside submit()'s locked section.
        self._lock = threading.RLock()
        self._rotation = 0
        # Highest sequence number acknowledged to a caller; reads must
        # never observe a snapshot older than this (read-after-ack).
        self._last_acked = nodes[0].service.version
        self.nodes[0].is_primary = True
        if self.nodes[0].durability_dir is None:
            raise ClusterError(
                f"shard {shard_id}: primary {self.nodes[0].node_id} has no "
                "durability directory — failover needs a WAL to recover from"
            )

    @property
    def primary(self) -> ClusterNode:
        with self._lock:
            for node in self.nodes:
                if node.is_primary:
                    return node
        raise ClusterUnavailableError(f"shard {self.shard_id} has no primary")

    @property
    def last_acked(self) -> int:
        """Highest sequence number acknowledged to a caller — the floor
        below which no read on this shard may be served."""
        with self._lock:
            return self._last_acked

    def _breaker(self, node: ClusterNode):
        return self._breakers[node.node_id]

    # -- reads ---------------------------------------------------------------

    def _read_candidates(self) -> Tuple[List[ClusterNode], int]:
        """``(candidates, acked)``: read-eligible nodes plus the floor.

        Candidates come preferred order first — primary, then
        non-lagging replicas rotated so hedge load spreads;
        breaker-open nodes are filtered out, but if *everything* is
        filtered the full list is returned as a last resort — a wrong
        answer is impossible (replicas are exact or excluded), only an
        error is. ``acked`` is the shard's last acknowledged sequence
        number, read under the same lock: no answer may come from a
        snapshot older than it.
        """
        with self._lock:
            primary = self.primary
            acked = self._last_acked
            replicas = [
                n
                for n in self.nodes
                if not n.is_primary and not n.dead and not n.lagging
            ]
            if replicas:
                pivot = self._rotation % len(replicas)
                self._rotation += 1
                replicas = replicas[pivot:] + replicas[:pivot]
            ordered = [primary] + replicas
        allowed = [n for n in ordered if self._breaker(n).allow() and not n.dead]
        return (allowed or ordered), acked

    def read(self, op: str, args: Tuple, deadline: Optional[Deadline] = None):
        """Hedged read: ``op(*args)`` on one replica, two if it lags.

        Launches the preferred candidate, waits up to the adaptive hedge
        delay, launches the next candidate if the first has not
        answered, and returns the first successful result. A failed arm
        feeds its node's breaker and the next candidate is launched
        immediately. Read-after-ack: an arm whose snapshot trails the
        shard's last acknowledged group waits for its node's writer to
        drain (every acked group is queued on every non-lagging node
        before the ack is visible) and fails rather than answer below
        that floor, so no result ever predates an acknowledged write.
        Raises :class:`ClusterUnavailableError` when every candidate
        fails, :class:`~repro.errors.DeadlineExceededError` when the
        budget expires first — never a partial answer, never one
        missing an acked group.
        """
        candidates, acked = self._read_candidates()
        hedge_delay = self.hedge.delay(self.metrics.read_latency)

        def arm(node: ClusterNode):
            start = time.perf_counter()
            if node.service.version < acked:
                # the missing groups are already queued (forwarding
                # precedes the ack) — wait out the node's writer
                budget = None if deadline is None else deadline.bound(None)
                node.service.flush(timeout=budget)
                if node.service.version < acked:
                    raise NodeUnavailableError(
                        f"node {node.node_id} snapshot "
                        f"v{node.service.version} predates acked v{acked}"
                    )
            result = getattr(node, op)(*args)
            return node, result, time.perf_counter() - start

        pending = {}
        launched = 0
        hedged = False
        errors: List[str] = []

        def launch_next() -> bool:
            nonlocal launched
            if launched >= len(candidates):
                return False
            node = candidates[launched]
            launched += 1
            pending[self._executor.submit(arm, node)] = node
            return True

        launch_next()
        while pending:
            if deadline is not None and deadline.expired:
                self.metrics.record_deadline_exceeded()
                deadline.check(f"shard {self.shard_id} read")
            # Until the hedge fires, wait only hedge_delay; after, wait
            # for whatever finishes first.
            timeout = None if hedged else hedge_delay
            if deadline is not None:
                timeout = deadline.bound(timeout)
            done, _ = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # hedge trigger (or deadline re-check on next loop)
                if not hedged and launch_next():
                    hedged = True
                    self.metrics.record_hedge(won=False)
                elif launched >= len(candidates) and (
                    deadline is None or not hedged
                ):
                    # nothing new to launch; keep waiting on pending
                    hedged = True
                continue
            for future in done:
                node = pending.pop(future)
                try:
                    _, result, seconds = future.result()
                except NODE_FAILURES as error:
                    self._breaker(node).record_failure()
                    self.metrics.record_node_failure(node.node_id)
                    errors.append(f"{node.node_id}: {error}")
                    if not pending and not launch_next():
                        raise ClusterUnavailableError(
                            f"shard {self.shard_id}: all "
                            f"{len(candidates)} replicas failed "
                            f"({'; '.join(errors)})"
                        ) from error
                    continue
                self._breaker(node).record_success()
                if hedged and node is not candidates[0]:
                    # correct the provisional loss recorded at launch
                    self.metrics.record_hedge_win()
                self.metrics.record_shard_read(self.shard_id, seconds)
                # a losing arm keeps running in the pool; its result is
                # simply discarded (hedging never cancels)
                return result
        raise ClusterUnavailableError(
            f"shard {self.shard_id}: no replica answered "
            f"({'; '.join(errors) or 'no candidates'})"
        )

    def range_sum_many(self, lows, highs, deadline=None):
        """Hedged batched range sums; returns ``(values, version)``."""
        return self.read("range_sum_many", (lows, highs), deadline)

    # -- writes --------------------------------------------------------------

    def submit(
        self,
        updates: Sequence[Tuple[Tuple[int, ...], object]],
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Durably apply one local group; returns its sequence number.

        The primary's ack (post-WAL-fsync) is the commit point; replica
        forwarding happens after it and can only mark a replica lagging,
        never un-ack the group. A primary failure mid-submit triggers an
        inline :meth:`failover` and a single retry against the promoted
        node — but the failed attempt may have *committed without
        acking*: an fsync failure raises after the record is already
        on disk, and recovery replays any fully-written record. So the
        retry first checks the promoted primary's recovered log: if it
        already contains the group's sequence number, the group is
        durable and applied, and the ack is returned without
        resubmitting — a blind resubmit would apply the deltas twice.
        """
        if deadline is not None:
            deadline.check(f"shard {self.shard_id} submit")
        with self._lock:
            for attempt in (1, 2):
                primary = self.primary
                # Submits to this set serialize on the set lock, so the
                # primary's submitted-group counter cannot move under
                # us: the group, if it commits, gets exactly this seq.
                expected = primary.service.last_submitted_seq + 1
                try:
                    primary.guard("write")
                    seq = primary.service.submit_batch(
                        updates, timeout=timeout
                    )
                    break
                except NODE_FAILURES as error:
                    self.metrics.record_node_failure(primary.node_id)
                    self._breaker(primary).record_failure()
                    if attempt == 2:
                        raise ClusterUnavailableError(
                            f"shard {self.shard_id}: primary "
                            f"{primary.node_id} unavailable and failover "
                            f"failed ({error})"
                        ) from error
                    promoted = self.failover()
                    if promoted.service.last_submitted_seq >= expected:
                        # the "failed" submit reached the WAL before it
                        # raised; recovery replayed it — durable and
                        # applied exactly once, so do not resubmit
                        seq = expected
                        break
            self._last_acked = max(self._last_acked, seq)
            self.metrics.record_update(self.shard_id)
            for replica in self.nodes:
                if replica.is_primary or replica.dead or replica.lagging:
                    continue
                try:
                    replica.guard("replicate")
                    replica_seq = replica.service.submit_batch(
                        updates, timeout=timeout
                    )
                except NODE_FAILURES:
                    replica.lagging = True
                    self.metrics.record_replica_lag(replica.node_id)
                    continue
                if replica_seq != seq:
                    # missed an earlier forward: exact or excluded
                    replica.lagging = True
                    self.metrics.record_replica_lag(replica.node_id)
            return seq

    def flush(self, timeout: Optional[float] = None) -> int:
        """Wait until the primary has applied everything it acked."""
        with self._lock:
            primary = self.primary
        version = primary.service.flush(timeout=timeout)
        for replica in self.nodes:
            if replica.is_primary or replica.dead or replica.lagging:
                continue
            try:
                replica.service.flush(timeout=timeout)
            except NODE_FAILURES:
                replica.lagging = True
                self.metrics.record_replica_lag(replica.node_id)
        return version

    # -- failover and resync -------------------------------------------------

    def failover(self) -> ClusterNode:
        """Fence the primary, promote a replica from the durable log.

        Idempotent under the set lock. The promoted replica discards its
        in-memory state entirely and recovers from the fenced primary's
        WAL directory — checkpoint load plus committed-group replay —
        so every acknowledged group survives even if this replica was
        lagging. The dead primary's per-node fault plan is deliberately
        *not* inherited (a ``kill_node_at`` that fired once must not
        re-fire during replay or on the new primary).

        Recovery runs *before* roles flip or the promoted replica's
        service is destroyed: if the directory cannot be recovered
        (corrupt WAL, I/O failure), the fenced node keeps its primary
        role — so a later failover attempt can retry — and the replica
        keeps serving reads, instead of the shard being left with no
        primary and one replica fewer.
        """
        with self._lock:
            old = self.primary
            directory = old.durability_dir
            candidates = [
                n for n in self.nodes if not n.is_primary and not n.dead
            ]
            if not candidates:
                raise ClusterUnavailableError(
                    f"shard {self.shard_id}: primary {old.node_id} is down "
                    "and no replica is left to promote"
                )
            # prefer a caught-up replica; a lagging one still recovers
            # correctly (state comes from the log, not its memory)
            candidates.sort(key=lambda n: n.lagging)
            promoted = candidates[0]
            # fence: crash-stop the old primary so it can never ack or
            # log another group against the directory we are adopting
            old.is_primary = False
            try:
                old.abandon()
            except Exception:  # noqa: BLE001 - already-dead is fine
                pass
            try:
                recovered = CubeService.recover(directory)
            except (ReproError, OSError) as error:
                # leave the (fenced, dead) node as primary: the shard
                # degrades to unavailable, and the health monitor's
                # next tick retries this failover instead of the shard
                # being permanently primary-less
                old.is_primary = True
                raise ClusterUnavailableError(
                    f"shard {self.shard_id}: failover could not recover "
                    f"from {directory} ({error})"
                ) from error
            try:
                promoted.service.close(timeout=10.0)
            except Exception:  # noqa: BLE001 - stale state is discarded
                pass
            promoted.service = recovered
            promoted.durability_dir = directory
            promoted.is_primary = True
            promoted.lagging = False
            # reads must not flip between the recovered state and a
            # replica that missed a committed-but-unacked group
            self._last_acked = max(
                self._last_acked, recovered.last_submitted_seq
            )
            self._breaker(promoted).record_success()
            self.metrics.record_failover(self.shard_id)
            return promoted

    def resync(self, node: ClusterNode) -> ClusterNode:
        """Rebuild a lagging replica from the primary's durable log.

        Runs under the set lock so no forward can race the rebuild: the
        replica restarts at exactly the primary's committed version and
        resumes receiving forwards from the next group on.
        """
        with self._lock:
            primary = self.primary
            if node.is_primary:
                return node
            primary.service.flush()
            state = wal_mod.recover_state(primary.durability_dir)
            method = state.method
            box_sizes = getattr(method, "box_sizes", None)
            kwargs = {"box_size": box_sizes} if box_sizes is not None else {}
            try:
                node.service.close(timeout=10.0)
            except Exception:  # noqa: BLE001 - stale state is discarded
                pass
            node.service = CubeService(
                type(method),
                method.to_array(),
                method_kwargs=kwargs,
                _initial_version=state.version,
            )
            node.lagging = False
            node.dead = False
            self.metrics.record_resync(node.node_id)
            return node

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(shard={self.shard_id}, "
            f"nodes={[n.node_id for n in self.nodes]})"
        )

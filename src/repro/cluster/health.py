"""Node health: per-node circuit breakers and the probing monitor.

The breaker is the classic three-state machine (Nygard's *Release It!*
pattern): **closed** passes traffic and counts consecutive failures;
``failure_threshold`` of them in a row trips it **open**, which rejects
instantly — sparing a dead node the request and the caller the timeout —
until ``cooldown_s`` elapses; the first call after cooldown runs in
**half-open** as a trial, where one success closes the breaker and one
failure re-opens it for another cooldown. The clock is injectable so
tests step time explicitly instead of sleeping.

:class:`HealthMonitor` drives the breakers from *probes* rather than
waiting for client traffic to discover a dead node. Each
:meth:`HealthMonitor.tick` probes every node (in a seeded shuffled order
so no node is systematically probed first) and then asks each
:class:`~repro.cluster.replicaset.ReplicaSet` to fail over if its
primary's breaker is open or the node is fenced. ``tick()`` is
synchronous and deterministic — tests call it directly; production use
can run it on the background thread via :meth:`HealthMonitor.start`.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cluster.node import NODE_FAILURES
from repro.errors import ClusterError


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning for one :class:`CircuitBreaker`.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        cooldown_s: seconds an open breaker rejects before allowing a
            half-open trial call.
    """

    failure_threshold: int = 3
    cooldown_s: float = 1.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")


class CircuitBreaker:
    """Closed → open → half-open failure gate for one node.

    Thread-safe; ``clock`` is injectable (monotonic seconds) so tests
    control cooldown expiry without real sleeps.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        node_id: str,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        self.node_id = str(node_id)
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._warming = False
        self._warming_failures = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state()

    def _probe_state(self) -> str:
        """Current state, promoting open → half-open after cooldown.

        Caller holds the lock.
        """
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.policy.cooldown_s
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a call be attempted right now?

        Open rejects; closed and half-open (the post-cooldown trial)
        both allow.
        """
        with self._lock:
            return self._probe_state() != self.OPEN

    def record_success(self) -> None:
        with self._lock:
            was_broken = self._state != self.CLOSED
            self._state = self.CLOSED
            self._failures = 0
        if was_broken and self._metrics is not None:
            self._metrics.record_breaker_reset(self.node_id)

    @property
    def warming(self) -> bool:
        """Whether this node is a migration target still seeding/WAL-
        replaying: failures are counted separately and never trip the
        breaker, so a warming target cannot be quarantined as unhealthy
        before its replay finishes."""
        with self._lock:
            return self._warming

    @property
    def warming_failures(self) -> int:
        with self._lock:
            return self._warming_failures

    def set_warming(self, warming: bool) -> None:
        """Enter/leave warming mode. Leaving resets the consecutive-
        failure count: failures accumulated while seeding must not
        pre-charge a trip the moment the node goes live."""
        with self._lock:
            self._warming = bool(warming)
            if not self._warming:
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._warming:
                self._warming_failures += 1
                warming = True
            else:
                warming = False
        if warming:
            if self._metrics is not None:
                self._metrics.record_warming_failure(self.node_id)
            return
        with self._lock:
            if self._probe_state() == self.HALF_OPEN:
                # the trial call failed: straight back to open
                self._state = self.OPEN
                self._opened_at = self._clock()
                tripped = True
            else:
                self._failures += 1
                tripped = (
                    self._state == self.CLOSED
                    and self._failures >= self.policy.failure_threshold
                )
                if tripped:
                    self._state = self.OPEN
                    self._opened_at = self._clock()
        if tripped and self._metrics is not None:
            self._metrics.record_breaker_trip(self.node_id)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.node_id!r}, state={self.state!r}, "
            f"failures={self._failures})"
        )


class HealthMonitor:
    """Probe every node, feed the breakers, trigger failovers.

    Args:
        cluster: the owning :class:`~repro.cluster.cluster.CubeCluster`
            (anything exposing ``nodes()``, ``breaker(node_id)``, and
            ``replica_sets``).
        seed: seeds the probe-order shuffle — ticks are deterministic.
        probe_timeout_s: per-probe budget. Probes themselves are
            synchronous in-process calls, but this is the cluster's one
            authoritative "how long may a health-path wait take" knob:
            the anti-entropy scrubber derives its repair budget from it
            (see :class:`~repro.cluster.scrub.AntiEntropyScrubber`)
            instead of keeping an ad-hoc timeout of its own.
    """

    def __init__(self, cluster, *, seed: int = 0, probe_timeout_s: float = 1.0):
        self._cluster = cluster
        self._rng = random.Random(seed)
        self.probe_timeout_s = float(probe_timeout_s)
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.ticks = 0

    def tick(self) -> Dict[str, bool]:
        """One synchronous monitoring pass; returns ``{node_id: ok}``.

        Probes all non-fenced nodes in a seeded random order, records
        each outcome on the node's breaker, then gives every replica set
        a failover opportunity (taken only when the primary is fenced or
        its breaker is open). Migration-target nodes still warming
        (seeding / WAL tail replay) are probed too, but their breakers
        are in warming mode: failures are tallied separately and can
        never quarantine a target before its replay finishes.
        """
        results: Dict[str, bool] = {}
        nodes = list(self._cluster.nodes())
        targets = getattr(
            self._cluster, "migration_target_nodes", None
        )
        warming_ids = set()
        if targets is not None:
            for node in targets():
                warming_ids.add(node.node_id)
                nodes.append(node)
        self._rng.shuffle(nodes)
        metrics = self._cluster.metrics
        for node in nodes:
            if node.dead:
                continue
            breaker = self._cluster.breaker(node.node_id)
            try:
                node.probe()
            except NODE_FAILURES:
                ok = False
            else:
                ok = True
            results[node.node_id] = ok
            metrics.record_probe(node.node_id, ok)
            if ok:
                breaker.record_success()
            else:
                if node.node_id not in warming_ids:
                    metrics.record_node_failure(node.node_id)
                breaker.record_failure()
        for replica_set in self._cluster.replica_sets:
            try:
                primary = replica_set.primary
            except ClusterError:
                # shard has no primary at all (and so no durable
                # directory to promote from): skip it, but never let
                # one broken shard deny the remaining shards their
                # failover opportunity
                continue
            if primary.dead or not self._cluster.breaker(
                primary.node_id
            ).allow():
                try:
                    replica_set.failover()
                except ClusterError:
                    # no replica left to promote (or recovery failed):
                    # the shard stays unavailable (exactly) until a
                    # node is revived or a later tick retries
                    pass
        self.ticks += 1
        return results

    def start(self, interval_s: float = 0.25) -> None:
        """Run :meth:`tick` on a daemon thread every ``interval_s``."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - monitor must survive
                    pass

        self._thread = threading.Thread(
            target=loop, name="cluster-health-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

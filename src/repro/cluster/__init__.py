"""Replicated, sharded serving cluster for dynamic data cubes.

This package scales :class:`~repro.serve.CubeService` past one node
while keeping the library's core promise — every answer exact:

* :class:`ShardMap` slices the cube into leading-dimension slabs and
  splits query boxes across them (partials sum exactly);
* :class:`~repro.cluster.node.ClusterNode` wraps one service with a
  fault-injection surface (kills, partitions, latency spikes from a
  shared :class:`~repro.faults.FaultPlan`);
* :class:`ReplicaSet` gives each shard a durable primary plus replicas:
  hedged reads, forwarded writes, and WAL-recovering failover with zero
  acked-group loss;
* :class:`CircuitBreaker` / :class:`HealthMonitor` detect dead nodes
  and trigger promotion; :class:`AntiEntropyScrubber` digest-compares
  replicas and repairs silent divergence;
* :class:`CubeCluster` is the facade clients talk to, with
  :class:`~repro.deadline.Deadline`-bounded calls throughout.

Quick start::

    from repro import RelativePrefixSumCube
    from repro.cluster import CubeCluster

    with CubeCluster(RelativePrefixSumCube, cube, data_dir=path,
                     num_shards=2, replication_factor=2) as cluster:
        cluster.submit_batch([((3, 4), +10.0)])
        cluster.flush()
        value = cluster.range_sum((0, 0), (9, 9))
"""

from repro.cluster.cluster import CubeCluster
from repro.cluster.health import BreakerPolicy, CircuitBreaker, HealthMonitor
from repro.cluster.node import NODE_FAILURES, ClusterNode
from repro.cluster.replicaset import HedgePolicy, ReplicaSet
from repro.cluster.scrub import AntiEntropyScrubber
from repro.cluster.shardmap import ShardMap
from repro.deadline import Deadline
from repro.errors import (
    ClusterError,
    ClusterUnavailableError,
    DeadlineExceededError,
    NodeUnavailableError,
)

__all__ = [
    "AntiEntropyScrubber",
    "BreakerPolicy",
    "CircuitBreaker",
    "ClusterError",
    "ClusterNode",
    "ClusterUnavailableError",
    "CubeCluster",
    "Deadline",
    "DeadlineExceededError",
    "HealthMonitor",
    "HedgePolicy",
    "NODE_FAILURES",
    "NodeUnavailableError",
    "ReplicaSet",
    "ShardMap",
]

"""Replicated, sharded serving cluster for dynamic data cubes.

This package scales :class:`~repro.serve.CubeService` past one node
while keeping the library's core promise — every answer exact (or,
when a caller opts in during degradation, explicitly marked and
error-bounded):

* :class:`ShardMap` slices the cube into leading-dimension slabs and
  splits query boxes across them (partials sum exactly); its ``epoch``
  fences every stamp and cached answer to one layout;
* :class:`~repro.cluster.node.ClusterNode` wraps one service with a
  fault-injection surface (kills, partitions, latency spikes from a
  shared :class:`~repro.faults.FaultPlan`);
* :class:`ReplicaSet` gives each shard a durable primary plus replicas:
  hedged reads, forwarded writes, and WAL-recovering failover with zero
  acked-group loss;
* :class:`CircuitBreaker` / :class:`HealthMonitor` detect dead nodes
  and trigger promotion; :class:`AntiEntropyScrubber` digest-compares
  replicas and repairs silent divergence;
* :class:`ReshardCoordinator` splits and merges shards **live**:
  checkpoint-seeded targets, WAL-tail replay, a dual-write window, an
  atomic epoch-stamped flip, scrub verification before retirement, and
  lossless rollback on failure;
* :class:`ShardAggregates` / :class:`RangeEstimate` answer queries over
  unreachable or migrating shards with guaranteed error intervals when
  the caller passes ``allow_estimate=True``;
* :class:`CubeCluster` is the facade clients talk to, with
  :class:`~repro.deadline.Deadline`-bounded calls throughout.

Quick start::

    from repro import RelativePrefixSumCube
    from repro.cluster import CubeCluster

    with CubeCluster(RelativePrefixSumCube, cube, data_dir=path,
                     num_shards=2, replication_factor=2) as cluster:
        cluster.submit_batch([((3, 4), +10.0)])
        cluster.flush()
        value = cluster.range_sum((0, 0), (9, 9))
        cluster.split_shard(0)          # live, epoch-fenced
"""

from repro.cluster.cluster import CubeCluster
from repro.cluster.degraded import (
    RangeEstimate,
    ShardAggregates,
    SlabSummary,
)
from repro.cluster.health import BreakerPolicy, CircuitBreaker, HealthMonitor
from repro.cluster.node import NODE_FAILURES, ClusterNode
from repro.cluster.replicaset import HedgePolicy, ReplicaSet
from repro.cluster.reshard import PHASES, Migration, ReshardCoordinator
from repro.cluster.scrub import AntiEntropyScrubber
from repro.cluster.shardmap import ShardMap
from repro.deadline import Deadline
from repro.errors import (
    ClusterError,
    ClusterUnavailableError,
    DeadlineExceededError,
    NodeUnavailableError,
    ReshardError,
)

__all__ = [
    "AntiEntropyScrubber",
    "BreakerPolicy",
    "CircuitBreaker",
    "ClusterError",
    "ClusterNode",
    "ClusterUnavailableError",
    "CubeCluster",
    "Deadline",
    "DeadlineExceededError",
    "HealthMonitor",
    "HedgePolicy",
    "Migration",
    "NODE_FAILURES",
    "NodeUnavailableError",
    "PHASES",
    "RangeEstimate",
    "ReplicaSet",
    "ReshardCoordinator",
    "ReshardError",
    "ShardAggregates",
    "ShardMap",
    "SlabSummary",
]

"""Anti-entropy: find silently diverged replicas and repair them.

Replication by forwarding is fast but trusting: a replica that applies a
group incorrectly (bit flip, bug, partial apply) still reports the right
sequence number, and reads hedged onto it would return wrong sums
forever. The scrubber closes that gap the way Dynamo-style stores do —
periodically compare replica state digests against the primary and
rebuild whatever disagrees — except that with whole-slab SHA-256 digests
over the reconstructed dense array the comparison is *exact*, not
probabilistic.

Repair escalates through the two mechanisms the system already trusts:

1. :meth:`CubeService.self_check(repair=True)
   <repro.serve.service.CubeService.self_check>` — the node rebuilds its
   own buffers from its reconstructed array (fixes internal
   overlay/RPA inconsistency);
2. :meth:`ReplicaSet.resync <repro.cluster.replicaset.ReplicaSet.resync>`
   — the replica is rebuilt from the primary's durable log (fixes
   divergence from the authoritative state).

A primary that fails its own ``self_check`` is repaired in place too —
the log, not any replica, is authoritative, so the scrubber never
"repairs" a primary from replica memory.
"""

from __future__ import annotations

import hashlib
import random
import threading
from typing import Dict, Optional

import numpy as np

from repro.cluster.node import NODE_FAILURES
from repro.errors import ClusterError, StorageError

#: Failures a repair attempt may surface: node-level unavailability,
#: plus a shard with no primary (ClusterError from ``resync``) and a
#: durability directory that cannot be read back (StorageError from
#: ``recover_state``). Contained per shard, never aborting the round.
REPAIR_FAILURES = NODE_FAILURES + (ClusterError, StorageError)


def _slab_digest(array: np.ndarray) -> str:
    """sha256 over values + shape + dtype, matching
    :meth:`~repro.serve.service.CubeService.snapshot_digest`'s scheme."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(str(array.dtype).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


class AntiEntropyScrubber:
    """Background digest comparison and repair across every shard.

    Args:
        cluster: the owning :class:`~repro.cluster.cluster.CubeCluster`.
        seed: seeds the shard visit order per round (deterministic
            tests; no shard is systematically scrubbed last).
        probes: sample size forwarded to ``self_check``.
        quiesce: flush each shard before digesting so version skew from
            in-flight groups is not mistaken for divergence.
        repair_timeout: per-node bound on the ``self_check`` repair
            rebuild — a wedged node must not stall the whole round (the
            resulting :class:`TimeoutError` is a ``NODE_FAILURES``
            member, so the scrubber escalates to ``resync``). ``None``
            (the default) derives the budget from the health monitor's
            ``probe_timeout_s`` — ``REPAIR_BUDGET_PROBES`` probe
            budgets — so operators tune one health-path knob, not two
            that can drift apart.
    """

    #: repair budget expressed in health-probe budgets: a repair rebuild
    #: may take at most this many of the monitor's ``probe_timeout_s``
    REPAIR_BUDGET_PROBES = 60

    def __init__(
        self,
        cluster,
        *,
        seed: int = 0,
        probes: int = 16,
        quiesce: bool = True,
        repair_timeout: Optional[float] = None,
    ) -> None:
        self._cluster = cluster
        self._rng = random.Random(seed)
        self.probes = int(probes)
        self.quiesce = bool(quiesce)
        self.repair_timeout = repair_timeout
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def repair_budget(self) -> float:
        """The per-node repair bound actually used this round.

        An explicit ``repair_timeout`` wins; otherwise the budget is
        threaded from :class:`~repro.cluster.health.HealthMonitor`'s
        ``probe_timeout_s`` (times :data:`REPAIR_BUDGET_PROBES`), with a
        1-probe-second fallback when the cluster has no monitor yet.
        """
        if self.repair_timeout is not None:
            return float(self.repair_timeout)
        monitor = getattr(self._cluster, "monitor", None)
        probe_timeout = (
            float(monitor.probe_timeout_s) if monitor is not None else 1.0
        )
        return probe_timeout * self.REPAIR_BUDGET_PROBES

    def scrub_once(self) -> Dict:
        """One full anti-entropy round; returns a report dict.

        Per shard: optionally flush (primary and caught-up replicas to
        the same version), digest the primary, digest each replica, and
        repair any mismatch — ``self_check`` first, resync from the
        primary's log if the digest still disagrees. Lagging replicas
        are resynced outright (they are already known-stale; no digest
        needed to convict them).
        """
        report = {
            "shards": 0,
            "checks": 0,
            "divergences": 0,
            "repairs": 0,
            "resyncs": 0,
            "skipped": [],
        }
        metrics = self._cluster.metrics
        replica_sets = list(self._cluster.replica_sets)
        self._rng.shuffle(replica_sets)
        for replica_set in replica_sets:
            report["shards"] += 1
            try:
                if self.quiesce:
                    replica_set.flush()
                primary = replica_set.primary
                primary_version, primary_digest = primary.snapshot_digest()
            except REPAIR_FAILURES as error:
                report["skipped"].append(
                    f"shard {replica_set.shard_id}: {error}"
                )
                continue
            for node in list(replica_set.nodes):
                if node.is_primary or node.dead:
                    continue
                if node.lagging:
                    try:
                        replica_set.resync(node)
                        report["resyncs"] += 1
                    except REPAIR_FAILURES as error:
                        # a dead primary or unreadable log must not
                        # abort the round: record it and move on
                        report["skipped"].append(
                            f"shard {replica_set.shard_id} node "
                            f"{node.node_id}: {error}"
                        )
                    continue
                try:
                    version, digest = node.snapshot_digest()
                except NODE_FAILURES:
                    node.lagging = True
                    metrics.record_replica_lag(node.node_id)
                    continue
                report["checks"] += 1
                if version == primary_version and digest == primary_digest:
                    continue
                report["divergences"] += 1
                metrics.record_scrub_divergence()
                repaired = False
                try:
                    check = node.self_check(
                        probes=self.probes, repair=True,
                        timeout=self.repair_budget(),
                    )
                    if check["ok"]:
                        version, digest = node.snapshot_digest()
                        repaired = (
                            version == primary_version
                            and digest == primary_digest
                        )
                except NODE_FAILURES:
                    repaired = False
                if not repaired:
                    # self-consistency was not the problem (or not
                    # enough): rebuild from the authoritative log
                    try:
                        replica_set.resync(node)
                        report["resyncs"] += 1
                    except REPAIR_FAILURES as error:
                        report["skipped"].append(
                            f"shard {replica_set.shard_id} node "
                            f"{node.node_id}: {error}"
                        )
                        continue
                report["repairs"] += 1
                metrics.record_scrub_repair()
        metrics.record_scrub_round(report["checks"])
        return report

    #: relative tolerance for the slab comparison fallback. The seeded
    #: target and the live source reconstruct their dense arrays
    #: through float prefix structures of *different shapes*, so their
    #: last bits legitimately differ by reconstruction noise (~1e-15
    #: relative); a lost or double-applied group shows up at the scale
    #: of a whole delta, many orders of magnitude above this.
    VERIFY_RTOL = 1e-8

    def verify_migration(self, migration) -> Dict:
        """Verify migrated slabs against their source replicas.

        Called by the reshard coordinator after the epoch flip and
        *before* the old nodes are retired: every target primary's
        dense slab must match the corresponding rows of the
        (still-live, reverse-mirrored) source primaries — digest-equal
        when the float paths happen to agree bit-for-bit, otherwise
        element-wise within :data:`VERIFY_RTOL` (reconstruction noise,
        never a missing update). Both sides are flushed first under the
        scrubber's repair budget so acked-but-unapplied groups are not
        mistaken for divergence.

        Returns ``{"targets", "verified", "exact", "mismatches"}``; the
        coordinator rolls back (or raises) on any mismatch.
        """
        budget = self.repair_budget()
        report = {
            "targets": 0, "verified": 0, "exact": 0, "mismatches": []
        }
        for replica_set, _ in list(migration.sources) + list(
            migration.targets
        ):
            replica_set.flush(timeout=budget)
        row_lo = min(start for _, (start, _) in migration.sources)
        # snapshot both sides under the topology lock: a write stream
        # landing between the source and target snapshots would differ
        # by exactly its in-flight deltas and read as divergence. The
        # hold is short — the flush above already drained the backlog,
        # so the in-lock flush only absorbs the races of that window —
        # and reads stay lock-free throughout.
        with self._cluster._topology:
            pieces = []
            for replica_set, (start, stop) in sorted(
                migration.sources, key=lambda item: item[1][0]
            ):
                replica_set.flush(timeout=budget)
                array, _ = replica_set.primary.service.snapshot_array()
                pieces.append(array)
            target_arrays = []
            for replica_set, (start, stop) in migration.targets:
                replica_set.flush(timeout=budget)
                array, _ = replica_set.primary.service.snapshot_array()
                target_arrays.append(array)
        source_image = (
            pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        )
        for (replica_set, (start, stop)), target_array in zip(
            migration.targets, target_arrays
        ):
            report["targets"] += 1
            expected = source_image[start - row_lo:stop - row_lo]
            if _slab_digest(expected) == _slab_digest(target_array):
                report["verified"] += 1
                report["exact"] += 1
            elif expected.shape == target_array.shape and np.allclose(
                expected, target_array,
                rtol=self.VERIFY_RTOL, atol=self.VERIFY_RTOL,
            ):
                report["verified"] += 1
            else:
                worst = (
                    float(np.max(np.abs(expected - target_array)))
                    if expected.shape == target_array.shape
                    else float("inf")
                )
                report["mismatches"].append(
                    f"target shard rows [{start}, {stop}) diverge "
                    f"from source (max abs diff {worst:g})"
                )
        return report

    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`scrub_once` on a daemon thread every ``interval_s``."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.scrub_once()
                except Exception:  # noqa: BLE001 - scrubber must survive
                    pass

        self._thread = threading.Thread(
            target=loop, name="cluster-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

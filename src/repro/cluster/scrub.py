"""Anti-entropy: find silently diverged replicas and repair them.

Replication by forwarding is fast but trusting: a replica that applies a
group incorrectly (bit flip, bug, partial apply) still reports the right
sequence number, and reads hedged onto it would return wrong sums
forever. The scrubber closes that gap the way Dynamo-style stores do —
periodically compare replica state digests against the primary and
rebuild whatever disagrees — except that with whole-slab SHA-256 digests
over the reconstructed dense array the comparison is *exact*, not
probabilistic.

Repair escalates through the two mechanisms the system already trusts:

1. :meth:`CubeService.self_check(repair=True)
   <repro.serve.service.CubeService.self_check>` — the node rebuilds its
   own buffers from its reconstructed array (fixes internal
   overlay/RPA inconsistency);
2. :meth:`ReplicaSet.resync <repro.cluster.replicaset.ReplicaSet.resync>`
   — the replica is rebuilt from the primary's durable log (fixes
   divergence from the authoritative state).

A primary that fails its own ``self_check`` is repaired in place too —
the log, not any replica, is authoritative, so the scrubber never
"repairs" a primary from replica memory.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Optional

from repro.cluster.node import NODE_FAILURES
from repro.errors import ClusterError, StorageError

#: Failures a repair attempt may surface: node-level unavailability,
#: plus a shard with no primary (ClusterError from ``resync``) and a
#: durability directory that cannot be read back (StorageError from
#: ``recover_state``). Contained per shard, never aborting the round.
REPAIR_FAILURES = NODE_FAILURES + (ClusterError, StorageError)


class AntiEntropyScrubber:
    """Background digest comparison and repair across every shard.

    Args:
        cluster: the owning :class:`~repro.cluster.cluster.CubeCluster`.
        seed: seeds the shard visit order per round (deterministic
            tests; no shard is systematically scrubbed last).
        probes: sample size forwarded to ``self_check``.
        quiesce: flush each shard before digesting so version skew from
            in-flight groups is not mistaken for divergence.
        repair_timeout: per-node bound on the ``self_check`` repair
            rebuild — a wedged node must not stall the whole round (the
            resulting :class:`TimeoutError` is a ``NODE_FAILURES``
            member, so the scrubber escalates to ``resync``).
    """

    def __init__(
        self,
        cluster,
        *,
        seed: int = 0,
        probes: int = 16,
        quiesce: bool = True,
        repair_timeout: Optional[float] = 60.0,
    ) -> None:
        self._cluster = cluster
        self._rng = random.Random(seed)
        self.probes = int(probes)
        self.quiesce = bool(quiesce)
        self.repair_timeout = repair_timeout
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def scrub_once(self) -> Dict:
        """One full anti-entropy round; returns a report dict.

        Per shard: optionally flush (primary and caught-up replicas to
        the same version), digest the primary, digest each replica, and
        repair any mismatch — ``self_check`` first, resync from the
        primary's log if the digest still disagrees. Lagging replicas
        are resynced outright (they are already known-stale; no digest
        needed to convict them).
        """
        report = {
            "shards": 0,
            "checks": 0,
            "divergences": 0,
            "repairs": 0,
            "resyncs": 0,
            "skipped": [],
        }
        metrics = self._cluster.metrics
        replica_sets = list(self._cluster.replica_sets)
        self._rng.shuffle(replica_sets)
        for replica_set in replica_sets:
            report["shards"] += 1
            try:
                if self.quiesce:
                    replica_set.flush()
                primary = replica_set.primary
                primary_version, primary_digest = primary.snapshot_digest()
            except REPAIR_FAILURES as error:
                report["skipped"].append(
                    f"shard {replica_set.shard_id}: {error}"
                )
                continue
            for node in list(replica_set.nodes):
                if node.is_primary or node.dead:
                    continue
                if node.lagging:
                    try:
                        replica_set.resync(node)
                        report["resyncs"] += 1
                    except REPAIR_FAILURES as error:
                        # a dead primary or unreadable log must not
                        # abort the round: record it and move on
                        report["skipped"].append(
                            f"shard {replica_set.shard_id} node "
                            f"{node.node_id}: {error}"
                        )
                    continue
                try:
                    version, digest = node.snapshot_digest()
                except NODE_FAILURES:
                    node.lagging = True
                    metrics.record_replica_lag(node.node_id)
                    continue
                report["checks"] += 1
                if version == primary_version and digest == primary_digest:
                    continue
                report["divergences"] += 1
                metrics.record_scrub_divergence()
                repaired = False
                try:
                    check = node.self_check(
                        probes=self.probes, repair=True,
                        timeout=self.repair_timeout,
                    )
                    if check["ok"]:
                        version, digest = node.snapshot_digest()
                        repaired = (
                            version == primary_version
                            and digest == primary_digest
                        )
                except NODE_FAILURES:
                    repaired = False
                if not repaired:
                    # self-consistency was not the problem (or not
                    # enough): rebuild from the authoritative log
                    try:
                        replica_set.resync(node)
                        report["resyncs"] += 1
                    except REPAIR_FAILURES as error:
                        report["skipped"].append(
                            f"shard {replica_set.shard_id} node "
                            f"{node.node_id}: {error}"
                        )
                        continue
                report["repairs"] += 1
                metrics.record_scrub_repair()
        metrics.record_scrub_round(report["checks"])
        return report

    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`scrub_once` on a daemon thread every ``interval_s``."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.scrub_once()
                except Exception:  # noqa: BLE001 - scrubber must survive
                    pass

        self._thread = threading.Thread(
            target=loop, name="cluster-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

"""Partitioning a cube across shards along its leading dimension.

Szépkúti's OLAP-organization survey names range partitioning along one
dimension as the standard path to scaling a cube past one node; the
leading dimension is the natural choice here because every structure in
this library stores the cube C-contiguously, so a leading-axis slab is
one contiguous block of the source array.

A :class:`ShardMap` owns the routing math and nothing else:

* **updates** — a cell belongs to exactly one shard
  (:meth:`ShardMap.shard_of`, :meth:`ShardMap.split_updates`);
* **queries** — an inclusive query box may straddle shard boundaries;
  :meth:`ShardMap.split_box` cuts it into at most one *local* sub-box
  per shard, and because the slabs are disjoint and cover the axis, the
  exact sum over the original box equals the sum of the per-shard
  partial sums. No approximation anywhere — the split is pure index
  arithmetic.

Local coordinates: shard ``s`` owning rows ``[start, stop)`` of axis 0
sees the global cell ``(c0, c1, ..)`` as ``(c0 - start, c1, ..)``; all
other axes pass through unchanged.

Maps are immutable; elastic resharding replaces the whole map. Every
map carries a monotonically increasing ``epoch`` identifying the slab
layout it describes: :meth:`ShardMap.split_shard` /
:meth:`ShardMap.merge_shards` derive the successor layout at
``epoch + 1``, and the cluster stamps the epoch into version vectors,
``stats()``, and wire responses so any answer (or cache entry) is
fenced to the exact layout it was computed under.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ClusterError, RangeError

BoxSplit = Tuple[int, Tuple[int, ...], Tuple[int, ...]]


class ShardMap:
    """Contiguous, near-equal slabs of the leading dimension.

    Args:
        shape: the full cube's shape.
        num_shards: how many slabs to cut axis 0 into; must not exceed
            the axis length (every shard owns at least one row).
        epoch: the layout generation this map describes (0 for a map
            built at cluster construction; resharding derives
            successors at strictly larger epochs).
    """

    def __init__(
        self, shape: Sequence[int], num_shards: int, *, epoch: int = 0
    ) -> None:
        self.shape = tuple(int(n) for n in shape)
        if not self.shape or any(n <= 0 for n in self.shape):
            raise ClusterError(f"invalid cube shape {self.shape}")
        self.num_shards = int(num_shards)
        if not 1 <= self.num_shards <= self.shape[0]:
            raise ClusterError(
                f"num_shards must be in [1, {self.shape[0]}] for shape "
                f"{self.shape}, got {num_shards}"
            )
        # near-equal slabs: the first (n % shards) slabs get one extra row
        edges = np.linspace(
            0, self.shape[0], self.num_shards + 1, dtype=np.intp
        )
        self.bounds: Tuple[Tuple[int, int], ...] = tuple(
            (int(edges[i]), int(edges[i + 1]))
            for i in range(self.num_shards)
        )
        self._starts = [start for start, _ in self.bounds]
        self.epoch = self._check_epoch(epoch)

    @staticmethod
    def _check_epoch(epoch) -> int:
        epoch = int(epoch)
        if epoch < 0:
            raise ClusterError(f"epoch must be >= 0, got {epoch}")
        return epoch

    @classmethod
    def from_bounds(
        cls,
        shape: Sequence[int],
        bounds: Sequence[Sequence[int]],
        *,
        epoch: int = 0,
    ) -> "ShardMap":
        """Build a map from an explicit slab layout.

        ``bounds`` must be contiguous ``[start, stop)`` slabs covering
        axis 0 exactly — the shape every split/merge migration plans.
        """
        shape = tuple(int(n) for n in shape)
        if not shape or any(n <= 0 for n in shape):
            raise ClusterError(f"invalid cube shape {shape}")
        slabs = tuple((int(a), int(b)) for a, b in bounds)
        if not slabs:
            raise ClusterError("bounds must name at least one slab")
        if slabs[0][0] != 0 or slabs[-1][1] != shape[0]:
            raise ClusterError(
                f"bounds {slabs} do not cover axis 0 of length {shape[0]}"
            )
        for i, (start, stop) in enumerate(slabs):
            if stop <= start:
                raise ClusterError(f"empty slab {(start, stop)} at {i}")
            if i and start != slabs[i - 1][1]:
                raise ClusterError(
                    f"bounds are not contiguous at slab {i}: "
                    f"{slabs[i - 1]} then {(start, stop)}"
                )
        shard_map = cls.__new__(cls)
        shard_map.shape = shape
        shard_map.num_shards = len(slabs)
        shard_map.bounds = slabs
        shard_map._starts = [start for start, _ in slabs]
        shard_map.epoch = cls._check_epoch(epoch)
        return shard_map

    # -- elastic layout derivation -------------------------------------------

    def split_shard(
        self, shard: int, at_row: int = None
    ) -> "ShardMap":
        """The successor layout with ``shard`` cut in two at ``at_row``
        (global row; defaults to the slab midpoint). Epoch advances."""
        start, stop = self.bounds[shard]
        if stop - start < 2:
            raise ClusterError(
                f"shard {shard} owns a single row {start}: cannot split"
            )
        if at_row is None:
            at_row = (start + stop) // 2
        at_row = int(at_row)
        if not start < at_row < stop:
            raise ClusterError(
                f"split row {at_row} must fall strictly inside shard "
                f"{shard}'s rows [{start}, {stop})"
            )
        new_bounds = (
            self.bounds[:shard]
            + ((start, at_row), (at_row, stop))
            + self.bounds[shard + 1:]
        )
        return ShardMap.from_bounds(
            self.shape, new_bounds, epoch=self.epoch + 1
        )

    def merge_shards(self, shard: int) -> "ShardMap":
        """The successor layout with ``shard`` and ``shard + 1`` fused
        into one slab. Epoch advances."""
        if not 0 <= shard < self.num_shards - 1:
            raise ClusterError(
                f"merge needs adjacent shards {shard} and {shard + 1}; "
                f"map has {self.num_shards} shards"
            )
        fused = (self.bounds[shard][0], self.bounds[shard + 1][1])
        new_bounds = (
            self.bounds[:shard] + (fused,) + self.bounds[shard + 2:]
        )
        return ShardMap.from_bounds(
            self.shape, new_bounds, epoch=self.epoch + 1
        )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def slab(self, shard: int) -> Tuple[int, int]:
        """``[start, stop)`` rows of axis 0 owned by ``shard``."""
        return self.bounds[shard]

    def shard_shape(self, shard: int) -> Tuple[int, ...]:
        """The local shape of ``shard``'s slab."""
        start, stop = self.bounds[shard]
        return (stop - start,) + self.shape[1:]

    def subarray(self, array: np.ndarray, shard: int) -> np.ndarray:
        """Copy out ``shard``'s slab of a full-cube array."""
        array = np.asarray(array)
        if array.shape != self.shape:
            raise ClusterError(
                f"array shape {array.shape} != cube shape {self.shape}"
            )
        start, stop = self.bounds[shard]
        return array[start:stop].copy()

    def shard_of(self, cell: Sequence[int]) -> int:
        """The shard owning ``cell`` (validates all coordinates)."""
        if len(cell) != self.ndim:
            raise RangeError(
                f"cell {tuple(cell)} has {len(cell)} coordinates, cube "
                f"has {self.ndim}"
            )
        for axis, (coord, size) in enumerate(zip(cell, self.shape)):
            if not 0 <= int(coord) < size:
                raise RangeError(
                    f"cell {tuple(cell)} out of bounds on axis {axis} "
                    f"(size {size})"
                )
        return bisect.bisect_right(self._starts, int(cell[0])) - 1

    def to_local(self, shard: int, cell: Sequence[int]) -> Tuple[int, ...]:
        """Translate a global cell into ``shard``'s local coordinates."""
        start, stop = self.bounds[shard]
        c0 = int(cell[0])
        if not start <= c0 < stop:
            raise ClusterError(
                f"cell {tuple(cell)} is not in shard {shard} "
                f"(rows [{start}, {stop}))"
            )
        return (c0 - start,) + tuple(int(c) for c in cell[1:])

    def validate_box(
        self, low: Sequence[int], high: Sequence[int]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Bounds/arity/order checks matching the method contract."""
        low = tuple(int(c) for c in low)
        high = tuple(int(c) for c in high)
        if len(low) != self.ndim or len(high) != self.ndim:
            raise RangeError(
                f"range ({low}, {high}) does not match cube arity "
                f"{self.ndim}"
            )
        for axis, (lo, hi, size) in enumerate(zip(low, high, self.shape)):
            if lo > hi:
                raise RangeError(
                    f"inverted range on axis {axis}: {lo} > {hi}"
                )
            if lo < 0 or hi >= size:
                raise RangeError(
                    f"range ({low}, {high}) out of bounds on axis "
                    f"{axis} (size {size})"
                )
        return low, high

    def split_box(
        self, low: Sequence[int], high: Sequence[int]
    ) -> List[BoxSplit]:
        """Cut one inclusive query box into per-shard local sub-boxes.

        Returns ``[(shard, local_low, local_high), ...]`` covering the
        box exactly once: summing the shards' partial range sums yields
        the global answer with no overlap and no gap.
        """
        low, high = self.validate_box(low, high)
        first = bisect.bisect_right(self._starts, low[0]) - 1
        pieces: List[BoxSplit] = []
        for shard in range(first, self.num_shards):
            start, stop = self.bounds[shard]
            if start > high[0]:
                break
            lo0 = max(low[0], start) - start
            hi0 = min(high[0], stop - 1) - start
            pieces.append(
                (shard, (lo0,) + low[1:], (hi0,) + high[1:])
            )
        return pieces

    def split_updates(
        self, updates: Sequence[Tuple[Sequence[int], object]]
    ) -> Dict[int, List[Tuple[Tuple[int, ...], object]]]:
        """Group ``(cell, delta)`` pairs by owning shard, localized.

        Order within each shard preserves submission order, so a
        per-shard sub-group applies the same deltas in the same order
        the caller issued them.
        """
        grouped: Dict[int, List[Tuple[Tuple[int, ...], object]]] = {}
        for cell, delta in updates:
            shard = self.shard_of(cell)
            grouped.setdefault(shard, []).append(
                (self.to_local(shard, cell), delta)
            )
        return grouped

    def describe(self) -> Dict:
        """Routing table as a plain dict (for ``stats()`` and docs)."""
        return {
            "shape": list(self.shape),
            "num_shards": self.num_shards,
            "bounds": [list(b) for b in self.bounds],
            "epoch": self.epoch,
        }

    def __repr__(self) -> str:
        return (
            f"ShardMap(shape={self.shape}, num_shards={self.num_shards}, "
            f"bounds={self.bounds}, epoch={self.epoch})"
        )

"""One cluster member: a :class:`CubeService` plus its failure surface.

A :class:`ClusterNode` wraps a single-shard service with the two things
the cluster layer needs that the service itself must not know about:

* **identity and role** — a stable ``node_id`` (``"s{shard}.n{i}"``),
  its shard, whether it is currently the primary, and whether it has
  been fenced off (``dead``) or fallen behind replication (``lagging``);
* **an injection point** — every operation first calls
  :meth:`ClusterNode.guard`, which consults the cluster's
  :class:`~repro.faults.FaultPlan` (``on_node_op``): injected kills and
  partitions surface here as exceptions, injected latency spikes as a
  sleep. This is what makes hedged reads, breaker trips, and failovers
  reproducible under a seed.

``NODE_FAILURES`` is the closed set of exception types the cluster
treats as "this node is unavailable" (worth a breaker count, a hedge, or
a failover). Everything else — :class:`~repro.errors.RangeError` from a
malformed query, say — is a *caller* bug and propagates unchanged, no
matter which replica raised it.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import NodeUnavailableError, WALError
from repro.faults import FaultPlan, InjectedFault
from repro.serve.service import CubeService, ServiceClosedError

#: Exceptions that mean "node unavailable", never "query invalid".
NODE_FAILURES = (
    InjectedFault,
    NodeUnavailableError,
    ServiceClosedError,
    WALError,
    TimeoutError,
    OSError,
)


class ClusterNode:
    """One replica of one shard.

    Args:
        node_id: globally unique name, by convention ``"s{shard}.n{i}"``.
        shard_id: which :class:`~repro.cluster.shardmap.ShardMap` slab
            this node serves.
        service: the wrapped single-shard :class:`CubeService`.
        durability_dir: the service's WAL directory (primaries only);
            replicas resync and failover recovery read from the current
            primary's directory.
        faults: optional shared :class:`FaultPlan`; ``None`` disables
            injection entirely.
    """

    def __init__(
        self,
        node_id: str,
        shard_id: int,
        service: CubeService,
        *,
        durability_dir=None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.node_id = str(node_id)
        self.shard_id = int(shard_id)
        self.service = service
        self.durability_dir = durability_dir
        self.faults = faults
        self.is_primary = False
        self.lagging = False
        self.dead = False

    # -- fault surface -------------------------------------------------------

    def guard(self, kind: str = "read") -> None:
        """Fault-injection choke point; every public op passes through.

        Raises :class:`~repro.faults.NodeKilled` /
        :class:`~repro.faults.NodePartitioned` when the plan says so,
        sleeps out an injected latency spike otherwise, and refuses
        fenced nodes outright.
        """
        if self.dead:
            raise NodeUnavailableError(f"node {self.node_id} is fenced")
        if self.faults is not None:
            extra = self.faults.on_node_op(self.node_id, kind)
            if extra > 0.0:
                time.sleep(extra)

    # -- reads ---------------------------------------------------------------

    def probe(self) -> int:
        """Cheap liveness check; returns the node's current version."""
        self.guard("probe")
        return self.service.version

    def range_sum_many(self, lows, highs) -> Tuple[np.ndarray, int]:
        """Batched local range sums plus the serving snapshot version."""
        self.guard("read")
        return self.service.query_many(lows, highs)

    def total(self):
        """Whole-slab sum (used by probes and tests)."""
        self.guard("read")
        return self.service.total()

    def snapshot_digest(self) -> Tuple[int, str]:
        """``(version, sha256)`` of the node's published snapshot."""
        self.guard("read")
        return self.service.snapshot_digest()

    @property
    def version(self) -> int:
        return self.service.version

    # -- writes --------------------------------------------------------------

    def submit_batch(
        self,
        updates: Sequence[Tuple[Sequence[int], object]],
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Queue one atomic local group; returns its sequence number."""
        self.guard("write")
        return self.service.submit_batch(updates, timeout=timeout)

    def flush(self, timeout: Optional[float] = None) -> int:
        self.guard("write")
        return self.service.flush(timeout=timeout)

    # -- lifecycle -----------------------------------------------------------

    def self_check(
        self,
        probes: int = 16,
        seed: int = 0,
        repair=True,
        *,
        timeout: Optional[float] = None,
        deadline=None,
    ):
        return self.service.self_check(
            probes=probes, seed=seed, repair=repair,
            timeout=timeout, deadline=deadline,
        )

    def close(self) -> None:
        self.dead = True
        self.service.close()

    def abandon(self) -> None:
        """Fence the node: crash-stop its service without draining."""
        self.dead = True
        self.service.abandon()

    def __repr__(self) -> str:
        role = "primary" if self.is_primary else "replica"
        state = "dead" if self.dead else ("lagging" if self.lagging else "ok")
        return (
            f"ClusterNode({self.node_id!r}, shard={self.shard_id}, "
            f"{role}, {state})"
        )

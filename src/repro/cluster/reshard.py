"""Live elastic resharding: split/merge shards with zero acked loss.

A migration moves one slab boundary while the cluster keeps serving.
The coordinator walks a fixed phase machine, with a fault-injection and
observation point at every phase entry::

    plan -> seed -> tail_replay -> dual_write -> flip -> verify -> retire
      |       |          |             |          |        |
      +-------+----------+-------------+          +--(mismatch)--> rollback
              (any failure) -> rollback               (restore prior epoch)

* **plan** — derive the successor :class:`~repro.cluster.shardmap.ShardMap`
  (epoch strictly greater than any epoch this cluster has ever used) and
  register the migration with the cluster's write path, which starts
  buffering every acked group routed to a source shard.
* **seed** — copy each source primary's durability directory live and
  rebuild state from it via :func:`~repro.serve.wal.recover_state` —
  the *same* checkpoint-plus-WAL-tail-replay implementation crash
  recovery trusts — then construct the target replica sets from the
  recovered slab rows. Target breakers start in *warming* mode so a
  probe failure during replay can never quarantine them.
* **tail_replay** — drain the write buffer into the targets, skipping
  groups the seed already contained (sequence-number fenced per
  source), then atomically switch to…
* **dual_write** — every group acked by a source primary is mirrored
  synchronously into its target(s) before the client's call returns:
  the window where old and new layouts hold identical acked state.
* **flip** — under the cluster's topology lock (writes quiesced, every
  replica set flushed so applied == acked): install the new shard map
  and replica-set list in one assignment pair, renumber shard ids,
  rebuild degraded-read aggregates exactly from the new primaries, and
  reverse the mirror — writes now route to the targets and are mirrored
  *back* to the old sources, keeping rollback lossless through verify.
* **verify** — the anti-entropy scrubber digest-compares every migrated
  slab against the still-live sources before anything is retired.
* **retire** — stop the reverse mirror, close the old source nodes,
  drop their breakers, remove seeding scratch.

Any pre-flip failure rolls back by disposing the targets — the old
topology was never touched, so no acked group can be lost. A verify
failure rolls back by restoring the saved shard map and replica sets;
the reverse mirror kept the old primaries complete, so the restored
epoch serves every acked group. Epochs are never reused: a rollback
returns to the prior map, and the next migration claims a strictly
larger epoch, so cache entries stamped with a failed migration's epoch
can never match a live stamp.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.shardmap import ShardMap
from repro.errors import ClusterError, ReshardError, StorageError, WALError
from repro.serve import wal as wal_mod

#: the migration state machine, in order
PHASES = (
    "plan", "seed", "tail_replay", "dual_write", "flip", "verify", "retire"
)


class Migration:
    """In-flight migration state shared with the cluster's write path.

    The cluster's ``submit_batch`` calls :meth:`on_write` (under the
    topology lock) for every acked sub-group; depending on ``mode`` the
    group is buffered for tail replay, mirrored forward into the
    targets (dual-write window), or mirrored backward into the sources
    (post-flip, keeping rollback lossless).
    """

    MODE_BUFFER = "buffer"
    MODE_DUAL = "dual"
    MODE_REVERSE = "reverse"
    MODE_OFF = "off"

    def __init__(
        self,
        kind: str,
        source_shards: Sequence[int],
        old_map: ShardMap,
        new_map: ShardMap,
    ) -> None:
        self.kind = str(kind)
        self.source_shards = tuple(int(s) for s in source_shards)
        self.old_map = old_map
        self.new_map = new_map
        first = self.source_shards[0]
        count = (
            new_map.num_shards - old_map.num_shards
            + len(self.source_shards)
        )
        #: indices the targets occupy in the *new* topology
        self.target_new_indices = tuple(range(first, first + count))
        self.target_bounds: Tuple[Tuple[int, int], ...] = tuple(
            new_map.bounds[i] for i in self.target_new_indices
        )
        self.mode = self.MODE_BUFFER
        self.phase = "plan"
        #: (ReplicaSet, (start, stop)) pairs, filled by the coordinator
        self.sources: List = []
        self.targets: List = []
        self.seed_versions: Dict[int, int] = {}
        self.buffer: List[Tuple[int, int, list]] = []
        self.failed: Optional[BaseException] = None
        self.rollback_unsafe = False
        self.scratch_dirs: List[str] = []
        self.saved_sets: Optional[list] = None
        self.saved_map: Optional[ShardMap] = None

    # -- write-path hooks (caller holds the cluster topology lock) -----------

    def on_write(self, cluster, shard_index, local_updates, seq) -> None:
        if self.mode == self.MODE_BUFFER:
            if shard_index in self.source_shards:
                self.buffer.append(
                    (int(shard_index), int(seq), list(local_updates))
                )
        elif self.mode == self.MODE_DUAL:
            if shard_index in self.source_shards:
                try:
                    self.mirror_to_targets(shard_index, local_updates)
                    cluster.metrics.record_dual_write()
                except Exception as error:  # noqa: BLE001 - poisons the
                    # migration, never the client's (already durable) ack
                    self.failed = error
        elif self.mode == self.MODE_REVERSE:
            if shard_index in self.target_new_indices:
                try:
                    self.mirror_to_sources(shard_index, local_updates)
                    cluster.metrics.record_dual_write()
                except Exception:  # noqa: BLE001 - the old copy is now
                    # incomplete: rollback would lose this acked group
                    self.rollback_unsafe = True

    def mirror_to_targets(self, source_shard, local_updates) -> None:
        """Re-route one source-local acked group into the target(s)."""
        source_start = None
        for (replica_set, (start, stop)), shard in zip(
            self.sources, self.source_shards
        ):
            if shard == source_shard:
                source_start = start
                break
        if source_start is None:
            raise ClusterError(
                f"shard {source_shard} is not a migration source"
            )
        grouped: Dict[int, list] = {}
        for cell, delta in local_updates:
            row = source_start + int(cell[0])
            for idx, (_, (t_start, t_stop)) in enumerate(self.targets):
                if t_start <= row < t_stop:
                    grouped.setdefault(idx, []).append(
                        (
                            (row - t_start,)
                            + tuple(int(c) for c in cell[1:]),
                            delta,
                        )
                    )
                    break
            else:
                raise ClusterError(
                    f"row {row} falls outside every target slab"
                )
        for idx in sorted(grouped):
            self.targets[idx][0].submit(grouped[idx])

    def mirror_to_sources(self, target_index, local_updates) -> None:
        """Post-flip reverse mirror: target-local group back to sources."""
        position = self.target_new_indices.index(int(target_index))
        _, (t_start, _) = self.targets[position]
        grouped: Dict[int, list] = {}
        for cell, delta in local_updates:
            row = t_start + int(cell[0])
            for idx, (_, (s_start, s_stop)) in enumerate(self.sources):
                if s_start <= row < s_stop:
                    grouped.setdefault(idx, []).append(
                        (
                            (row - s_start,)
                            + tuple(int(c) for c in cell[1:]),
                            delta,
                        )
                    )
                    break
            else:
                raise ClusterError(
                    f"row {row} falls outside every source slab"
                )
        for idx in sorted(grouped):
            self.sources[idx][0].submit(grouped[idx])

    def describe(self) -> Dict:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "mode": self.mode,
            "source_shards": list(self.source_shards),
            "target_bounds": [list(b) for b in self.target_bounds],
            "old_epoch": self.old_map.epoch,
            "new_epoch": self.new_map.epoch,
        }


class ReshardCoordinator:
    """Drives one split or merge migration end to end.

    Args:
        cluster: the live :class:`~repro.cluster.CubeCluster`.
        phase_hook: optional callable invoked with each phase name at
            entry — the chaos soak's injection point for kills and
            partitions at exact phase boundaries.

    One coordinator runs one migration; the cluster enforces that only
    one migration is in flight at a time.
    """

    #: bounded lock-free tail-replay rounds before the final drain
    #: happens under the topology lock (writes briefly blocked)
    MAX_REPLAY_ROUNDS = 64

    def __init__(self, cluster, *, phase_hook=None) -> None:
        self.cluster = cluster
        self.phase_hook = phase_hook
        self.phases_entered: List[str] = []

    # -- public API ----------------------------------------------------------

    def split(self, shard: int, at_row: Optional[int] = None) -> Dict:
        """Split ``shard`` in two at ``at_row`` (global row; defaults to
        the slab midpoint), live. Returns a migration summary."""
        cluster = self.cluster
        with cluster._topology:
            old_map = cluster.shardmap
            derived = old_map.split_shard(shard, at_row)
            new_map = ShardMap.from_bounds(
                old_map.shape, derived.bounds,
                epoch=cluster._claim_epoch(),
            )
        migration = Migration("split", (shard,), old_map, new_map)
        return self._execute(migration)

    def merge(self, shard: int) -> Dict:
        """Fuse ``shard`` and ``shard + 1`` into one slab, live."""
        cluster = self.cluster
        with cluster._topology:
            old_map = cluster.shardmap
            derived = old_map.merge_shards(shard)
            new_map = ShardMap.from_bounds(
                old_map.shape, derived.bounds,
                epoch=cluster._claim_epoch(),
            )
        migration = Migration(
            "merge", (shard, shard + 1), old_map, new_map
        )
        return self._execute(migration)

    # -- phase machine -------------------------------------------------------

    def _phase(self, migration: Migration, name: str) -> None:
        migration.phase = name
        self.phases_entered.append(name)
        self.cluster.metrics.record_reshard_phase(name)
        if self.phase_hook is not None:
            self.phase_hook(name)
        faults = self.cluster.faults
        if faults is not None:
            on_phase = getattr(faults, "on_reshard_phase", None)
            if on_phase is not None:
                on_phase(name)

    def _execute(self, migration: Migration) -> Dict:
        cluster = self.cluster
        cluster.metrics.record_reshard_started()
        try:
            self._phase(migration, "plan")
            with cluster._topology:
                if cluster._migration is not None:
                    raise ReshardError(
                        "another migration is already in flight",
                        phase="plan",
                    )
                if cluster.shardmap is not migration.old_map:
                    raise ReshardError(
                        "shard map changed since the migration was "
                        "planned", phase="plan",
                    )
                migration.sources = [
                    (
                        cluster.replica_sets[s],
                        cluster.shardmap.bounds[s],
                    )
                    for s in migration.source_shards
                ]
                # registration starts source-write buffering immediately
                cluster._migration = migration
            self._phase(migration, "seed")
            self._seed_targets(migration)
            self._phase(migration, "tail_replay")
            self._tail_replay(migration)
            self._phase(migration, "dual_write")
            if migration.failed is not None:
                raise migration.failed
            self._phase(migration, "flip")
            self._flip(migration)
        except ReshardError:
            self._rollback_pre_flip(migration)
            raise
        except Exception as error:  # noqa: BLE001 - any pre-flip failure
            self._rollback_pre_flip(migration)
            raise ReshardError(
                f"migration failed in phase {migration.phase!r}: {error}",
                phase=migration.phase, rolled_back=True,
            ) from error
        try:
            self._phase(migration, "verify")
            report = cluster.scrubber.verify_migration(migration)
            if report["mismatches"]:
                raise ReshardError(
                    "migrated slabs diverge from their sources: "
                    + "; ".join(report["mismatches"]),
                    phase="verify",
                )
            self._phase(migration, "retire")
            self._retire(migration)
        except Exception as error:  # noqa: BLE001 - post-flip failure
            if migration.rollback_unsafe:
                with cluster._topology:
                    if cluster._migration is migration:
                        cluster._migration = None
                    migration.mode = Migration.MODE_OFF
                raise ReshardError(
                    f"phase {migration.phase!r} failed after the reverse "
                    f"mirror was lost; the new epoch stays installed "
                    f"({error})",
                    phase=migration.phase, rolled_back=False,
                ) from error
            self._rollback_post_flip(migration)
            if isinstance(error, ReshardError):
                raise ReshardError(
                    str(error), phase=error.phase, rolled_back=True
                ) from error
            raise ReshardError(
                f"migration failed in phase {migration.phase!r}: {error}",
                phase=migration.phase, rolled_back=True,
            ) from error
        return {
            "ok": True,
            "kind": migration.kind,
            "old_epoch": migration.old_map.epoch,
            "new_epoch": migration.new_map.epoch,
            "num_shards": migration.new_map.num_shards,
            "phases": list(self.phases_entered),
            "verify": report,
        }

    # -- phase bodies --------------------------------------------------------

    def _seed_targets(self, migration: Migration) -> None:
        """Checkpoint-copy + WAL-tail-replay each source, slice the
        recovered rows into target slabs, build warming replica sets."""
        cluster = self.cluster
        epoch = migration.new_map.epoch
        scratch_root = os.path.join(
            cluster._data_dir, f"reshard-e{epoch}"
        )
        migration.scratch_dirs.append(scratch_root)
        pieces = []
        row_lo = min(start for _, (start, _) in migration.sources)
        for (replica_set, (start, stop)), shard in sorted(
            zip(migration.sources, migration.source_shards),
            key=lambda item: item[0][1][0],
        ):
            source_dir = replica_set.primary.durability_dir
            copy_dir = os.path.join(scratch_root, f"src-{shard}")
            state = self._copy_and_recover(source_dir, copy_dir)
            migration.seed_versions[shard] = int(state.version)
            pieces.append((start, np.asarray(state.method.to_array())))
        pieces.sort(key=lambda item: item[0])
        image = (
            pieces[0][1]
            if len(pieces) == 1
            else np.concatenate([arr for _, arr in pieces])
        )
        for new_index, (t_start, t_stop) in zip(
            migration.target_new_indices, migration.target_bounds
        ):
            slab = np.array(image[t_start - row_lo:t_stop - row_lo])
            directory = os.path.join(
                cluster._data_dir, f"shard-e{epoch}-{new_index}"
            )
            if os.path.exists(directory):
                # leftover from a crashed earlier attempt: the fresh
                # seed checkpoint below is the only state that counts
                shutil.rmtree(directory)
            replica_set = cluster._build_replica_set(
                new_index,
                slab,
                directory,
                node_prefix=f"e{epoch}s{new_index}",
                warming=True,
            )
            migration.targets.append(
                (replica_set, (t_start, t_stop))
            )

    #: a live durability-dir copy races the source's checkpointer:
    #: rotation can delete an old checkpoint or prune a WAL segment
    #: mid-copy. Such a copy fails *loudly* on recovery (vanished file,
    #: sequence gap, digest mismatch — never a silently stale state),
    #: so the fix is simply a bounded retry against a quieter moment.
    SEED_COPY_ATTEMPTS = 5

    def _copy_and_recover(self, source_dir: str, copy_dir: str):
        last_error: Optional[BaseException] = None
        for _ in range(self.SEED_COPY_ATTEMPTS):
            if os.path.exists(copy_dir):
                shutil.rmtree(copy_dir)
            try:
                # a live copy may catch a mid-append WAL tail;
                # recover_state truncates it exactly like crash
                # recovery would
                shutil.copytree(source_dir, copy_dir)
                return wal_mod.recover_state(copy_dir)
            except (OSError, shutil.Error, StorageError, WALError) as error:
                last_error = error
        raise ClusterError(
            f"seeding could not take a consistent copy of "
            f"{source_dir!r} after {self.SEED_COPY_ATTEMPTS} attempts"
        ) from last_error

    def _tail_replay(self, migration: Migration) -> None:
        """Drain buffered source groups into the targets (seed-version
        fenced), then atomically enter the dual-write window."""
        cluster = self.cluster

        def apply(batch) -> None:
            for shard, seq, updates in batch:
                if seq <= migration.seed_versions.get(shard, 0):
                    continue  # the seed's WAL replay already holds it
                migration.mirror_to_targets(shard, updates)

        for _ in range(self.MAX_REPLAY_ROUNDS):
            with cluster._topology:
                batch, migration.buffer = migration.buffer, []
                if not batch:
                    migration.mode = Migration.MODE_DUAL
                    return
            apply(batch)
        # a sustained write stream kept the buffer busy: finish the
        # drain with writes briefly blocked, then open the dual window
        with cluster._topology:
            apply(migration.buffer)
            migration.buffer = []
            migration.mode = Migration.MODE_DUAL

    def _flip(self, migration: Migration) -> None:
        """Atomic epoch-stamped topology swap, writes quiesced."""
        cluster = self.cluster
        with cluster._topology:
            # applied == acked everywhere before anything is compared,
            # renumbered, or summarized
            for replica_set in cluster.replica_sets:
                replica_set.flush()
            for replica_set, _ in migration.targets:
                replica_set.flush()
            if migration.failed is not None:
                raise migration.failed
            first = migration.source_shards[0]
            last = migration.source_shards[-1]
            old_sets = cluster.replica_sets
            new_sets = (
                list(old_sets[:first])
                + [rs for rs, _ in migration.targets]
                + list(old_sets[last + 1:])
            )
            if len(new_sets) != migration.new_map.num_shards:
                raise ReshardError(
                    f"planned {migration.new_map.num_shards} shards, "
                    f"assembled {len(new_sets)} replica sets",
                    phase="flip",
                )
            migration.saved_sets = old_sets
            migration.saved_map = cluster.shardmap
            for index, replica_set in enumerate(new_sets):
                replica_set.shard_id = index
                for node in replica_set.nodes:
                    node.shard_id = index
            for replica_set, _ in migration.targets:
                for node in replica_set.nodes:
                    cluster._breakers[node.node_id].set_warming(False)
            arrays = {}
            for index, replica_set in enumerate(new_sets):
                array, _ = replica_set.primary.service.snapshot_array()
                arrays[index] = array
            cluster.aggregates.rebuild(arrays)
            migration.mode = Migration.MODE_REVERSE
            cluster.shardmap = migration.new_map
            cluster.replica_sets = new_sets
            cluster.metrics.record_reshard_flip()

    def _retire(self, migration: Migration) -> None:
        cluster = self.cluster
        with cluster._topology:
            if cluster._migration is migration:
                cluster._migration = None
            migration.mode = Migration.MODE_OFF
        for replica_set, _ in migration.sources:
            for node in replica_set.nodes:
                try:
                    node.close()
                except Exception:  # noqa: BLE001 - already dead is fine
                    node.dead = True
                cluster._breakers.pop(node.node_id, None)
        self._cleanup_scratch(migration)

    # -- rollback ------------------------------------------------------------

    def _dispose_targets(self, migration: Migration) -> None:
        for replica_set, _ in migration.targets:
            for node in replica_set.nodes:
                try:
                    node.close()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    node.dead = True
                self.cluster._breakers.pop(node.node_id, None)
        migration.targets = []

    def _cleanup_scratch(self, migration: Migration) -> None:
        for path in migration.scratch_dirs:
            shutil.rmtree(path, ignore_errors=True)
        migration.scratch_dirs = []

    def _rollback_pre_flip(self, migration: Migration) -> None:
        """The old topology was never replaced: deregister and dispose.
        No acked group can be lost — the sources acked everything."""
        cluster = self.cluster
        with cluster._topology:
            if cluster._migration is migration:
                cluster._migration = None
            migration.mode = Migration.MODE_OFF
        self._dispose_targets(migration)
        self._cleanup_scratch(migration)
        cluster.metrics.record_reshard_rollback()

    def _rollback_post_flip(self, migration: Migration) -> None:
        """Restore the saved topology; the reverse mirror kept the old
        primaries complete, so the restored epoch serves every acked
        group."""
        cluster = self.cluster
        with cluster._topology:
            if cluster._migration is migration:
                cluster._migration = None
            migration.mode = Migration.MODE_OFF
            old_sets = migration.saved_sets
            for index, replica_set in enumerate(old_sets):
                replica_set.shard_id = index
                for node in replica_set.nodes:
                    node.shard_id = index
            cluster.shardmap = migration.saved_map
            cluster.replica_sets = old_sets
            arrays = {}
            for index, replica_set in enumerate(old_sets):
                try:
                    replica_set.flush()
                    array, _ = (
                        replica_set.primary.service.snapshot_array()
                    )
                except Exception:  # noqa: BLE001 - a downed shard just
                    # loses its degraded-read aggregate, not the rollback
                    continue
                arrays[index] = array
            cluster.aggregates.rebuild(arrays)
        self._dispose_targets(migration)
        self._cleanup_scratch(migration)
        cluster.metrics.record_reshard_rollback()


__all__ = ["Migration", "PHASES", "ReshardCoordinator"]

"""The cluster facade: one cube, many shards, replicated serving.

:class:`CubeCluster` composes the pieces of :mod:`repro.cluster` into
the object a client talks to:

* a :class:`~repro.cluster.shardmap.ShardMap` slices the cube along its
  leading dimension into one slab per shard;
* each shard is served by a
  :class:`~repro.cluster.replicaset.ReplicaSet` — a durable primary
  (WAL-acked writes, its own ``shard-<s>/`` directory under
  ``data_dir``) plus ``replication_factor - 1`` in-memory replicas fed
  by forwarding;
* a :class:`~repro.cluster.health.HealthMonitor` probes every node and
  trips per-node circuit breakers; an
  :class:`~repro.cluster.scrub.AntiEntropyScrubber` digest-compares
  replicas against their primary and repairs divergence.

Client calls take an optional :class:`~repro.deadline.Deadline`; shard
reads are hedged per :class:`~repro.cluster.replicaset.HedgePolicy`.
Failure handling is exact, never approximate: a query that cannot reach
every shard it spans raises
:class:`~repro.errors.ClusterUnavailableError` (a write additionally
reports which shards *did* ack in ``.acked``) rather than returning a
partial sum.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.health import (
    BreakerPolicy,
    CircuitBreaker,
    HealthMonitor,
)
from repro.cluster.node import NODE_FAILURES, ClusterNode
from repro.cluster.replicaset import HedgePolicy, ReplicaSet
from repro.cluster.scrub import AntiEntropyScrubber
from repro.cluster.shardmap import ShardMap
from repro.deadline import Deadline
from repro.errors import (
    ClusterError,
    ClusterUnavailableError,
    DeadlineExceededError,
)
from repro.metrics.cluster import ClusterMetrics
from repro.serve.service import CubeService
from repro.serve.wal import DurabilityPolicy


class CubeCluster:
    """A replicated, sharded serving cluster for one data cube.

    Args:
        method_cls: :class:`~repro.core.base.RangeSumMethod` subclass
            every node serves its slab with.
        array: the full initial cube; sliced into per-shard slabs.
        data_dir: root directory for per-shard durability
            (``data_dir/shard-<s>/`` holds shard ``s``'s WAL and
            checkpoints). Required — primaries ack only after the WAL
            says so.
        num_shards: slabs along the leading dimension.
        replication_factor: nodes per shard (1 primary + the rest
            replicas).
        method_kwargs: forwarded to every node's method construction.
        checkpoint_every: per-primary checkpoint cadence (see
            :class:`~repro.serve.wal.DurabilityPolicy`).
        fsync: whether primary acks wait for the WAL fsync.
        seed: seeds the health monitor's probe order and the scrubber's
            shard order.
        fault_plan: shared :class:`~repro.faults.FaultPlan` consulted on
            every node-level operation (kills, partitions, read latency
            spikes) — the cluster's chaos surface.
        node_fault_plans: per-node plans handed to that node's
            *service* (WAL faults, ``crash_at_group``); keyed by node
            id, e.g. ``{"s0.n0": FaultPlan(crash_at_group=3)}``. A node
            promoted by failover deliberately does not inherit the dead
            primary's plan.
        hedge: hedged-read policy shared by every shard.
        breaker: circuit-breaker policy shared by every node.
        max_pending_groups: per-node submission-queue bound.

    Use as a context manager or call :meth:`close`::

        with CubeCluster(RelativePrefixSumCube, cube, data_dir=tmp,
                         num_shards=2, replication_factor=2) as cluster:
            cluster.submit_batch([((3, 4), +10.0)])
            cluster.flush()
            total = cluster.range_sum((0, 0), (7, 7))
    """

    def __init__(
        self,
        method_cls,
        array: np.ndarray,
        *,
        data_dir,
        num_shards: int = 2,
        replication_factor: int = 2,
        method_kwargs: Optional[Dict] = None,
        checkpoint_every: int = 64,
        fsync: bool = True,
        seed: int = 0,
        fault_plan=None,
        node_fault_plans: Optional[Dict[str, object]] = None,
        hedge: Optional[HedgePolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        max_pending_groups: Optional[int] = None,
    ) -> None:
        if replication_factor < 1:
            raise ClusterError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        array = np.asarray(array)
        self.shardmap = ShardMap(array.shape, num_shards)
        self.metrics = ClusterMetrics()
        self.faults = fault_plan
        self._method_kwargs = dict(method_kwargs or {})
        self._data_dir = os.fspath(data_dir)
        self._breaker_policy = breaker or BreakerPolicy()
        node_plans = dict(node_fault_plans or {})
        self._executor = ThreadPoolExecutor(
            max_workers=max(
                4, 2 * self.shardmap.num_shards * replication_factor
            ),
            thread_name_prefix="cube-cluster",
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.replica_sets: List[ReplicaSet] = []
        self._closed = False
        try:
            for shard in range(self.shardmap.num_shards):
                slab = self.shardmap.subarray(array, shard)
                members: List[ClusterNode] = []
                for i in range(replication_factor):
                    node_id = f"s{shard}.n{i}"
                    if i == 0:
                        directory = os.path.join(
                            self._data_dir, f"shard-{shard}"
                        )
                        os.makedirs(directory, exist_ok=True)
                        service = CubeService(
                            method_cls,
                            slab,
                            method_kwargs=self._method_kwargs,
                            durability=DurabilityPolicy(
                                dir=directory,
                                checkpoint_every=checkpoint_every,
                                fsync=fsync,
                            ),
                            max_pending_groups=max_pending_groups,
                            fault_plan=node_plans.get(node_id),
                        )
                    else:
                        directory = None
                        service = CubeService(
                            method_cls,
                            slab,
                            method_kwargs=self._method_kwargs,
                            max_pending_groups=max_pending_groups,
                            fault_plan=node_plans.get(node_id),
                        )
                    node = ClusterNode(
                        node_id,
                        shard,
                        service,
                        durability_dir=directory,
                        faults=fault_plan,
                    )
                    members.append(node)
                    self._breakers[node_id] = CircuitBreaker(
                        node_id,
                        self._breaker_policy,
                        metrics=self.metrics,
                    )
                self.replica_sets.append(
                    ReplicaSet(
                        shard,
                        members,
                        metrics=self.metrics,
                        executor=self._executor,
                        breakers=self._breakers,
                        hedge=hedge,
                    )
                )
        except BaseException:
            self.close()
            raise
        self.monitor = HealthMonitor(self, seed=seed)
        self.scrubber = AntiEntropyScrubber(self, seed=seed)

    # -- topology ------------------------------------------------------------

    def nodes(self) -> List[ClusterNode]:
        """Every member node across every shard."""
        return [n for rs in self.replica_sets for n in rs.nodes]

    def node(self, node_id: str) -> ClusterNode:
        for candidate in self.nodes():
            if candidate.node_id == node_id:
                return candidate
        raise ClusterError(f"no such node: {node_id!r}")

    def breaker(self, node_id: str) -> CircuitBreaker:
        return self._breakers[node_id]

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.shardmap.shape

    def version_vector(self) -> Tuple[int, ...]:
        """Per-shard last-acked sequence numbers, shard order.

        The cluster's snapshot stamp: the router's caching tiers key
        freshness on it, so a write to *any* shard invalidates exactly
        the cached entries whose stamp covered that shard.
        """
        return tuple(rs.last_acked for rs in self.replica_sets)

    # -- reads ---------------------------------------------------------------

    def range_sum_many(
        self,
        lows: Sequence[Sequence[int]],
        highs: Sequence[Sequence[int]],
        *,
        deadline: Optional[Deadline] = None,
        return_shard_versions: bool = False,
    ) -> np.ndarray:
        """Batched exact range sums across shards (hedged per shard).

        Every query box is split along shard boundaries; each involved
        shard answers its sub-boxes in one hedged batched read, and the
        partials are summed — exactly, because the slabs partition the
        cube. Raises :class:`ClusterUnavailableError` if any involved
        shard has no reachable replica (never a partial sum) and
        :class:`~repro.errors.DeadlineExceededError` when the budget
        runs out first.

        With ``return_shard_versions=True`` the result is
        ``(values, {shard: snapshot version})`` naming, per involved
        shard, the version the sub-box reads were actually served from —
        the provenance the query router stamps on cached answers.
        """
        lows = list(lows)
        highs = list(highs)
        if len(lows) != len(highs):
            raise ClusterError(
                f"{len(lows)} lows vs {len(highs)} highs"
            )
        # route: shard -> (query indices, local boxes)
        per_shard: Dict[int, Tuple[List[int], List, List]] = {}
        for i, (low, high) in enumerate(zip(lows, highs)):
            for shard, local_low, local_high in self.shardmap.split_box(
                low, high
            ):
                idx, slo, shi = per_shard.setdefault(shard, ([], [], []))
                idx.append(i)
                slo.append(local_low)
                shi.append(local_high)
        self.metrics.record_query(len(per_shard))
        out: Optional[np.ndarray] = None
        shard_versions: Dict[int, int] = {}
        for shard in sorted(per_shard):
            idx, slo, shi = per_shard[shard]
            try:
                values, version = self.replica_sets[shard].range_sum_many(
                    slo, shi, deadline
                )
            except ClusterUnavailableError:
                self.metrics.record_unavailable()
                raise
            except DeadlineExceededError:
                raise
            shard_versions[shard] = version
            values = np.asarray(values)
            if out is None:
                out = np.zeros(
                    len(lows), dtype=np.result_type(values.dtype)
                )
            np.add.at(out, np.asarray(idx, dtype=np.intp), values)
        if out is None:
            out = np.zeros(len(lows))
        if return_shard_versions:
            return out, shard_versions
        return out

    def range_sum(
        self,
        low: Sequence[int],
        high: Sequence[int],
        *,
        deadline: Optional[Deadline] = None,
    ):
        """One exact range sum across whichever shards the box spans."""
        return self.range_sum_many([low], [high], deadline=deadline)[0]

    def total(self, *, deadline: Optional[Deadline] = None):
        """Sum of the whole cube."""
        low = (0,) * self.shardmap.ndim
        high = tuple(n - 1 for n in self.shape)
        return self.range_sum(low, high, deadline=deadline)

    # -- writes --------------------------------------------------------------

    def submit_batch(
        self,
        updates: Iterable[Tuple[Sequence[int], object]],
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict[int, int]:
        """Route one group of ``(cell, delta)`` updates to its shards.

        Each involved shard receives its cells as one atomic local group
        (durably acked by that shard's primary before the next shard is
        touched). Returns ``{shard: acked sequence number}``. On a shard
        failure the call raises :class:`ClusterUnavailableError` whose
        ``acked`` attribute carries the shards that *did* commit — a
        cross-shard group is atomic per shard, not globally, and the
        error hands the caller exactly what it needs to reconcile.
        """
        grouped = self.shardmap.split_updates(list(updates))
        acked: Dict[int, int] = {}
        for shard in sorted(grouped):
            try:
                acked[shard] = self.replica_sets[shard].submit(
                    grouped[shard], timeout=timeout, deadline=deadline
                )
            except DeadlineExceededError as error:
                self.metrics.record_deadline_exceeded()
                raise ClusterUnavailableError(
                    f"deadline expired before shard {shard} acked: {error}",
                    acked=acked,
                ) from error
            except ClusterUnavailableError as error:
                self.metrics.record_unavailable()
                raise ClusterUnavailableError(
                    str(error), acked=acked
                ) from error
        return acked

    def flush(self, timeout: Optional[float] = None) -> Dict[int, int]:
        """Drain every shard; returns ``{shard: applied version}``."""
        return {
            rs.shard_id: rs.flush(timeout=timeout)
            for rs in self.replica_sets
        }

    # -- chaos hooks ---------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        """Chaos hook: make ``node_id`` fail every operation from now on.

        Requires a cluster-level fault plan (the kill is injected, so a
        later :meth:`~repro.faults.FaultPlan.revive` can resurrect the
        node for heal rounds).
        """
        if self.faults is None:
            raise ClusterError(
                "kill_node needs a cluster-level fault_plan"
            )
        self.node(node_id)  # validate the id
        self.faults.kill(node_id)

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        probe_interval_s: float = 0.25,
        scrub_interval_s: Optional[float] = None,
    ) -> "CubeCluster":
        """Start the background monitor (and scrubber, when given an
        interval); tests usually drive ``monitor.tick()`` /
        ``scrubber.scrub_once()`` synchronously instead."""
        self.monitor.start(probe_interval_s)
        if scrub_interval_s is not None:
            self.scrubber.start(scrub_interval_s)
        return self

    def stats(self) -> Dict:
        """Cluster-wide operational snapshot (one plain dict)."""
        nodes = {}
        for node in self.nodes():
            nodes[node.node_id] = {
                "shard": node.shard_id,
                "role": "primary" if node.is_primary else "replica",
                "state": (
                    "dead"
                    if node.dead
                    else ("lagging" if node.lagging else "ok")
                ),
                "breaker": self._breakers[node.node_id].state,
                "version": (
                    None if node.dead else node.service.version
                ),
            }
        return {
            "shardmap": self.shardmap.describe(),
            "nodes": nodes,
            "metrics": self.metrics.snapshot(),
            "monitor_ticks": self.monitor.ticks,
        }

    def close(self) -> None:
        """Stop background threads, close every node, free the pool."""
        if self._closed:
            return
        self._closed = True
        monitor = getattr(self, "monitor", None)
        if monitor is not None:
            monitor.stop()
        scrubber = getattr(self, "scrubber", None)
        if scrubber is not None:
            scrubber.stop()
        for replica_set in getattr(self, "replica_sets", []):
            for node in replica_set.nodes:
                if node.dead:
                    continue
                try:
                    node.close()
                except NODE_FAILURES:
                    node.dead = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "CubeCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CubeCluster(shards={self.shardmap.num_shards}, "
            f"nodes={len(self.nodes())}, shape={self.shape})"
        )

"""The cluster facade: one cube, many shards, replicated serving.

:class:`CubeCluster` composes the pieces of :mod:`repro.cluster` into
the object a client talks to:

* a :class:`~repro.cluster.shardmap.ShardMap` slices the cube along its
  leading dimension into one slab per shard; the map carries a
  monotonically increasing **epoch** that a live reshard bumps, so
  every stamp, cache entry, and wire answer is fenced to the layout it
  was computed under;
* each shard is served by a
  :class:`~repro.cluster.replicaset.ReplicaSet` — a durable primary
  (WAL-acked writes, its own ``shard-<s>/`` directory under
  ``data_dir``) plus ``replication_factor - 1`` in-memory replicas fed
  by forwarding;
* a :class:`~repro.cluster.health.HealthMonitor` probes every node and
  trips per-node circuit breakers; an
  :class:`~repro.cluster.scrub.AntiEntropyScrubber` digest-compares
  replicas against their primary and repairs divergence;
* a :class:`~repro.cluster.reshard.ReshardCoordinator` (reached via
  :meth:`CubeCluster.split_shard` / :meth:`CubeCluster.merge_shards`)
  moves slab boundaries live, flipping the topology atomically under
  the cluster's topology lock.

Client calls take an optional :class:`~repro.deadline.Deadline`; shard
reads are hedged per :class:`~repro.cluster.replicaset.HedgePolicy`.
Failure handling is exact by default: a query that cannot reach every
shard it spans raises :class:`~repro.errors.ClusterUnavailableError` (a
write additionally reports which shards *did* ack in ``.acked``) rather
than returning a partial sum. Opting in with
``range_sum_many(..., allow_estimate=True)`` instead answers the
affected queries from per-shard block aggregates
(:mod:`repro.cluster.degraded`) with an explicit ``estimate=True``
marker and a guaranteed error interval.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.degraded import RangeEstimate, ShardAggregates
from repro.cluster.health import (
    BreakerPolicy,
    CircuitBreaker,
    HealthMonitor,
)
from repro.cluster.node import NODE_FAILURES, ClusterNode
from repro.cluster.replicaset import HedgePolicy, ReplicaSet
from repro.cluster.scrub import AntiEntropyScrubber
from repro.cluster.shardmap import ShardMap
from repro.deadline import Deadline
from repro.errors import (
    ClusterError,
    ClusterUnavailableError,
    DeadlineExceededError,
)
from repro.metrics.cluster import ClusterMetrics
from repro.serve.service import CubeService
from repro.serve.wal import DurabilityPolicy


class CubeCluster:
    """A replicated, sharded serving cluster for one data cube.

    Args:
        method_cls: :class:`~repro.core.base.RangeSumMethod` subclass
            every node serves its slab with.
        array: the full initial cube; sliced into per-shard slabs.
        data_dir: root directory for per-shard durability
            (``data_dir/shard-<s>/`` holds shard ``s``'s WAL and
            checkpoints; migration targets live in
            ``shard-e<epoch>-<s>/``). Required — primaries ack only
            after the WAL says so.
        num_shards: slabs along the leading dimension.
        replication_factor: nodes per shard (1 primary + the rest
            replicas).
        method_kwargs: forwarded to every node's method construction.
        checkpoint_every: per-primary checkpoint cadence (see
            :class:`~repro.serve.wal.DurabilityPolicy`).
        fsync: whether primary acks wait for the WAL fsync.
        seed: seeds the health monitor's probe order and the scrubber's
            shard order.
        fault_plan: shared :class:`~repro.faults.FaultPlan` consulted on
            every node-level operation (kills, partitions, read latency
            spikes, reshard phase crashes) — the cluster's chaos
            surface.
        node_fault_plans: per-node plans handed to that node's
            *service* (WAL faults, ``crash_at_group``); keyed by node
            id, e.g. ``{"s0.n0": FaultPlan(crash_at_group=3)}``. A node
            promoted by failover deliberately does not inherit the dead
            primary's plan.
        hedge: hedged-read policy shared by every shard.
        breaker: circuit-breaker policy shared by every node.
        max_pending_groups: per-node submission-queue bound.

    Concurrency: ``_topology`` (an RLock) guards the shard map, the
    replica-set list, the breaker registry, and the in-flight migration
    pointer. Writes hold it for the whole call, so an epoch flip — also
    performed under it — strictly orders against every ack. Reads only
    grab a consistent ``(shardmap, replica_sets, epoch)`` snapshot
    under it, run lock-free against the replica sets, and retry once if
    the epoch moved mid-read; a flip therefore never makes a read fail.

    Use as a context manager or call :meth:`close`::

        with CubeCluster(RelativePrefixSumCube, cube, data_dir=tmp,
                         num_shards=2, replication_factor=2) as cluster:
            cluster.submit_batch([((3, 4), +10.0)])
            cluster.flush()
            total = cluster.range_sum((0, 0), (7, 7))
    """

    def __init__(
        self,
        method_cls,
        array: np.ndarray,
        *,
        data_dir,
        num_shards: int = 2,
        replication_factor: int = 2,
        method_kwargs: Optional[Dict] = None,
        checkpoint_every: int = 64,
        fsync: bool = True,
        seed: int = 0,
        fault_plan=None,
        node_fault_plans: Optional[Dict[str, object]] = None,
        hedge: Optional[HedgePolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        max_pending_groups: Optional[int] = None,
    ) -> None:
        if replication_factor < 1:
            raise ClusterError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        array = np.asarray(array)
        self.shardmap = ShardMap(array.shape, num_shards)
        self.metrics = ClusterMetrics()
        self.faults = fault_plan
        self._method_cls = method_cls
        self._method_kwargs = dict(method_kwargs or {})
        self._data_dir = os.fspath(data_dir)
        self._replication_factor = int(replication_factor)
        self._checkpoint_every = int(checkpoint_every)
        self._fsync = bool(fsync)
        self._hedge = hedge
        self._max_pending_groups = max_pending_groups
        self._breaker_policy = breaker or BreakerPolicy()
        node_plans = dict(node_fault_plans or {})
        self._executor = ThreadPoolExecutor(
            max_workers=max(
                4, 2 * self.shardmap.num_shards * replication_factor
            ),
            thread_name_prefix="cube-cluster",
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.replica_sets: List[ReplicaSet] = []
        self._topology = threading.RLock()
        self._migration = None
        self._epoch_counter = self.shardmap.epoch
        self._closed = False
        try:
            for shard in range(self.shardmap.num_shards):
                self.replica_sets.append(
                    self._build_replica_set(
                        shard,
                        self.shardmap.subarray(array, shard),
                        os.path.join(self._data_dir, f"shard-{shard}"),
                        node_plans=node_plans,
                    )
                )
            self.aggregates = ShardAggregates(self.shardmap, array)
        except BaseException:
            self.close()
            raise
        self.monitor = HealthMonitor(self, seed=seed)
        self.scrubber = AntiEntropyScrubber(self, seed=seed)

    def _build_replica_set(
        self,
        shard_index: int,
        slab: np.ndarray,
        directory: str,
        *,
        node_prefix: Optional[str] = None,
        warming: bool = False,
        node_plans: Optional[Dict[str, object]] = None,
    ) -> ReplicaSet:
        """One replica set (durable primary + in-memory replicas).

        Used both at construction (``node_prefix`` = ``s<shard>``) and
        by the reshard coordinator for migration targets, whose node
        ids are epoch-qualified (``e<epoch>s<shard>``) so they can
        never collide with any present or past member, and whose
        breakers start in warming mode.
        """
        prefix = node_prefix if node_prefix is not None else f"s{shard_index}"
        plans = node_plans or {}
        members: List[ClusterNode] = []
        for i in range(self._replication_factor):
            node_id = f"{prefix}.n{i}"
            if i == 0:
                os.makedirs(directory, exist_ok=True)
                node_dir: Optional[str] = directory
                service = CubeService(
                    self._method_cls,
                    slab,
                    method_kwargs=self._method_kwargs,
                    durability=DurabilityPolicy(
                        dir=directory,
                        checkpoint_every=self._checkpoint_every,
                        fsync=self._fsync,
                    ),
                    max_pending_groups=self._max_pending_groups,
                    fault_plan=plans.get(node_id),
                )
            else:
                node_dir = None
                service = CubeService(
                    self._method_cls,
                    slab,
                    method_kwargs=self._method_kwargs,
                    max_pending_groups=self._max_pending_groups,
                    fault_plan=plans.get(node_id),
                )
            node = ClusterNode(
                node_id,
                shard_index,
                service,
                durability_dir=node_dir,
                faults=self.faults,
            )
            members.append(node)
            node_breaker = CircuitBreaker(
                node_id, self._breaker_policy, metrics=self.metrics
            )
            if warming:
                node_breaker.set_warming(True)
            self._breakers[node_id] = node_breaker
        return ReplicaSet(
            shard_index,
            members,
            metrics=self.metrics,
            executor=self._executor,
            breakers=self._breakers,
            hedge=self._hedge,
        )

    # -- topology ------------------------------------------------------------

    def nodes(self) -> List[ClusterNode]:
        """Every member node across every shard."""
        with self._topology:
            return [n for rs in self.replica_sets for n in rs.nodes]

    def node(self, node_id: str) -> ClusterNode:
        for candidate in self.nodes():
            if candidate.node_id == node_id:
                return candidate
        with self._topology:
            migration = self._migration
        if migration is not None:
            for replica_set, _ in migration.targets:
                for candidate in replica_set.nodes:
                    if candidate.node_id == node_id:
                        return candidate
        raise ClusterError(f"no such node: {node_id!r}")

    def breaker(self, node_id: str) -> CircuitBreaker:
        return self._breakers[node_id]

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.shardmap.shape

    @property
    def epoch(self) -> int:
        """The live shard map's epoch (bumped by every flip)."""
        with self._topology:
            return self.shardmap.epoch

    def _claim_epoch(self) -> int:
        """Reserve the next epoch for a planned migration.

        Strictly greater than every epoch this cluster has ever used —
        including epochs of migrations that later rolled back — so a
        stamp minted under a failed migration can never match a live
        topology again.
        """
        with self._topology:
            self._epoch_counter = (
                max(self._epoch_counter, self.shardmap.epoch) + 1
            )
            return self._epoch_counter

    def version_vector(self) -> Tuple[int, ...]:
        """Per-shard last-acked sequence numbers, shard order.

        The cluster's snapshot stamp: the router's caching tiers key
        freshness on it, so a write to *any* shard invalidates exactly
        the cached entries whose stamp covered that shard.
        """
        with self._topology:
            return tuple(rs.last_acked for rs in self.replica_sets)

    def stamp(self) -> Tuple[int, ...]:
        """``(epoch, *version_vector)`` read atomically.

        The epoch prefix fences every consumer — router cache entries
        and net wire stamps — to the shard map the versions were read
        under: a version vector from one layout can never collide with
        one from another, even when the per-shard numbers happen to
        match.
        """
        with self._topology:
            return (
                self.shardmap.epoch,
                *(rs.last_acked for rs in self.replica_sets),
            )

    def migration_target_nodes(self) -> List[ClusterNode]:
        """Nodes of an in-flight migration's warming targets.

        The health monitor probes these alongside the regular members
        (their breakers are in warming mode: failures tally separately
        and never quarantine a target mid-seed). Post-flip the targets
        are regular members, so this returns them only while the
        migration is still seeding, replaying, or dual-writing.
        """
        with self._topology:
            migration = self._migration
            if migration is None:
                return []
            from repro.cluster.reshard import Migration

            if migration.mode not in (
                Migration.MODE_BUFFER, Migration.MODE_DUAL
            ):
                return []
            return [
                node
                for replica_set, _ in migration.targets
                for node in replica_set.nodes
            ]

    # -- reads ---------------------------------------------------------------

    def range_sum_many(
        self,
        lows: Sequence[Sequence[int]],
        highs: Sequence[Sequence[int]],
        *,
        deadline: Optional[Deadline] = None,
        return_shard_versions: bool = False,
        allow_estimate: bool = False,
    ):
        """Batched range sums across shards (hedged per shard).

        Every query box is split along shard boundaries; each involved
        shard answers its sub-boxes in one hedged batched read, and the
        partials are summed — exactly, because the slabs partition the
        cube. Raises :class:`ClusterUnavailableError` if any involved
        shard has no reachable replica (never a silent partial sum) and
        :class:`~repro.errors.DeadlineExceededError` when the budget
        runs out first. If the shard-map epoch changes mid-read (a live
        reshard flipped), an unavailable answer is retried once against
        the new topology before being surfaced.

        With ``allow_estimate=True`` the result is
        ``(values, estimates)``: queries touching an unreachable shard
        are answered from that shard's block aggregates instead of
        failing, and their slot in ``estimates`` carries a
        :class:`~repro.cluster.degraded.RangeEstimate` (explicit
        ``estimate=True`` marker, guaranteed ``[low, high]`` error
        interval containing the true acked sum, confidence, the
        degraded shards, and the epoch). Slots answered exactly hold
        ``None``. If even the aggregate is missing the call still
        raises — degraded reads are bounded, never silent guesses.

        With ``return_shard_versions=True`` the result additionally
        carries a receipt ``{"epoch": e, "versions": {shard: v}}``
        naming, per exactly-read shard, the snapshot version the
        sub-box reads were served from — the provenance the query
        router stamps on cached answers. Ordering:
        ``(values[, estimates][, receipt])``.
        """
        lows = list(lows)
        highs = list(highs)
        if len(lows) != len(highs):
            raise ClusterError(
                f"{len(lows)} lows vs {len(highs)} highs"
            )
        with self._topology:
            shardmap = self.shardmap
            replica_sets = list(self.replica_sets)
        try:
            return self._range_sum_attempt(
                lows, highs, shardmap, replica_sets,
                deadline=deadline,
                return_shard_versions=return_shard_versions,
                allow_estimate=allow_estimate,
            )
        except ClusterUnavailableError:
            with self._topology:
                if self.shardmap.epoch == shardmap.epoch:
                    raise
                # the topology flipped under this read: what looked
                # unavailable may simply have been retired — retry once
                # against the new epoch
                shardmap = self.shardmap
                replica_sets = list(self.replica_sets)
            return self._range_sum_attempt(
                lows, highs, shardmap, replica_sets,
                deadline=deadline,
                return_shard_versions=return_shard_versions,
                allow_estimate=allow_estimate,
            )

    def _range_sum_attempt(
        self,
        lows: List,
        highs: List,
        shardmap: ShardMap,
        replica_sets: List[ReplicaSet],
        *,
        deadline: Optional[Deadline],
        return_shard_versions: bool,
        allow_estimate: bool,
    ):
        """One read pass against a consistent topology snapshot."""
        # route: shard -> (query indices, local boxes)
        per_shard: Dict[int, Tuple[List[int], List, List]] = {}
        for i, (low, high) in enumerate(zip(lows, highs)):
            for shard, local_low, local_high in shardmap.split_box(
                low, high
            ):
                idx, slo, shi = per_shard.setdefault(shard, ([], [], []))
                idx.append(i)
                slo.append(local_low)
                shi.append(local_high)
        self.metrics.record_query(len(per_shard))
        out: Optional[np.ndarray] = None
        shard_versions: Dict[int, int] = {}
        degraded: Dict[int, Tuple[List[int], List, List]] = {}
        for shard in sorted(per_shard):
            idx, slo, shi = per_shard[shard]
            try:
                values, version = replica_sets[shard].range_sum_many(
                    slo, shi, deadline
                )
            except ClusterUnavailableError:
                if allow_estimate:
                    degraded[shard] = per_shard[shard]
                    continue
                self.metrics.record_unavailable()
                raise
            except DeadlineExceededError:
                raise
            shard_versions[shard] = version
            values = np.asarray(values)
            if out is None:
                out = np.zeros(
                    len(lows), dtype=np.result_type(values.dtype)
                )
            np.add.at(out, np.asarray(idx, dtype=np.intp), values)
        if out is None:
            out = np.zeros(len(lows))
        out = np.asarray(out, dtype=np.float64)
        estimates: Optional[List[Optional[RangeEstimate]]] = None
        if allow_estimate:
            estimates = [None] * len(lows)
            if degraded:
                out = self._fill_estimates(
                    out, degraded, estimates, shardmap.epoch
                )
        result: Tuple = (out,)
        if estimates is not None:
            result = result + (estimates,)
        if return_shard_versions:
            result = result + (
                {
                    "epoch": shardmap.epoch,
                    "versions": shard_versions,
                },
            )
        return result[0] if len(result) == 1 else result

    def _fill_estimates(
        self,
        out: np.ndarray,
        degraded: Dict[int, Tuple[List[int], List, List]],
        estimates: List[Optional[RangeEstimate]],
        epoch: int,
    ) -> np.ndarray:
        """Answer the degraded shards' sub-boxes from block aggregates.

        ``out`` holds the exact partial sums already collected; each
        degraded shard contributes a per-query point estimate plus a
        guaranteed interval, and affected slots in ``estimates`` get a
        :class:`RangeEstimate` whose interval is the exact partials
        shifted by the summed degraded-shard hulls.
        """
        point = out.copy()
        low_total = out.copy()
        high_total = out.copy()
        estimated = np.zeros(len(out), dtype=bool)
        degraded_shards = tuple(sorted(degraded))
        for shard in degraded_shards:
            idx, slo, shi = degraded[shard]
            try:
                triples = self.aggregates.estimate_boxes(shard, slo, shi)
            except ClusterError as error:
                # no aggregate either (e.g. rollback skipped a downed
                # shard): fail exactly rather than guess unboundedly
                self.metrics.record_estimate_refused()
                self.metrics.record_unavailable()
                raise ClusterUnavailableError(
                    f"shard {shard} is unreachable and has no "
                    f"aggregates to estimate from: {error}"
                ) from error
            index = np.asarray(idx, dtype=np.intp)
            np.add.at(point, index, [t[0] for t in triples])
            np.add.at(low_total, index, [t[1] for t in triples])
            np.add.at(high_total, index, [t[2] for t in triples])
            estimated[index] = True
        for i in np.flatnonzero(estimated):
            estimates[int(i)] = RangeEstimate(
                value=float(point[i]),
                low=float(low_total[i]),
                high=float(high_total[i]),
                confidence=1.0,
                degraded_shards=degraded_shards,
                epoch=int(epoch),
            )
        self.metrics.record_degraded_read(degraded_shards)
        return np.where(estimated, point, out)

    def range_sum(
        self,
        low: Sequence[int],
        high: Sequence[int],
        *,
        deadline: Optional[Deadline] = None,
    ):
        """One exact range sum across whichever shards the box spans."""
        return self.range_sum_many([low], [high], deadline=deadline)[0]

    def total(self, *, deadline: Optional[Deadline] = None):
        """Sum of the whole cube."""
        low = (0,) * self.shardmap.ndim
        high = tuple(n - 1 for n in self.shape)
        return self.range_sum(low, high, deadline=deadline)

    # -- writes --------------------------------------------------------------

    def submit_batch(
        self,
        updates: Iterable[Tuple[Sequence[int], object]],
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict[int, int]:
        """Route one group of ``(cell, delta)`` updates to its shards.

        Each involved shard receives its cells as one atomic local group
        (durably acked by that shard's primary before the next shard is
        touched). Returns ``{shard: acked sequence number}``. On a shard
        failure the call raises :class:`ClusterUnavailableError` whose
        ``acked`` attribute carries the shards that *did* commit — a
        cross-shard group is atomic per shard, not globally, and the
        error hands the caller exactly what it needs to reconcile.

        The whole call holds the topology lock, so it strictly orders
        against epoch flips: a group routes and acks entirely under one
        shard map. During a migration every acked sub-group touching a
        migrating shard is buffered or mirrored per the migration's
        current mode before the call returns — a dual-write ack means
        both the old and the new primary hold the group durably.
        """
        with self._topology:
            grouped = self.shardmap.split_updates(list(updates))
            migration = self._migration
            acked: Dict[int, int] = {}
            for shard in sorted(grouped):
                try:
                    acked[shard] = self.replica_sets[shard].submit(
                        grouped[shard], timeout=timeout, deadline=deadline
                    )
                except DeadlineExceededError as error:
                    self.metrics.record_deadline_exceeded()
                    raise ClusterUnavailableError(
                        f"deadline expired before shard {shard} acked: "
                        f"{error}",
                        acked=acked,
                    ) from error
                except ClusterUnavailableError as error:
                    self.metrics.record_unavailable()
                    raise ClusterUnavailableError(
                        str(error), acked=acked
                    ) from error
                self.aggregates.apply(shard, grouped[shard])
                if migration is not None:
                    migration.on_write(
                        self, shard, grouped[shard], acked[shard]
                    )
            return acked

    def flush(self, timeout: Optional[float] = None) -> Dict[int, int]:
        """Drain every shard; returns ``{shard: applied version}``."""
        with self._topology:
            replica_sets = list(self.replica_sets)
        return {
            rs.shard_id: rs.flush(timeout=timeout)
            for rs in replica_sets
        }

    # -- resharding ----------------------------------------------------------

    def split_shard(
        self,
        shard: int,
        at_row: Optional[int] = None,
        *,
        phase_hook=None,
    ) -> Dict:
        """Split ``shard`` into two shards at global row ``at_row``
        (default: the slab midpoint), live — the cluster keeps serving
        reads and writes for the whole migration. Returns the
        coordinator's summary; raises
        :class:`~repro.errors.ReshardError` (rolled back) on failure.
        """
        from repro.cluster.reshard import ReshardCoordinator

        return ReshardCoordinator(self, phase_hook=phase_hook).split(
            shard, at_row
        )

    def merge_shards(self, shard: int, *, phase_hook=None) -> Dict:
        """Fuse ``shard`` and ``shard + 1`` into one shard, live."""
        from repro.cluster.reshard import ReshardCoordinator

        return ReshardCoordinator(self, phase_hook=phase_hook).merge(
            shard
        )

    # -- chaos hooks ---------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        """Chaos hook: make ``node_id`` fail every operation from now on.

        Requires a cluster-level fault plan (the kill is injected, so a
        later :meth:`~repro.faults.FaultPlan.revive` can resurrect the
        node for heal rounds).
        """
        if self.faults is None:
            raise ClusterError(
                "kill_node needs a cluster-level fault_plan"
            )
        self.node(node_id)  # validate the id
        self.faults.kill(node_id)

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        probe_interval_s: float = 0.25,
        scrub_interval_s: Optional[float] = None,
    ) -> "CubeCluster":
        """Start the background monitor (and scrubber, when given an
        interval); tests usually drive ``monitor.tick()`` /
        ``scrubber.scrub_once()`` synchronously instead."""
        self.monitor.start(probe_interval_s)
        if scrub_interval_s is not None:
            self.scrubber.start(scrub_interval_s)
        return self

    def stats(self) -> Dict:
        """Cluster-wide operational snapshot (one plain dict).

        The shard map, per-node states, version vector, epoch, and
        in-flight migration are all captured under one topology-lock
        hold, so a concurrent epoch flip can never produce a torn view
        (e.g. the new map paired with the old nodes).
        """
        with self._topology:
            shardmap = self.shardmap
            replica_sets = list(self.replica_sets)
            migration = self._migration
            nodes = {}
            member_rows = [
                (node, False)
                for rs in replica_sets
                for node in rs.nodes
            ]
            if migration is not None:
                member_rows += [
                    (node, True)
                    for rs, _ in migration.targets
                    for node in rs.nodes
                    if node.node_id not in {
                        n.node_id for n, _ in member_rows
                    }
                ]
            for node, warming in member_rows:
                nodes[node.node_id] = {
                    "shard": node.shard_id,
                    "role": (
                        "warming"
                        if warming
                        else (
                            "primary" if node.is_primary else "replica"
                        )
                    ),
                    "state": (
                        "dead"
                        if node.dead
                        else ("lagging" if node.lagging else "ok")
                    ),
                    "breaker": self._breakers[node.node_id].state
                    if node.node_id in self._breakers
                    else None,
                    "version": (
                        None if node.dead else node.service.version
                    ),
                }
            vector = tuple(rs.last_acked for rs in replica_sets)
            migration_desc = (
                migration.describe() if migration is not None else None
            )
            report = {
                "epoch": shardmap.epoch,
                "shardmap": shardmap.describe(),
                "version_vector": list(vector),
                "nodes": nodes,
                "migration": migration_desc,
            }
        report["metrics"] = self.metrics.snapshot()
        report["monitor_ticks"] = self.monitor.ticks
        return report

    def close(self) -> None:
        """Stop background threads, close every node, free the pool."""
        if self._closed:
            return
        self._closed = True
        monitor = getattr(self, "monitor", None)
        if monitor is not None:
            monitor.stop()
        scrubber = getattr(self, "scrubber", None)
        if scrubber is not None:
            scrubber.stop()
        migration = getattr(self, "_migration", None)
        if migration is not None:
            for replica_set, _ in migration.targets:
                for node in replica_set.nodes:
                    if node.dead:
                        continue
                    try:
                        node.close()
                    except NODE_FAILURES:
                        node.dead = True
        for replica_set in getattr(self, "replica_sets", []):
            for node in replica_set.nodes:
                if node.dead:
                    continue
                try:
                    node.close()
                except NODE_FAILURES:
                    node.dead = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "CubeCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CubeCluster(shards={self.shardmap.num_shards}, "
            f"epoch={self.shardmap.epoch}, nodes={len(self.nodes())}, "
            f"shape={self.shape})"
        )

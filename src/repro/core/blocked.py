"""Blocked (box-relative) cumulative sums.

The RP array and the overlay border arrays are both built from cumulative
sums that restart at every overlay-box boundary. This module provides the
single vectorized primitive they share.
"""

from __future__ import annotations

import numpy as np


def blocked_cumsum(array: np.ndarray, axis: int, block: int) -> np.ndarray:
    """Cumulative sum along ``axis`` restarting at every ``block`` boundary.

    ``out[..., j, ...] = sum(array[..., j0..j, ...])`` where ``j0`` is the
    largest multiple of ``block`` not exceeding ``j``. The final block may
    be partial; it is handled identically.

    Args:
        array: input of any shape.
        axis: axis along which to accumulate.
        block: restart period, >= 1.

    Returns:
        A new array of the same shape and dtype.
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    n = array.shape[axis]
    if block < n and n % block == 0:
        # Evenly-blocked axes reshape into (n // block, block) and cumsum
        # over the block sub-axis directly — one pass, no carry fixup.
        split = (
            array.shape[:axis] + (n // block, block) + array.shape[axis + 1:]
        )
        out = np.cumsum(array.reshape(split), axis=axis + 1)
        return out.reshape(array.shape)
    out = np.cumsum(array, axis=axis)
    if block >= n:
        return out
    # Subtract, from every element, the running total accumulated before the
    # start of its block. Block b (b >= 1) starts at index b*block; the
    # carried-in total is out[..., b*block - 1, ...].
    starts = np.arange(block, n, block)
    carried = np.take(out, starts - 1, axis=axis)
    block_ids = np.arange(n) // block  # 0, 0, ..., 1, 1, ...
    # Expand carried so carried_full[..., j, ...] is the carry for j's block.
    carry_index = np.maximum(block_ids - 1, 0)
    carried_full = np.take(carried, carry_index, axis=axis)
    mask_shape = [1] * array.ndim
    mask_shape[axis] = n
    in_first_block = (block_ids == 0).reshape(mask_shape)
    return np.where(in_first_block, out, out - carried_full)


def blocked_prefix_all_axes(array: np.ndarray, block) -> np.ndarray:
    """Box-relative prefix sums along every axis — the RP array of Section 3.2.

    Equivalent to partitioning the array into ``block``-sided boxes and
    computing an independent inclusive prefix-sum array inside each box.
    ``block`` is a single side length or one per axis.
    """
    out = np.asarray(array)
    if isinstance(block, int):
        blocks = (block,) * out.ndim
    else:
        blocks = tuple(int(b) for b in block)
    for axis in range(out.ndim):
        out = blocked_cumsum(out, axis, blocks[axis])
    return out

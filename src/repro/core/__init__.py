"""Core data structures: the relative prefix sum method and its parts."""

from repro.core.base import RangeSumMethod
from repro.core.blocked import blocked_cumsum, blocked_prefix_all_axes
from repro.core.overlay import Overlay
from repro.core.rp import RelativePrefixArray
from repro.core.rps import (
    RelativePrefixSumCube,
    default_box_size,
    default_box_sizes,
)

__all__ = [
    "RangeSumMethod",
    "Overlay",
    "RelativePrefixArray",
    "RelativePrefixSumCube",
    "default_box_size",
    "default_box_sizes",
    "blocked_cumsum",
    "blocked_prefix_all_axes",
]

"""The relative prefix (RP) array (paper Section 3.2).

RP has the same shape as ``A`` and is partitioned into regions matching the
overlay boxes. Each cell holds the prefix sum *relative to its box*::

    RP[t] = SUM(A[a .. t])        (a = anchor of the box covering t)

Regions are mutually independent, which is the whole point: an update
cascades only within one box (Figure 15), never across the boundary.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core import indexing
from repro.core.blocked import blocked_prefix_all_axes
from repro.metrics.counters import AccessCounter

Coord = Tuple[int, ...]


class RelativePrefixArray:
    """Box-relative prefix sums with constrained cascading updates.

    Args:
        array: the dense source cube ``A``.
        box_size: overlay box side ``k`` (int, or one per dimension);
            cascades stop at multiples of it.
        counter: shared access counter (private one created when omitted).
    """

    def __init__(
        self,
        array: np.ndarray,
        box_size,
        counter: AccessCounter = None,
    ) -> None:
        source = np.asarray(array)
        self.shape = source.shape
        self.ndim = source.ndim
        self.box_sizes = indexing.normalize_box_sizes(box_size, source.shape)
        self.counter = counter if counter is not None else AccessCounter()
        self._rp = blocked_prefix_all_axes(source, self.box_sizes)

    @property
    def box_size(self):
        """The box side length: an int when uniform, else the per-axis tuple."""
        if len(set(self.box_sizes)) == 1:
            return self.box_sizes[0]
        return self.box_sizes

    def value(self, index: Sequence[int]):
        """``RP[index]`` — one cell read."""
        idx = indexing.normalize_index(index, self.shape)
        self.counter.read(1, structure="RP")
        return self._rp[idx]

    def value_many(self, targets) -> np.ndarray:
        """``RP[t]`` for a ``(Q, d)`` batch — one fancy-indexed gather.

        Charges one read per row, same as looping :meth:`value`.
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        if len(batch) == 0:
            return np.empty(0, dtype=self._rp.dtype)
        self.counter.read(len(batch), structure="RP")
        return self._rp[tuple(batch.T)]

    def cell_value(self, index: Sequence[int]):
        """Recover ``A[index]`` from RP alone by box-local differencing.

        Uses the inclusion–exclusion identity inside the covering box
        (2^d RP reads); anchors cost a single read.
        """
        idx = indexing.normalize_index(index, self.shape)
        anchor = indexing.anchor_of(idx, self.box_sizes)
        total = self._rp.dtype.type(0)
        for sign, corner in indexing.iter_corners(idx, idx):
            if any(c < a for c, a in zip(corner, anchor)):
                continue
            self.counter.read(1, structure="RP")
            total += sign * self._rp[corner]
        return total

    def apply_delta(self, index: Sequence[int], delta) -> int:
        """Add ``delta`` to ``A[index]``; cascade stops at the box boundary.

        Every RP cell in the same box that dominates the updated cell is
        rewritten — at most ``k^d`` cells (Figure 15's shaded RP region).

        Returns the number of RP cells written.
        """
        idx = indexing.normalize_index(index, self.shape)
        region = tuple(
            slice(i, min((i // k) * k + k, n))
            for i, k, n in zip(idx, self.box_sizes, self.shape)
        )
        block = self._rp[region]
        block += delta
        self.counter.write(block.size, structure="RP")
        return block.size

    def update_sizes(self, batch: np.ndarray) -> np.ndarray:
        """Per-row cascade sizes for a validated ``(m, d)`` index batch.

        Row ``i`` is exactly the number of RP cells :meth:`apply_delta`
        would rewrite for an update at ``batch[i]`` — the volume of the
        dominated remainder of its covering box.
        """
        if len(batch) == 0:
            return np.zeros(0, dtype=np.int64)
        sizes = np.asarray(self.box_sizes, dtype=np.int64)
        bounds = np.asarray(self.shape, dtype=np.int64)
        ends = np.minimum((batch // sizes + 1) * sizes, bounds)
        return np.prod(ends - batch, axis=1)

    def apply_batch_array(self, indices, deltas) -> int:
        """Apply ``(m, d)`` point deltas in one vectorized pass.

        RP is linear in ``A``, so the whole batch is realized by
        scatter-adding the deltas into a zero cube (``np.add.at``, which
        accumulates duplicate rows) and adding its box-relative prefix
        sums to RP — the builder's own kernel, run once per batch instead
        of one constrained cascade per update.

        Charges exactly what looping :meth:`apply_delta` charges: the sum
        of the per-update cascade sizes (zero-delta rows included).

        Returns the number of RP cells written, in that same ledger.
        """
        batch, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        if len(batch) == 0:
            return 0
        written = int(self.update_sizes(batch).sum())
        spread = np.zeros(self.shape, dtype=self._rp.dtype)
        np.add.at(spread, tuple(batch.T), deltas)
        self._rp += blocked_prefix_all_axes(spread, self.box_sizes)
        self.counter.write(written, structure="RP")
        return written

    def storage_cells(self) -> int:
        """RP is exactly the size of A."""
        return self._rp.size

    def array(self) -> np.ndarray:
        """Copy of the RP array (used by the Figure 10/13 reproductions)."""
        return self._rp.copy()

    def __repr__(self) -> str:
        return f"RelativePrefixArray(shape={self.shape}, box_size={self.box_size})"

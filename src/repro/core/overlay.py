"""The overlay structure (paper Section 3.1).

An overlay partitions array ``A`` into equal-sized boxes of side ``k`` and
stores, per box, one value for every cell having at least one coordinate
on the box's anchor faces — ``k^d - (k-1)^d`` values per box, exactly the
paper's storage count. The anchor cell holds the *anchor value*
``V(a) = SUM(A[0..a]) - A[a]`` (Figure 7); the remaining face cells hold
cumulative *border values* (Figures 6 and 8).

The paper publishes only the 2-D definitions; TR TRCS99-01 with the
d-dimensional algorithms is unavailable. The generalization implemented
here is derived in DESIGN.md Section 1 from the subset decomposition of a
prefix region. For a face cell ``c`` whose set of anchor-aligned
coordinates is ``Z`` (nonempty), the stored value is::

    stored(c) = SUM over  prod_{j not in Z} (a_j, c_j]
                        x ( prod_{j in Z} [0, a_j]  -  prod_{j in Z} {a_j} )

With ``Z = D`` (the anchor itself) this is exactly ``V(a)``; in 2-D with
``|Z| = 1`` it is exactly the paper's cumulative X/Y border values. The
query identity, valid for every target ``t`` (boundary targets included)::

    Pre(t) = RP[t] + sum over S' subset of {j : t_j > a_j}, S' != D of
             stored( cell with t_j on S', a_j elsewhere )

reads at most ``2^d`` overlay values per prefix sum (``d + 2`` when d = 2,
matching the paper's count), and an update touches
``((n/k) + k)^d`` cells in the worst case — ``O(n^{d/2})`` at the paper's
optimal ``k = sqrt(n)``.

The paper fixes the same ``k`` on every dimension "for clarity, and
without loss of generality"; this implementation accepts one side length
per dimension, which matters when dimension sizes differ widely or when
one box must match a disk page exactly (Section 4.4).

Physically the overlay keeps one dense array per nonempty ``Z``
(``2^d - 1`` arrays); the array for ``Z`` is indexed by box number on the
dimensions in ``Z`` and by raw cell coordinate elsewhere.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

from repro.core import indexing
from repro.core.blocked import blocked_cumsum
from repro.errors import RangeError
from repro.metrics.counters import AccessCounter

Coord = Tuple[int, ...]


def _block_lengths(n: int, k: int) -> np.ndarray:
    """Lengths of the k-blocks tiling an axis of size ``n`` (last may be short)."""
    full, rem = divmod(n, k)
    lengths = [k] * full
    if rem:
        lengths.append(rem)
    return np.array(lengths, dtype=np.intp)


def _exclusive_blocked_cumsum(array: np.ndarray, axis: int, k: int) -> np.ndarray:
    """Per-block cumulative sum excluding the block's first element.

    ``out[..., c, ...] = sum(array[..., a+1 .. c, ...])`` where ``a`` is
    the block start — zero at block starts themselves.
    """
    inclusive = blocked_cumsum(array, axis, k)
    starts = np.arange(0, array.shape[axis], k)
    start_vals = np.take(array, starts, axis=axis)
    reps = _block_lengths(array.shape[axis], k)
    return inclusive - np.repeat(start_vals, reps, axis=axis)


def subset_update_slices(shape, box_sizes, boxes_shape, idx, mask):
    """Affected-region slices of one subset's value array for an update.

    For the overlay value array of subset ``mask`` (bit j set = axis j in
    Z), an update at ``idx`` touches the ``add`` slice minus — when the
    update is anchor-aligned on all of Z — the ``sub`` slice (the
    ``Π{a_j}`` exclusion). Returns ``(None, None)`` when no value of this
    subset is affected (the update is anchor-aligned on a non-Z axis).

    Shared by :class:`Overlay` (which applies the slices densely) and the
    hierarchical extension (which converts them into range-adds).
    """
    ndim = len(shape)
    add = []
    exclusion_applies = True
    for axis in range(ndim):
        u = idx[axis]
        k = box_sizes[axis]
        if mask & (1 << axis):
            # Boxes with anchor at or after the update on this axis.
            add.append(slice(-(-u // k), boxes_shape[axis]))
            if u % k != 0:
                exclusion_applies = False
        else:
            # Same box, strictly after its anchor, at or after u.
            if u % k == 0:
                return None, None
            add.append(slice(u, min((u // k) * k + k, shape[axis])))
    sub = None
    if exclusion_applies:
        sub = tuple(
            slice(idx[axis] // box_sizes[axis],
                  idx[axis] // box_sizes[axis] + 1)
            if mask & (1 << axis)
            else add[axis]
            for axis in range(ndim)
        )
    return tuple(add), sub


def subset_update_extents(shape, box_sizes, boxes_shape, batch, mask):
    """Batched counterpart of :func:`subset_update_slices`.

    For a validated ``(m, d)`` index batch, returns per-row descriptions
    of how each update touches the value array of subset ``mask``:

    * ``applicable`` — rows affecting this subset at all (no non-Z axis
      anchor-aligned),
    * ``exclusion`` — applicable rows whose ``Π{a_j}`` exclusion slice
      applies (anchor-aligned on all of Z),
    * ``add_cells`` / ``sub_cells`` — the cell counts of the two regions
      (``add_cells`` is 0 when the affected slice is empty, e.g. the
      update sits in the last box of a Z axis).

    The region geometry matches :func:`subset_update_slices` exactly;
    only the representation differs (counts instead of slices), so the
    vectorized update path can charge the very cells the looped cascade
    charges.
    """
    m, ndim = batch.shape
    applicable = np.ones(m, dtype=bool)
    exclusion = np.ones(m, dtype=bool)
    add_cells = np.ones(m, dtype=np.int64)
    sub_cells = np.ones(m, dtype=np.int64)
    for axis in range(ndim):
        u = batch[:, axis]
        k = box_sizes[axis]
        box = u // k
        aligned = u == box * k
        if mask & (1 << axis):
            # Boxes with anchor at or after the update on this axis.
            add_cells *= np.maximum(boxes_shape[axis] - (box + ~aligned), 0)
            exclusion &= aligned
        else:
            # Same box, strictly after its anchor, at or after u.
            applicable &= ~aligned
            span = np.minimum((box + 1) * k, shape[axis]) - u
            add_cells *= span
            sub_cells *= span
    exclusion &= applicable
    return applicable, exclusion, add_cells, sub_cells


class Overlay:
    """Anchor and border values for every overlay box of a cube.

    Args:
        array: the dense source cube ``A``.
        box_size: overlay box side length ``k`` — a single int (the
            paper's model) or one per dimension.
        counter: access counter charged by lookups and updates; a private
            one is created when omitted (the RPS cube passes its own so
            overlay and RP costs share a ledger).
    """

    def __init__(
        self,
        array: np.ndarray,
        box_size,
        counter: AccessCounter = None,
    ) -> None:
        source = np.asarray(array)
        self.shape = source.shape
        self.ndim = source.ndim
        self.box_sizes = indexing.normalize_box_sizes(box_size, source.shape)
        self.boxes_shape = tuple(
            -(-n // k) for n, k in zip(source.shape, self.box_sizes)
        )
        self.counter = counter if counter is not None else AccessCounter()
        self._full_mask = (1 << self.ndim) - 1
        self._build(source)

    @property
    def box_size(self):
        """The box side length: an int when uniform, else the per-axis tuple."""
        if len(set(self.box_sizes)) == 1:
            return self.box_sizes[0]
        return self.box_sizes

    # -- construction -------------------------------------------------------

    def _build(self, array: np.ndarray) -> None:
        """Vectorized construction of the 2^d - 1 per-subset value arrays."""
        self._values: Dict[int, np.ndarray] = {}
        for mask in range(1, self._full_mask + 1):
            work = array
            for axis in range(self.ndim):
                if not mask & (1 << axis):
                    work = _exclusive_blocked_cumsum(
                        work, axis, self.box_sizes[axis]
                    )
            inclusive = work
            for axis in range(self.ndim):
                if mask & (1 << axis):
                    inclusive = np.cumsum(inclusive, axis=axis)
            s1, s2 = inclusive, work
            for axis in range(self.ndim):
                if mask & (1 << axis):
                    starts = np.arange(
                        0, self.shape[axis], self.box_sizes[axis]
                    )
                    s1 = np.take(s1, starts, axis=axis)
                    s2 = np.take(s2, starts, axis=axis)
            self._values[mask] = s1 - s2

    # -- lookups -------------------------------------------------------------

    def _mask_of(self, cell: Coord) -> int:
        """Bitmask of anchor-aligned coordinates of ``cell`` (its Z set)."""
        mask = 0
        for axis, c in enumerate(cell):
            if c % self.box_sizes[axis] == 0:
                mask |= 1 << axis
        return mask

    def _value_index(self, cell: Coord, mask: int) -> Coord:
        """Index of ``cell`` into the value array for subset ``mask``."""
        return tuple(
            c // self.box_sizes[axis] if mask & (1 << axis) else c
            for axis, c in enumerate(cell)
        )

    def anchor_value(self, anchor: Sequence[int]):
        """Stored ``V`` for the box anchored at ``anchor`` (one cell read)."""
        a = indexing.normalize_index(anchor, self.shape)
        if self._mask_of(a) != self._full_mask:
            raise RangeError(
                f"{a} is not a box anchor for box sizes {self.box_sizes}"
            )
        self.counter.read(1, structure="overlay.anchor")
        return self._values[self._full_mask][self._value_index(a, self._full_mask)]

    def border_value(self, cell: Sequence[int]):
        """Stored border value for a face cell (one cell read).

        The cell's serving subset ``Z`` is determined by which of its
        coordinates sit on the covering box's anchor faces; at least one
        must (and not all — that would be the anchor, see
        :meth:`anchor_value`).
        """
        c = indexing.normalize_index(cell, self.shape)
        mask = self._mask_of(c)
        if mask == 0:
            raise RangeError(
                f"cell {c} is interior to its box (no anchor-aligned "
                f"coordinate for box sizes {self.box_sizes})"
            )
        if mask == self._full_mask:
            raise RangeError(
                f"cell {c} is a box anchor; use anchor_value()"
            )
        self.counter.read(1, structure="overlay.border")
        return self._values[mask][self._value_index(c, mask)]

    def prefix_contribution(self, target: Sequence[int]):
        """The overlay's share of ``Pre(target)`` (everything except RP).

        Sums the anchor value plus one border value per nonempty proper
        subset of the target's off-anchor dimensions — at most ``2^d - 1``
        reads, exactly the paper's anchor + d borders when d = 2.
        """
        t = indexing.normalize_index(target, self.shape)
        anchor = indexing.anchor_of(t, self.box_sizes)
        off_mask = 0
        for axis in range(self.ndim):
            if t[axis] != anchor[axis]:
                off_mask |= 1 << axis
        total = self._values[self._full_mask][
            self._value_index(anchor, self._full_mask)
        ]
        self.counter.read(1, structure="overlay.anchor")
        reads = 0
        sub = off_mask
        while sub > 0:
            if sub != self._full_mask:
                z_mask = self._full_mask ^ sub
                cell = tuple(
                    t[axis] if sub & (1 << axis) else anchor[axis]
                    for axis in range(self.ndim)
                )
                total = total + self._values[z_mask][
                    self._value_index(cell, z_mask)
                ]
                reads += 1
            sub = (sub - 1) & off_mask
        if reads:
            self.counter.read(reads, structure="overlay.border")
        return total

    def prefix_contribution_many(self, targets) -> np.ndarray:
        """Batched :meth:`prefix_contribution` over a ``(Q, d)`` array.

        One fancy-indexed gather per term of the subset expansion: the
        anchor-value gather plus one gather per proper nonempty subset
        ``S'`` of the dimensions, applied to the rows whose target is
        off-anchor on all of ``S'`` (the same per-target subset the
        looped path walks). Charges identical counter totals: one anchor
        read per target plus one border read per applicable ``(target,
        subset)`` pair.
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        q_count = len(batch)
        if q_count == 0:
            anchor_grid = self._values[self._full_mask]
            return np.empty(0, dtype=anchor_grid.dtype)
        sizes = np.asarray(self.box_sizes, dtype=np.intp)
        box = batch // sizes
        on_anchor = batch == box * sizes  # (Q, d): coordinate is anchor-aligned
        total = self._values[self._full_mask][tuple(box.T)].copy()
        self.counter.read(q_count, structure="overlay.anchor")
        border_reads = 0
        for sub in range(1, self._full_mask):
            applicable = np.ones(q_count, dtype=bool)
            for axis in range(self.ndim):
                if sub & (1 << axis):
                    applicable &= ~on_anchor[:, axis]
            if not applicable.any():
                continue
            z_mask = self._full_mask ^ sub
            cell = tuple(
                batch[applicable, axis] if sub & (1 << axis)
                else box[applicable, axis]
                for axis in range(self.ndim)
            )
            total[applicable] += self._values[z_mask][cell]
            border_reads += int(applicable.sum())
        if border_reads:
            self.counter.read(border_reads, structure="overlay.border")
        return total

    # -- updates -------------------------------------------------------------

    def apply_delta(self, index: Sequence[int], delta) -> int:
        """Propagate a cell delta into every affected stored value.

        This is the constrained cascade of Figure 14: for each subset
        ``Z``, the affected values form one slice — boxes at-or-after the
        update on the ``Z`` dimensions, same-box trailing cells elsewhere
        — minus (when the update is anchor-aligned on all of ``Z``) the
        slice where the update sits exactly on every ``Z`` anchor.

        Returns the number of overlay cells whose stored value changed.
        """
        idx = indexing.normalize_index(index, self.shape)
        touched_total = 0
        for mask in range(1, self._full_mask + 1):
            add, sub = self._update_slices(idx, mask)
            if add is None:
                continue
            values = self._values[mask]
            region = values[add]
            if region.size == 0:
                continue
            region += delta
            touched = region.size
            if sub is not None:
                sub_region = values[sub]
                if sub_region.size:
                    sub_region -= delta
                    touched -= sub_region.size
            structure = (
                "overlay.anchor" if mask == self._full_mask
                else "overlay.border"
            )
            if touched:
                self.counter.write(touched, structure=structure)
            touched_total += touched
        return touched_total

    def apply_batch_array(self, indices, deltas) -> int:
        """Propagate ``(m, d)`` point deltas in one vectorized pass.

        Every stored value is linear in ``A``, so the batch's effect on
        the value array of subset ``Z`` is realized without touching
        individual updates: scatter each applicable delta at the *low
        corner* of its affected region (box ``ceil(u_j / k_j)`` on the
        ``Z`` axes, raw coordinate ``u_j`` elsewhere) and run the region
        shape as cumulative sums — plain over box indices on ``Z`` axes,
        box-blocked over raw coordinates elsewhere. The anchor-exclusion
        slice is a second scatter (at box ``u_j // k_j``) accumulated
        over the non-``Z`` axes only, subtracted. ``np.add.at``
        accumulates duplicate rows, so one batch may hit one cell twice.

        Charges exactly what looping :meth:`apply_delta` charges, per
        structure (zero-delta rows included). Returns the total number of
        overlay cells written, in that same ledger.
        """
        batch, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        if len(batch) == 0:
            return 0
        sizes = np.asarray(self.box_sizes, dtype=np.intp)
        box = batch // sizes
        ceil_box = box + (batch != box * sizes)
        touched_total = 0
        for mask in range(1, self._full_mask + 1):
            applicable, exclusion, add_cells, sub_cells = (
                subset_update_extents(
                    self.shape, self.box_sizes, self.boxes_shape, batch, mask
                )
            )
            values = self._values[mask]
            add_rows = applicable & (add_cells > 0)
            if add_rows.any():
                spread = np.zeros_like(values)
                pos = tuple(
                    ceil_box[add_rows, axis] if mask & (1 << axis)
                    else batch[add_rows, axis]
                    for axis in range(self.ndim)
                )
                np.add.at(spread, pos, deltas[add_rows])
                for axis in range(self.ndim):
                    if mask & (1 << axis):
                        np.cumsum(spread, axis=axis, out=spread)
                    else:
                        spread = blocked_cumsum(
                            spread, axis, self.box_sizes[axis]
                        )
                values += spread
            if exclusion.any():
                spread = np.zeros_like(values)
                pos = tuple(
                    box[exclusion, axis] if mask & (1 << axis)
                    else batch[exclusion, axis]
                    for axis in range(self.ndim)
                )
                np.add.at(spread, pos, deltas[exclusion])
                for axis in range(self.ndim):
                    if not mask & (1 << axis):
                        spread = blocked_cumsum(
                            spread, axis, self.box_sizes[axis]
                        )
                values -= spread
            touched = int(
                add_cells[applicable].sum() - sub_cells[exclusion].sum()
            )
            if touched:
                structure = (
                    "overlay.anchor" if mask == self._full_mask
                    else "overlay.border"
                )
                self.counter.write(touched, structure=structure)
            touched_total += touched
        return touched_total

    def update_cost_many(self, batch) -> np.ndarray:
        """Per-row overlay cells a batch of updates would touch.

        The batched counterpart of :meth:`update_cost` — same counts,
        computed without mutating anything and without per-row Python.
        """
        batch = indexing.normalize_index_batch(batch, self.shape)
        totals = np.zeros(len(batch), dtype=np.int64)
        if len(batch) == 0:
            return totals
        for mask in range(1, self._full_mask + 1):
            applicable, exclusion, add_cells, sub_cells = (
                subset_update_extents(
                    self.shape, self.box_sizes, self.boxes_shape, batch, mask
                )
            )
            totals += np.where(applicable, add_cells, 0)
            totals -= np.where(exclusion, sub_cells, 0)
        return totals

    def _update_slices(self, idx: Coord, mask: int):
        """(add, subtract) slice tuples for one subset's value array.

        ``add`` is ``None`` when no value of this subset is affected.
        ``subtract`` is ``None`` when the anchor-exclusion slice is empty.
        """
        return subset_update_slices(
            self.shape, self.box_sizes, self.boxes_shape, idx, mask
        )

    def update_cost(self, index: Sequence[int]) -> int:
        """Overlay cells an update at ``index`` would touch, without mutating."""
        idx = indexing.normalize_index(index, self.shape)

        def span(sl: slice, n: int) -> int:
            start, stop, _ = sl.indices(n)
            return max(0, stop - start)

        total = 0
        for mask in range(1, self._full_mask + 1):
            add, sub = self._update_slices(idx, mask)
            if add is None:
                continue
            sizes = [
                span(sl, self.boxes_shape[axis] if mask & (1 << axis)
                     else self.shape[axis])
                for axis, sl in enumerate(add)
            ]
            count = int(np.prod(sizes))
            if sub is not None:
                sub_sizes = [
                    span(sl, self.boxes_shape[axis] if mask & (1 << axis)
                         else self.shape[axis])
                    for axis, sl in enumerate(sub)
                ]
                count -= int(np.prod(sub_sizes))
            total += count
        return total

    # -- storage accounting ---------------------------------------------------

    def storage_cells(self) -> int:
        """Stored values actually used: ``prod(k_i) - prod(k_i - 1)`` per box.

        With a uniform ``k`` this is exactly the paper's ``k^d - (k-1)^d``
        count (each face cell of each box stores one value for its own
        anchor-coordinate subset). The allocated arrays are slightly
        larger — see :meth:`allocated_cells` — because non-subset axes
        are kept at full cube extent for O(1) indexing.
        """
        used = 0
        for mask in range(1, self._full_mask + 1):
            per_box = 1
            for axis in range(self.ndim):
                if not mask & (1 << axis):
                    per_box *= self.box_sizes[axis] - 1
            used += per_box * int(np.prod(self.boxes_shape))
        return used

    def allocated_cells(self) -> int:
        """Total cells of the backing arrays (including the padding slots
        kept for O(1) indexing); compare with :meth:`storage_cells`."""
        return sum(v.size for v in self._values.values())

    def paper_storage_cells(self) -> int:
        """The paper's closed-form count ``(prod k_i - prod (k_i - 1)) * boxes``."""
        full = 1
        inner = 1
        for k in self.box_sizes:
            full *= k
            inner *= k - 1
        return (full - inner) * int(np.prod(self.boxes_shape))

    # -- debugging / table reproduction ---------------------------------------

    def anchors_array(self) -> np.ndarray:
        """Copy of the anchor-value grid (one entry per box)."""
        return self._values[self._full_mask].copy()

    def masks(self) -> Iterator[int]:
        """All stored subsets, as bitmasks (bit j set = axis j in Z)."""
        return iter(range(1, self._full_mask + 1))

    def values_array(self, mask: int) -> np.ndarray:
        """Copy of one subset's value array (box-indexed on Z axes)."""
        if mask not in self._values:
            raise RangeError(
                f"mask {mask} out of range 1..{self._full_mask}"
            )
        return self._values[mask].copy()

    def __repr__(self) -> str:
        return (
            f"Overlay(shape={self.shape}, box_size={self.box_size}, "
            f"boxes={self.boxes_shape})"
        )

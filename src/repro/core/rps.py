"""The relative prefix sum method (paper Sections 3 and 4).

:class:`RelativePrefixSumCube` composes an :class:`~repro.core.overlay.Overlay`
with a :class:`~repro.core.rp.RelativePrefixArray` to answer any prefix sum
"on the fly" from O(1) stored values::

    Pre(t) = RP[t] + sum over S' subset of {j : t_j > a_j}, S' != D of
             stored( t with non-S' coordinates replaced by the anchor's )

where ``a`` is the anchor of the box covering ``t`` (Figure 12; the
general form is derived in DESIGN.md/docs — in 2-D it is exactly the
paper's "one anchor value, d border values, and one value from RP").
Range sums combine ``2^d`` such prefix sums with inclusion–exclusion
(Figure 3), so queries are O(1) for fixed d. Updates cascade within a
single RP box plus a constrained set of overlay cells (Figure 14), giving
the paper's ``O(n^{d/2})`` worst case at the optimal box size
``k = sqrt(n)``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod
from repro.core.overlay import Overlay
from repro.core.rp import RelativePrefixArray
from repro.errors import RangeError


def default_box_size(shape: Sequence[int]) -> int:
    """The paper's optimal box side ``k = sqrt(n)`` (Section 4.3).

    With mixed dimension sizes we use the geometric-mean dimension as
    ``n``; the result is clamped to at least 1.
    """
    n = float(np.prod(shape)) ** (1.0 / len(shape))
    return max(1, round(math.sqrt(n)))


def default_box_sizes(shape: Sequence[int]) -> tuple:
    """Per-dimension optimal box sides ``k_i = sqrt(n_i)``.

    The per-axis refinement of the paper's rule, appropriate when
    dimension sizes differ widely (a 365-day axis wants k=19, a
    50-bucket axis wants k=7).
    """
    return tuple(max(1, round(math.sqrt(n))) for n in shape)


class RelativePrefixSumCube(RangeSumMethod):
    """The paper's contribution: O(1) queries with O(n^{d/2}) updates.

    Args:
        array: dense source cube ``A``.
        box_size: overlay box side ``k`` — an int (the paper's model) or
            one per dimension; defaults to ``sqrt(n)`` per Section 4.3.
            Pass an explicit value to reproduce the paper's k-sweep or to
            align boxes with disk pages (Section 4.4).
    """

    name = "rps"

    def __init__(self, array: np.ndarray, box_size=None) -> None:
        self._requested_box_size = box_size
        super().__init__(array)

    def _build(self, array: np.ndarray) -> None:
        k = (
            self._requested_box_size
            if self._requested_box_size is not None
            else default_box_size(array.shape)
        )
        self.box_sizes = indexing.normalize_box_sizes(k, array.shape)
        self.overlay = Overlay(array, self.box_sizes, counter=self.counter)
        self.rp = RelativePrefixArray(
            array, self.box_sizes, counter=self.counter
        )

    @property
    def box_size(self):
        """The box side length: an int when uniform, else the per-axis tuple."""
        if len(set(self.box_sizes)) == 1:
            return self.box_sizes[0]
        return self.box_sizes

    # -- queries ------------------------------------------------------------

    def prefix_sum(self, target: Sequence[int]):
        """``SUM(A[0..target])`` from overlay values plus one RP cell.

        This is the two-step construction of Figures 9–12: the overlay
        provides the portion of the region outside the covering box (one
        anchor plus the border values — d of them in 2-D, at most
        ``2^d - 2`` in general), RP provides the portion inside it.
        """
        t = indexing.normalize_index(target, self.shape)
        return self.overlay.prefix_contribution(t) + self.rp.value(t)

    def cell_value(self, index: Sequence[int]):
        """Read one cell via box-local RP differencing (cheaper than 2^d
        full prefix sums — the cascade never leaves the box)."""
        return self.rp.cell_value(index)

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched prefix sums: overlay subset gathers plus one RP gather.

        One fancy-indexed gather per term of the query identity —
        anchors, each border subset, and RP — with no per-query Python.
        Counter charges match the looped path exactly (see
        :meth:`Overlay.prefix_contribution_many`).
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        return (
            self.overlay.prefix_contribution_many(batch)
            + self.rp.value_many(batch)
        )

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched range sums: the corner identity over batched prefixes."""
        lo, hi = indexing.normalize_range_batch(lows, highs, self.shape)
        return self._corner_range_sum_many(lo, hi)

    def explain_prefix(self, target: Sequence[int]) -> dict:
        """Break one prefix sum into its stored components.

        Returns the covering box's anchor, the anchor value, every border
        value read (keyed by the face cell it lives at), the RP value,
        and the total — the decomposition the paper walks through in
        Section 3.3 (``86 + 8 + 51 + 23 = 168``).
        """
        t = indexing.normalize_index(target, self.shape)
        anchor = indexing.anchor_of(t, self.box_sizes)
        report = {
            "target": t,
            "anchor": anchor,
            "anchor_value": self.overlay.anchor_value(anchor),
            "border_values": {},
            "rp_value": self.rp.value(t),
        }
        off_axes = [i for i in range(self.ndim) if t[i] != anchor[i]]
        full = (1 << self.ndim) - 1
        for bits in range(1, 1 << len(off_axes)):
            sub = 0
            for j, axis in enumerate(off_axes):
                if bits & (1 << j):
                    sub |= 1 << axis
            if sub == full:
                continue  # S' = D contributes nothing
            cell = tuple(
                t[axis] if sub & (1 << axis) else anchor[axis]
                for axis in range(self.ndim)
            )
            report["border_values"][cell] = self.overlay.border_value(cell)
        report["total"] = (
            report["anchor_value"]
            + sum(report["border_values"].values())
            + report["rp_value"]
        )
        return report

    # -- updates ------------------------------------------------------------

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """Add ``delta`` to one cell (Figure 15's constrained cascade)."""
        idx = indexing.normalize_index(index, self.shape)
        self.rp.apply_delta(idx, delta)
        self.overlay.apply_delta(idx, delta)

    #: Approximate numpy cells processed in the wall-clock time of one
    #: Python-level cascade step; calibrated by ``bench_u1``. ``auto``
    #: switches from looped cascades to the vectorized engine once the
    #: batch is large enough that one whole-structure pass is cheaper
    #: than m interpreter round-trips.
    VECTORIZED_CELLS_PER_CASCADE = 1024

    BATCH_STRATEGIES = ("auto", "incremental", "vectorized", "rebuild")

    def apply_batch(self, updates, strategy: str = "auto") -> int:
        """Apply many ``(index, delta)`` updates.

        Strategies:

        * ``"incremental"`` — one constrained cascade per update
          (m x O(n^{d/2}) cells, one Python step per update).
        * ``"vectorized"`` — identical incremental semantics and cell
          ledger, executed as whole-structure scatter/cumsum passes (no
          per-update Python; see :meth:`Overlay.apply_batch_array`).
        * ``"rebuild"`` — materialize the batch, rebuild overlay and RP
          from the patched array (O(n^d) cells, independent of m).
        * ``"auto"`` (default) — :meth:`choose_batch_strategy`: the
          paper's cost model picks incremental-vs-rebuild semantics, a
          wall-clock model picks looped-vs-vectorized execution; the
          crossovers are measured in the ``bench_a1``/``bench_u1``
          ablations.

        Returns the number of updates applied.
        """
        batch = list(updates)
        if not batch:
            self._check_strategy(strategy)
            return 0
        indices = np.array(
            [
                indexing.normalize_index(index, self.shape)
                for index, _ in batch
            ],
            dtype=np.intp,
        )
        deltas = np.asarray([delta for _, delta in batch])
        return self._apply_batch_arrays(indices, deltas, strategy)

    def apply_batch_array(
        self, indices, deltas, strategy: str = "auto"
    ) -> int:
        """Array-native :meth:`apply_batch` over ``(m, d)`` + ``(m,)``
        arrays — the kernel the serving layer feeds directly."""
        batch, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        if len(batch) == 0:
            self._check_strategy(strategy)
            return 0
        return self._apply_batch_arrays(batch, deltas, strategy)

    def _check_strategy(self, strategy: str) -> None:
        if strategy not in self.BATCH_STRATEGIES:
            raise RangeError(
                f"unknown batch strategy {strategy!r}; choose auto, "
                f"incremental, vectorized, or rebuild"
            )

    def choose_batch_strategy(self, indices) -> str:
        """The strategy ``"auto"`` would pick for this index batch.

        Two nested decisions: the paper's logical cost model compares the
        summed cascade cost against one rebuild (the crossover near
        ``m ~ n^{d/2}``); when incremental semantics win, a wall-clock
        model compares m interpreter steps against one whole-structure
        vectorized pass (:attr:`VECTORIZED_CELLS_PER_CASCADE`).
        """
        batch = indexing.normalize_index_batch(indices, self.shape)
        if int(self.update_cost_many(batch).sum()) > self.storage_cells():
            return "rebuild"
        vectorized_pass_cells = (
            self.rp.storage_cells() + self.overlay.allocated_cells()
        )
        if (
            len(batch) * self.VECTORIZED_CELLS_PER_CASCADE
            >= vectorized_pass_cells
        ):
            return "vectorized"
        return "incremental"

    def _apply_batch_arrays(
        self, indices: np.ndarray, deltas: np.ndarray, strategy: str
    ) -> int:
        self._check_strategy(strategy)
        deltas = self.coerce_deltas(deltas)
        if strategy == "auto":
            strategy = self.choose_batch_strategy(indices)
        if strategy == "incremental":
            for row, delta in zip(indices, deltas):
                self.apply_delta(tuple(int(c) for c in row), delta)
        elif strategy == "vectorized":
            self.rp.apply_batch_array(indices, deltas)
            self.overlay.apply_batch_array(indices, deltas)
        else:
            patched = self.to_array()
            np.add.at(patched, tuple(indices.T), deltas)
            self.overlay = Overlay(
                patched, self.box_sizes, counter=self.counter
            )
            self.rp = RelativePrefixArray(
                patched, self.box_sizes, counter=self.counter
            )
            self.counter.write(self.rp.storage_cells(), structure="RP")
            self.counter.write(
                self.overlay.storage_cells(), structure="overlay.border"
            )
        return len(indices)

    def update_cost_breakdown(self, index: Sequence[int]) -> dict:
        """Predicted cells touched by an update at ``index``, by structure.

        Computes the exact counts without mutating anything, for
        comparison against the paper's worst-case formula
        ``k^d + d(n/k)k^{d-1} + (n/k)^d``.
        """
        idx = indexing.normalize_index(index, self.shape)
        rp_cells = self._rp_update_size(idx)
        overlay_cells = self.overlay.update_cost(idx)
        return {
            "total": rp_cells + overlay_cells,
            "rp": rp_cells,
            "overlay": overlay_cells,
        }

    def update_cost_many(self, indices) -> np.ndarray:
        """Per-row predicted cells touched for an ``(m, d)`` index batch.

        The batched counterpart of :meth:`update_cost_breakdown`'s
        ``"total"`` — identical counts with no per-row Python, used by
        ``"auto"`` batch planning.
        """
        batch = indexing.normalize_index_batch(indices, self.shape)
        return self.rp.update_sizes(batch) + self.overlay.update_cost_many(
            batch
        )

    def _rp_update_size(self, idx) -> int:
        size = 1
        for i, k, n in zip(idx, self.box_sizes, self.shape):
            size *= min((i // k) * k + k, n) - i
        return size

    # -- introspection ------------------------------------------------------

    def verify_structures(self) -> None:
        """Deep self-check: rebuild overlay and RP from the reconstructed
        array and compare every stored value.

        Stronger than :meth:`verify` (which probes query answers): this
        confirms the incremental update paths left the internal arrays
        byte-identical to a fresh build. Raises
        :class:`~repro.errors.RangeError` on the first divergence.
        """
        current = self.to_array()
        fresh_rp = RelativePrefixArray(current, self.box_sizes)
        if not np.array_equal(self.rp.array(), fresh_rp.array()):
            raise RangeError("RP array diverged from a fresh rebuild")
        fresh_overlay = Overlay(current, self.box_sizes)
        for mask in self.overlay.masks():
            if not np.array_equal(
                self.overlay.values_array(mask),
                fresh_overlay.values_array(mask),
            ):
                raise RangeError(
                    f"overlay subset {mask:#b} diverged from a fresh rebuild"
                )

    def storage_cells(self) -> int:
        """RP cells plus overlay cells (this layout's physical footprint)."""
        return self.rp.storage_cells() + self.overlay.storage_cells()

    def to_array(self) -> np.ndarray:
        """Reconstruct ``A`` by box-local differencing of RP (exact)."""
        a = self.rp.array()
        for axis in range(self.ndim):
            shifted = np.zeros_like(a)
            src = [slice(None)] * self.ndim
            dst = [slice(None)] * self.ndim
            src[axis] = slice(0, -1)
            dst[axis] = slice(1, None)
            shifted[tuple(dst)] = a[tuple(src)]
            # Zero the carry at box starts: differencing restarts per box.
            starts = [slice(None)] * self.ndim
            starts[axis] = slice(0, None, self.box_sizes[axis])
            shifted[tuple(starts)] = 0
            a = a - shifted
        return a

    def __repr__(self) -> str:
        return (
            f"RelativePrefixSumCube(shape={self.shape}, "
            f"box_size={self.box_size})"
        )

"""Common interface for all range-sum methods.

The paper compares three methods over the same model (Section 2): the naive
array scan, the prefix sum method of Ho et al., and the relative prefix sum
method. All of them — plus this library's extensions (Fenwick cube, paged
RPS) — implement :class:`RangeSumMethod`, so workloads, benchmarks, and the
OLAP engine can treat them interchangeably.

The contract, mirroring the paper's model:

* the cube is a dense d-dimensional array of an invertible measure,
* ``range_sum(low, high)`` returns the inclusive range sum,
* ``update(index, value)`` **sets** a cell to a new value (the paper's
  "given any new value for a cell"); ``apply_delta`` adds to it,
* every logical cell access is charged to ``self.counter``.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core import indexing
from repro.errors import DimensionError, RangeError
from repro.metrics.counters import AccessCounter

DEFAULT_DTYPE = np.int64


class RangeSumMethod(abc.ABC):
    """Abstract base class for dense range-sum structures over a data cube.

    Subclasses receive the source array ``A`` at construction, build their
    internal structures, and must keep them consistent under point updates.

    Attributes:
        shape: cube shape ``(n_1, ..., n_d)``.
        ndim: number of dimensions ``d``.
        counter: the :class:`AccessCounter` charged by all operations.
    """

    #: short machine-readable identifier used by benchmarks and the CLI
    name: str = "abstract"

    def __init__(self, array: np.ndarray) -> None:
        source = np.asarray(array)
        if source.ndim < 1:
            raise DimensionError("cube must have at least one dimension")
        if source.size == 0:
            raise DimensionError("cube must not be empty")
        if not np.issubdtype(source.dtype, np.number):
            raise TypeError(f"cube dtype must be numeric, got {source.dtype}")
        self._dtype = np.dtype(
            source.dtype
            if np.issubdtype(source.dtype, np.floating)
            else DEFAULT_DTYPE
        )
        self.shape: Tuple[int, ...] = source.shape
        self.ndim: int = source.ndim
        self.counter = AccessCounter()
        self._build(source.astype(self._dtype))

    # -- construction -------------------------------------------------------

    @abc.abstractmethod
    def _build(self, array: np.ndarray) -> None:
        """Build internal structures from the dense source array."""

    @property
    def dtype(self) -> np.dtype:
        """The cube's current storage dtype.

        Integer-seeded cubes report the integer accumulation dtype they
        sum in; a :meth:`coerce_deltas` promotion (a fractional delta on
        an integer cube) widens this in place.
        """
        return self._dtype

    # -- queries ------------------------------------------------------------

    @abc.abstractmethod
    def prefix_sum(self, target: Sequence[int]):
        """Return ``SUM(A[0..target])`` inclusive.

        Implementations must charge their reads to ``self.counter``.
        """

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """Inclusive range sum via the 2^d-corner identity (Figure 3).

        Subclasses with a cheaper native path (e.g. the naive method's
        direct scan) override this.
        """
        lo, hi = indexing.normalize_range(low, high, self.shape)
        total = self._zero()
        for sign, corner in indexing.iter_corners(lo, hi):
            if indexing.has_empty_axis(corner):
                continue
            total += sign * self.prefix_sum(corner)
        return total

    def cell_value(self, index: Sequence[int]):
        """Current value of a single cell (a degenerate range sum)."""
        idx = indexing.normalize_index(index, self.shape)
        return self.range_sum(idx, idx)

    # -- batched queries -----------------------------------------------------

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched :meth:`prefix_sum` over a ``(Q, d)`` array of targets.

        Returns a length-Q vector of prefix sums. The base implementation
        loops :meth:`prefix_sum`; vectorized subclasses override it with
        gather kernels that must return identical values **and** charge
        identical logical cell costs to ``self.counter`` (the counters
        measure the paper's cost model, not numpy memory traffic, so the
        batched and looped paths are indistinguishable in the ledger).
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        results = [
            self.prefix_sum(tuple(int(c) for c in row)) for row in batch
        ]
        if not results:
            return np.empty(0, dtype=self._dtype)
        return np.asarray(results)

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched :meth:`range_sum` over ``(Q, d)`` low/high corner arrays.

        Returns a length-Q vector of inclusive range sums. The base
        implementation loops :meth:`range_sum`, which preserves each
        method's native query path (and therefore its native counter
        charges) even for subclasses that never vectorize. Vectorized
        subclasses whose ``range_sum`` is the generic corner identity
        override this with :meth:`_corner_range_sum_many`.
        """
        lo, hi = indexing.normalize_range_batch(lows, highs, self.shape)
        results = [
            self.range_sum(tuple(int(c) for c in l), tuple(int(c) for c in h))
            for l, h in zip(lo, hi)
        ]
        if not results:
            return np.empty(0, dtype=self._dtype)
        return np.asarray(results)

    def _corner_range_sum_many(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Vectorized inclusion–exclusion over pre-validated corner batches.

        Evaluates the ``2^d``-corner identity (Figure 3) with one
        :meth:`prefix_sum_many` call per corner subset, masking out the
        corners that fall off the cube (empty prefixes). Exactly the set
        of corners the looped path evaluates is gathered, so any subclass
        whose ``prefix_sum_many`` charges faithfully gets a faithful
        ``range_sum_many`` for free.
        """
        q_count, d = lo.shape
        out = np.zeros(q_count, dtype=self._dtype)
        if q_count == 0:
            return out
        for mask in range(1 << d):
            corners = hi.copy()
            for axis in range(d):
                if mask & (1 << axis):
                    corners[:, axis] = lo[:, axis] - 1
            sign = -1 if bin(mask).count("1") % 2 else 1
            valid = (corners >= 0).all(axis=1)
            if not valid.any():
                continue
            values = self.prefix_sum_many(corners[valid])
            if sign > 0:
                out[valid] += values
            else:
                out[valid] -= values
        return out

    def total(self):
        """Sum of the entire cube."""
        top = tuple(n - 1 for n in self.shape)
        return self.prefix_sum(top)

    # -- updates ------------------------------------------------------------

    def update(self, index: Sequence[int], value) -> None:
        """Set cell ``index`` to ``value`` (the paper's update model)."""
        idx = indexing.normalize_index(index, self.shape)
        delta = value - self.cell_value(idx)
        if delta:
            self.apply_delta(idx, delta)

    def coerce_deltas(self, deltas) -> np.ndarray:
        """Fit update deltas into the cube's dtype without losing value.

        Integer cubes sum exactly, so they stay integer as long as the
        deltas allow it: an integral-valued float delta (the serving
        layer's WAL hands every delta back as float64) is cast down
        losslessly. A genuinely fractional delta cannot be represented —
        rather than truncating it or failing mid-apply (an acked group
        must never be lost to a dtype mismatch), the cube promotes
        itself to the combined floating dtype first and applies the
        delta at full value.

        Returns the deltas as an array in the (possibly widened) cube
        dtype; raises :class:`TypeError` for non-numeric input.
        """
        arr = np.asarray(deltas)
        if not np.issubdtype(arr.dtype, np.number):
            raise TypeError(f"deltas must be numeric, got {arr.dtype}")
        if np.can_cast(arr.dtype, self._dtype, casting="same_kind"):
            return arr.astype(self._dtype, copy=False)
        cast = arr.astype(self._dtype)
        if np.array_equal(cast, arr):
            return cast
        self._promote(np.result_type(self._dtype, arr.dtype))
        return arr.astype(self._dtype, copy=False)

    def _promote(self, dtype) -> None:
        """Rebuild every structure under a wider dtype (one O(n^d) pass)."""
        promoted = np.dtype(dtype)
        if promoted == self._dtype:
            return
        array = np.asarray(self.to_array()).astype(promoted)
        self._dtype = promoted
        self._build(array)

    def apply_delta(self, index: Sequence[int], delta) -> None:
        """Add ``delta`` to cell ``index``, keeping structures consistent.

        The delta is first fitted into the cube's dtype (see
        :meth:`coerce_deltas`), then handed to the method's cascade.
        """
        self._apply_delta(index, self.coerce_deltas(delta)[()])

    @abc.abstractmethod
    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """Method-specific cascade for one already-coerced delta.

        Implementations must charge their writes to ``self.counter``.
        """

    def apply_batch(self, updates: Iterable[Tuple[Sequence[int], object]]) -> int:
        """Apply many ``(index, delta)`` updates; returns how many.

        The default simply loops :meth:`apply_delta`. Methods with a
        cheaper bulk path override this — e.g. the prefix-sum cube folds
        the whole batch into one O(n^d) pass, and the RPS cube switches
        between per-update cascades and a full rebuild at the measured
        crossover (the paper's daily-batch scenario).
        """
        count = 0
        for index, delta in updates:
            self.apply_delta(index, delta)
            count += 1
        return count

    def apply_batch_array(self, indices, deltas) -> int:
        """Apply an ``(m, d)`` index batch with aligned ``(m,)`` deltas.

        The array-native counterpart of :meth:`apply_batch`, fed directly
        by the serving layer's coalescer. The base implementation loops
        :meth:`apply_delta` (identical values and ledger); methods with a
        bulk path override it — the RPS cube routes through its strategy
        planner, the prefix cube folds the batch into one pass, the naive
        cube scatters in one ``np.add.at``.

        Returns the number of updates applied.
        """
        idx, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        deltas = self.coerce_deltas(deltas)
        for row, delta in zip(idx, deltas):
            self.apply_delta(tuple(int(c) for c in row), delta)
        return len(idx)

    # -- introspection ------------------------------------------------------

    @abc.abstractmethod
    def storage_cells(self) -> int:
        """Number of cells materialized by this method's structures."""

    def to_array(self) -> np.ndarray:
        """Reconstruct the current dense source array (for testing/debug).

        O(n^d) — intended for verification, not production queries.
        """
        out = np.empty(self.shape, dtype=self._dtype)
        for idx in np.ndindex(*self.shape):
            out[idx] = self.cell_value(idx)
        return out

    def verify(self, probes: int = 64, seed: int = 0) -> None:
        """Self-check: random range sums against the reconstructed array.

        Intended as an integrity check after bulk operations or a load
        from persistence. Integer cubes are compared exactly in their
        native dtype — float64 holds only 53 mantissa bits, so an
        ``isclose`` comparison would wave through corruptions in cubes
        with values beyond 2^53. Floating cubes keep the tolerance-based
        comparison (their own arithmetic reorders legitimately).

        Raises :class:`~repro.errors.RangeError` on the first mismatch;
        O(n^d) for the reconstruction plus ``probes`` range queries.
        """
        reference = np.asarray(self.to_array())
        floating = np.issubdtype(reference.dtype, np.floating)
        rng = np.random.default_rng(seed)
        for _ in range(probes):
            low, high = [], []
            for n in self.shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                low.append(a)
                high.append(b)
            region = reference[
                tuple(slice(l, h + 1) for l, h in zip(low, high))
            ]
            got = self.range_sum(tuple(low), tuple(high))
            if floating:
                expected = float(region.sum())
                mismatch = not np.isclose(float(got), expected)
            else:
                expected = int(region.sum())
                mismatch = int(got) != expected
            if mismatch:
                raise RangeError(
                    f"{type(self).__name__} failed verification at "
                    f"range {tuple(low)}..{tuple(high)}: "
                    f"got {got}, expected {expected}"
                )

    def _zero(self):
        """Additive identity in the cube's dtype."""
        return self._dtype.type(0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape})"

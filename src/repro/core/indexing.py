"""Coordinate and range geometry for d-dimensional data cubes.

This module owns the index arithmetic shared by every range-sum method:

* normalizing user-supplied cell coordinates and query ranges,
* enumerating the ``2^d`` signed corners used by the inclusion–exclusion
  identity of the prefix-sum family (Figure 3 of the paper),
* overlay box geometry (anchors, covers, face projections) used by the
  relative prefix sum method (Section 3.1).

All coordinates are zero-based. Ranges are **inclusive** on both ends,
matching the paper's formulation ``SUM(A[l_1..h_1, ..., l_d..h_d])``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import BoxSizeError, DimensionError, RangeError

Coord = Tuple[int, ...]
Range = Tuple[Coord, Coord]


def normalize_index(index: Sequence[int], shape: Sequence[int]) -> Coord:
    """Validate and canonicalize a cell coordinate.

    Accepts any integer sequence (including a bare ``int`` for 1-d cubes)
    and returns a tuple of plain Python ints. Negative indices are not
    supported: data-cube coordinates are ordinal positions along each
    dimension, not Python-style offsets from the end.

    Raises:
        DimensionError: if the arity does not match ``shape``.
        RangeError: if any coordinate falls outside ``[0, n_i)``.
    """
    if isinstance(index, int):
        index = (index,)
    idx = tuple(int(i) for i in index)
    if len(idx) != len(shape):
        raise DimensionError(
            f"expected {len(shape)} coordinates, got {len(idx)}: {idx!r}"
        )
    for axis, (i, n) in enumerate(zip(idx, shape)):
        if not 0 <= i < n:
            raise RangeError(
                f"coordinate {i} out of bounds for axis {axis} with size {n}"
            )
    return idx


def normalize_range(
    low: Sequence[int], high: Sequence[int], shape: Sequence[int]
) -> Range:
    """Validate an inclusive query range ``[low, high]``.

    Returns the pair of canonical coordinate tuples.

    Raises:
        DimensionError: on arity mismatch.
        RangeError: if a bound is out of the cube or ``low > high`` anywhere.
    """
    lo = normalize_index(low, shape)
    hi = normalize_index(high, shape)
    for axis, (l, h) in enumerate(zip(lo, hi)):
        if l > h:
            raise RangeError(
                f"inverted range on axis {axis}: low {l} > high {h}"
            )
    return lo, hi


def normalize_index_batch(targets, shape: Sequence[int]) -> np.ndarray:
    """Validate and canonicalize a ``(Q, d)`` batch of cell coordinates.

    The batch counterpart of :func:`normalize_index`, used by the
    ``*_many`` query kernels. Accepts any array-like of coordinate rows
    (a ``(Q, d)`` integer array, a list of tuples, ...); for 1-d cubes a
    flat length-Q vector is also accepted. ``Q = 0`` is legal and yields
    a ``(0, d)`` result.

    Returns:
        A ``(Q, d)`` ``np.intp`` array of validated coordinates.

    Raises:
        DimensionError: if rows do not have one coordinate per dimension.
        TypeError: if the batch is not of integer dtype.
        RangeError: if any coordinate falls outside ``[0, n_i)``.
    """
    d = len(shape)
    arr = np.asarray(targets)
    if arr.size == 0:
        # Arity is validated even for empty batches: a (0, j) batch with
        # j != d is malformed, not merely empty. A flat length-0 vector
        # (e.g. a bare ``[]``) is accepted as "no rows" for any d.
        if arr.ndim > 2 or (arr.ndim == 2 and arr.shape[1] != d):
            raise DimensionError(
                f"expected a (Q, {d}) batch of coordinates, got shape "
                f"{arr.shape}"
            )
        return np.empty((0, d), dtype=np.intp)
    if d == 1 and arr.ndim == 1:
        arr = arr[:, np.newaxis]
    if arr.ndim != 2 or arr.shape[1] != d:
        raise DimensionError(
            f"expected a (Q, {d}) batch of coordinates, got shape "
            f"{arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(
            f"coordinate batches must be integer-typed, got {arr.dtype}"
        )
    arr = arr.astype(np.intp, copy=False)
    bounds = np.asarray(shape, dtype=np.intp)
    bad = (arr < 0) | (arr >= bounds)
    if bad.any():
        q, axis = map(int, np.argwhere(bad)[0])
        raise RangeError(
            f"coordinate {int(arr[q, axis])} of batch row {q} out of "
            f"bounds for axis {axis} with size {shape[axis]}"
        )
    return arr


def normalize_range_batch(
    lows, highs, shape: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a batch of inclusive query ranges ``[lows[q], highs[q]]``.

    The batch counterpart of :func:`normalize_range`. Both inputs follow
    the :func:`normalize_index_batch` conventions and must have the same
    number of rows.

    Returns:
        The pair of validated ``(Q, d)`` ``np.intp`` arrays.

    Raises:
        DimensionError: on arity or batch-length mismatch.
        RangeError: if a bound is out of the cube or ``low > high``
            anywhere.
    """
    lo = normalize_index_batch(lows, shape)
    hi = normalize_index_batch(highs, shape)
    if len(lo) != len(hi):
        raise DimensionError(
            f"lows and highs disagree on batch size: {len(lo)} vs {len(hi)}"
        )
    inverted = lo > hi
    if inverted.any():
        q, axis = map(int, np.argwhere(inverted)[0])
        raise RangeError(
            f"inverted range in batch row {q} on axis {axis}: "
            f"low {int(lo[q, axis])} > high {int(hi[q, axis])}"
        )
    return lo, hi


def normalize_update_batch(
    indices, deltas, shape: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate an ``(m, d)`` index batch with its aligned delta vector.

    The update counterpart of :func:`normalize_index_batch`, used by the
    ``apply_batch_array`` kernels. ``deltas`` may be any length-m numeric
    array-like, or a scalar (broadcast to every row).

    Returns:
        ``(indices, deltas)`` — a validated ``(m, d)`` ``np.intp`` array
        and a length-m numeric array.

    Raises:
        DimensionError: on arity mismatch or when the delta vector does
            not align with the index batch.
        TypeError: if either input is not numeric.
        RangeError: if any coordinate falls outside ``[0, n_i)``.
    """
    idx = normalize_index_batch(indices, shape)
    arr = np.asarray(deltas)
    if arr.ndim == 0:
        arr = np.broadcast_to(arr, (len(idx),))
    if arr.ndim != 1 or len(arr) != len(idx):
        raise DimensionError(
            f"expected {len(idx)} deltas aligned with the index batch, "
            f"got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.number):
        raise TypeError(f"deltas must be numeric, got {arr.dtype}")
    return idx, arr


def range_volume(low: Coord, high: Coord) -> int:
    """Number of cells inside the inclusive range ``[low, high]``."""
    volume = 1
    for l, h in zip(low, high):
        volume *= h - l + 1
    return volume


def range_to_slices(low: Coord, high: Coord) -> Tuple[slice, ...]:
    """Convert an inclusive range to a tuple of numpy-ready slices."""
    return tuple(slice(l, h + 1) for l, h in zip(low, high))


def prefix_slices(target: Coord) -> Tuple[slice, ...]:
    """Slices selecting the prefix region ``A[0..target]`` (inclusive)."""
    return tuple(slice(0, t + 1) for t in target)


def iter_corners(low: Coord, high: Coord) -> Iterator[Tuple[int, Coord]]:
    """Yield the signed corners of the inclusion–exclusion identity.

    A range sum decomposes into ``2^d`` prefix sums (Figure 3):

        SUM(A[l..h]) = sum over subsets S of dimensions of
                       (-1)^|S| * Pre(c_S)

    where corner ``c_S`` takes ``h_i`` on dimensions outside S and
    ``l_i - 1`` on dimensions in S. Corners with any coordinate equal to
    ``-1`` denote an empty prefix; they are yielded unchanged (with the
    ``-1`` in place) so callers can treat them as zero-valued lookups or
    skip them.

    Yields:
        ``(sign, corner)`` pairs with ``sign`` in ``{+1, -1}``.
    """
    d = len(low)
    for subset in itertools.product((False, True), repeat=d):
        sign = -1 if sum(subset) % 2 else 1
        corner = tuple(
            (low[i] - 1) if subset[i] else high[i] for i in range(d)
        )
        yield sign, corner


def has_empty_axis(corner: Coord) -> bool:
    """True if a corner produced by :func:`iter_corners` denotes an empty prefix."""
    return any(c < 0 for c in corner)


# ---------------------------------------------------------------------------
# Overlay box geometry (Section 3.1)
# ---------------------------------------------------------------------------


def validate_box_size(box_size: int, shape: Sequence[int]) -> int:
    """Check that a uniform overlay box side length is usable for ``shape``.

    The paper requires ``k >= 1``; ``k`` larger than a dimension simply
    yields a single (possibly partial) box along that dimension, which is
    legal. ``k = 1`` degenerates RP to a copy of A and the overlay into a
    full prefix-sum structure; it is allowed but rarely useful.
    """
    k = int(box_size)
    if k < 1:
        raise BoxSizeError(f"box size must be >= 1, got {k}")
    if not shape:
        raise DimensionError("cube shape must have at least one dimension")
    return k


def normalize_box_sizes(box_size, shape: Sequence[int]) -> Tuple[int, ...]:
    """Canonicalize a box-size spec to one side length per dimension.

    The paper fixes a single ``k`` on every dimension "for clarity, and
    without loss of generality"; this library also accepts a per-axis
    tuple (useful when dimension sizes differ widely, or to make one box
    match a disk page exactly).
    """
    if not shape:
        raise DimensionError("cube shape must have at least one dimension")
    if isinstance(box_size, (int, np.integer)):
        return (validate_box_size(box_size, shape),) * len(shape)
    sizes = tuple(int(k) for k in box_size)
    if len(sizes) != len(shape):
        raise BoxSizeError(
            f"need one box size per dimension ({len(shape)}), "
            f"got {len(sizes)}: {sizes}"
        )
    for k in sizes:
        if k < 1:
            raise BoxSizeError(f"box sizes must be >= 1, got {sizes}")
    return sizes


def anchor_of(index: Coord, box_size) -> Coord:
    """Anchor (lowest corner) of the overlay box covering ``index``.

    ``box_size`` may be a single side length or one per dimension.
    """
    sizes = _per_axis(box_size, len(index))
    return tuple((i // k) * k for i, k in zip(index, sizes))


def box_count(shape: Sequence[int], box_size) -> int:
    """Total number of overlay boxes: ``prod(ceil(n_i / k_i))``."""
    sizes = _per_axis(box_size, len(shape))
    count = 1
    for n, k in zip(shape, sizes):
        count *= -(-n // k)
    return count


def iter_anchors(shape: Sequence[int], box_size) -> Iterator[Coord]:
    """Yield every box anchor in row-major order."""
    sizes = _per_axis(box_size, len(shape))
    axes = [range(0, n, k) for n, k in zip(shape, sizes)]
    return itertools.product(*axes)


def box_extent(anchor: Coord, shape: Sequence[int], box_size) -> Range:
    """Inclusive cell range covered by the box anchored at ``anchor``.

    Boxes at the high edge of a dimension whose size is not a multiple of
    the box side are truncated to the cube boundary (partial boxes).
    """
    sizes = _per_axis(box_size, len(shape))
    high = tuple(
        min(a + k - 1, n - 1) for a, k, n in zip(anchor, sizes, shape)
    )
    return anchor, high


def _per_axis(box_size, ndim: int) -> Tuple[int, ...]:
    """Expand a scalar box size to one entry per axis (tuples unchanged)."""
    if isinstance(box_size, (int, np.integer)):
        return (int(box_size),) * ndim
    return tuple(int(k) for k in box_size)


def face_projection(target: Coord, anchor: Coord, axis: int) -> Coord:
    """Project ``target`` onto face ``axis`` of its covering box.

    The projection replaces the target's coordinate on ``axis`` with the
    anchor coordinate; the query identity reads one border value at each
    of the d projections (Section 3.2 / DESIGN.md Section 1).
    """
    projected = list(target)
    projected[axis] = anchor[axis]
    return tuple(projected)


def covers(anchor: Coord, box_size: int, index: Coord) -> bool:
    """True if the box anchored at ``anchor`` covers cell ``index``."""
    return all(a <= i < a + box_size for a, i in zip(anchor, index))


def dominates(lower: Coord, upper: Coord) -> bool:
    """Componentwise ``lower <= upper`` — the cascading-update predicate."""
    return all(l <= u for l, u in zip(lower, upper))

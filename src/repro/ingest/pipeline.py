"""The ingest coordinator: one pass, encode -> coalesce -> submit.

:class:`IngestPipeline` drives a replayable source
(:mod:`repro.ingest.sources`) into a target adapter
(:mod:`repro.ingest.targets`) with three robustness properties the rest
of this package exists for:

**Exactly-once.** Groups cover contiguous row ranges ``[start, end)``.
Per group, the order of durable effects is fixed::

    1. quarantined rows appended to the dead-letter file, fsynced
    2. intent checkpoint: {offset: start, pending: {start, end, expect}}
    3. submit — the target's WAL ack is the commit point
    4. commit checkpoint: {offset: end}

A crash between any two steps is recoverable without loss or
double-apply: :meth:`IngestPipeline.run` starts by resolving any
pending intent against the recovered target (see
:mod:`repro.ingest.checkpoint` for the fence), truncates the
dead-letter file back to the offset it will re-read from, and streams
on. Re-encoding is deterministic, so a replayed group is bit-for-bit
the group that would have committed.

**Quarantine.** A row failing schema validation, index encoding, the
measure-dtype check, or window admission is dead-lettered with a
stable reason and counted — the stream never stops for one bad row,
and the row is never silently dropped.

**Backpressure.** The coalescing stage targets ``group_rows`` source
rows per submitted group and adapts it: a
:class:`~repro.errors.ServiceOverloadedError` halves it and backs off
exponentially before retrying (the group itself is already formed and
is retried as-is; the *next* groups shrink); a deep target queue
shrinks it; a drained queue grows it back toward ``max_group_rows``.
The same backoff covers the pre-submit roll — a rolling target's
``prepare`` submits slab-zeroing groups through the same bounded
queue, and an overload there retries instead of killing the run. The
pipeline therefore idles at whatever rate the writer sustains instead
of OOMing its buffer or hot-spinning on rejections.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cube.fact_table import validate_measure
from repro.errors import (
    EncodingError,
    IngestError,
    SchemaError,
    ServiceOverloadedError,
)
from repro.ingest.checkpoint import CheckpointStore
from repro.ingest.deadletter import DeadLetterFile
from repro.metrics.ingest import IngestMetrics

#: one buffered encoded row: (source offset, cell coords, delta,
#: original record — kept so a row expired by its own group's roll can
#: dead-letter with its source contents, not just the encoded cell)
Row = Tuple[int, Tuple[int, ...], float, object]


class IngestReport(dict):
    """The run's outcome: metrics snapshot plus final positions.

    A plain dict (JSON-ready for the CLI and benchmarks) with attribute
    access for the common fields tests assert on.
    """

    def __getattr__(self, name):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


class IngestPipeline:
    """Single-pass chunked ingestion with crash-exact resume.

    Args:
        source: a replayable chunk source (``chunks(start)``).
        schema: the :class:`~repro.cube.schema.CubeSchema` encoding
            records to cell coordinates. With ``time_column`` set the
            schema covers only the non-time dimensions; the time slot
            is read from ``record[time_column]`` and prepended.
        target: a target adapter (:mod:`repro.ingest.targets`).
        checkpoint_path: the durable offset checkpoint file.
        deadletter_path: the quarantine file.
        time_column: optional name of the record attribute holding the
            logical time slot (rolling targets).
        measure_dtype: optional cube dtype to validate measures against
            (:func:`~repro.cube.fact_table.validate_measure` with
            promotion *disallowed* — a fractional measure on an integer
            cube quarantines instead of stalling the writer behind an
            O(n^d) promotion rebuild).
        group_rows: initial source rows per submitted group.
        min_group_rows / max_group_rows: adaptation bounds.
        submit_timeout: per-attempt queue-space wait before a submit
            counts as overloaded.
        max_submit_retries: overload retries per group before giving up.
        backoff_seconds: base of the exponential overload backoff.
        queue_depth_low / queue_depth_high: grow the group size when
            the target backlog is at or below the low mark, shrink at
            or above the high mark.
        fault_plan: optional :class:`~repro.faults.FaultPlan`; its
            :meth:`~repro.faults.FaultPlan.on_ingest_stage` is consulted
            at every stage boundary (the crash matrix's kill sites).
    """

    def __init__(
        self,
        source,
        schema,
        target,
        *,
        checkpoint_path,
        deadletter_path,
        time_column: Optional[str] = None,
        measure_dtype=None,
        group_rows: int = 4096,
        min_group_rows: int = 64,
        max_group_rows: int = 65536,
        submit_timeout: Optional[float] = 0.25,
        max_submit_retries: int = 10,
        backoff_seconds: float = 0.01,
        queue_depth_low: int = 1,
        queue_depth_high: int = 8,
        fault_plan=None,
    ) -> None:
        self.source = source
        self.schema = schema
        self.target = target
        self.checkpoint = CheckpointStore(checkpoint_path)
        self.deadletter = DeadLetterFile(deadletter_path)
        self.time_column = time_column
        self.measure_dtype = (
            None if measure_dtype is None else np.dtype(measure_dtype)
        )
        self.min_group_rows = int(min_group_rows)
        self.max_group_rows = int(max_group_rows)
        if not 1 <= self.min_group_rows <= self.max_group_rows:
            raise IngestError(
                f"need 1 <= min_group_rows <= max_group_rows, got "
                f"[{self.min_group_rows}, {self.max_group_rows}]"
            )
        self.group_rows = min(
            self.max_group_rows, max(self.min_group_rows, int(group_rows))
        )
        self.submit_timeout = submit_timeout
        self.max_submit_retries = int(max_submit_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.queue_depth_low = int(queue_depth_low)
        self.queue_depth_high = int(queue_depth_high)
        self.faults = fault_plan
        self.metrics = IngestMetrics()

    # -- stage boundary hook -------------------------------------------------

    def _boundary(self, stage: str) -> None:
        if self.faults is not None:
            self.faults.on_ingest_stage(stage)

    # -- the single pass -----------------------------------------------------

    def run(self) -> IngestReport:
        """Stream the source to completion (resuming if checkpointed).

        Returns an :class:`IngestReport`. Raises whatever a stage
        boundary's injected fault raises (the crash matrix), or the
        target's terminal errors after retries are exhausted.
        """
        offset = self._resume()
        buffer: List[Row] = []
        buf_start = buf_end = offset
        for chunk_offset, records in self.source.chunks(offset):
            self._boundary("chunk")
            self.metrics.record_chunk(len(records))
            buffer.extend(self._encode_chunk(chunk_offset, records))
            self._boundary("encode")
            buf_end = chunk_offset + len(records)
            if buf_end - buf_start >= self.group_rows:
                self._commit_group(buffer, buf_start, buf_end)
                buffer = []
                buf_start = buf_end
        if buf_end > buf_start:
            self._commit_group(buffer, buf_start, buf_end)
        # terminal state: committed offset, no pending — also covers an
        # empty source (offset 0 becomes durable instead of no file)
        self.checkpoint.save(self._committed_state(buf_end))
        self.target.flush()
        self.deadletter.sync()
        return self._report(buf_end)

    # -- resume --------------------------------------------------------------

    def _resume(self) -> int:
        state = self.checkpoint.load()
        if state is None:
            # fresh run: an inherited dead-letter file would double-
            # count every row this pass re-quarantines
            self.deadletter.truncate_from(0)
            return 0
        self.metrics.record_resume()
        self.target.restore(state.get("target_state", {}))
        pending = state.get("pending")
        if pending is None:
            offset = int(state["offset"])
            self.deadletter.truncate_from(offset)
            return offset
        status = self.target.committed(pending["expect"])
        start, end = int(pending["start"]), int(pending["end"])
        if status == "all":
            # the in-flight group committed before the crash: its rows
            # and dead letters are fully accounted for — skip them
            self.target.restore(pending.get("target_state", {}))
            self.metrics.record_fence_skip()
            self.checkpoint.save(self._committed_state(end))
            self.deadletter.truncate_from(end)
            return end
        if status == "none":
            # nothing committed: clear the intent *now* so a second
            # crash cannot fence a replayed group against a stale
            # expectation covering different row boundaries
            self.checkpoint.save(self._committed_state(start))
            self.deadletter.truncate_from(start)
            return start
        # partial (cluster): some shards hold the group, some do not.
        # Re-read exactly the intended rows, re-encode (deterministic),
        # and resubmit only the missing shards' sub-updates.
        self.metrics.record_partial_resubmit()
        self.deadletter.truncate_from(start)
        rows = self._reencode_range(start, end, pending)
        pairs = _coalesce(rows)
        self.deadletter.sync()
        if pairs:
            self.target.resubmit_missing(
                pairs, pending["expect"], timeout=self.submit_timeout
            )
        self.checkpoint.save(self._committed_state(end))
        self.deadletter.truncate_from(end)
        return end

    def _reencode_range(self, start: int, end: int, pending: Dict
                        ) -> List[Row]:
        self.target.restore(pending.get("target_state", {}))
        rows: List[Row] = []
        for chunk_offset, records in self.source.chunks(start):
            if chunk_offset >= end:
                break
            take = records[: max(0, end - chunk_offset)]
            rows.extend(self._encode_chunk(chunk_offset, take))
        return rows

    # -- encode --------------------------------------------------------------

    def _quarantine(self, offset: int, reason: str, error, record) -> None:
        self.deadletter.append(offset, reason, str(error), record)
        self.metrics.record_quarantine(reason)

    def _encode_chunk(self, chunk_offset: int, records) -> List[Row]:
        rows: List[Row] = []
        for i, record in enumerate(records):
            offset = chunk_offset + i
            try:
                coords = self._encode_coords(record)
            except SchemaError as error:
                self._quarantine(offset, "schema", error, record)
                continue
            except EncodingError as error:
                self._quarantine(offset, "encoding", error, record)
                continue
            except _BadTime as error:
                self._quarantine(offset, "bad_time", error, record)
                continue
            except _BadMeasure as error:
                self._quarantine(offset, "measure_dtype", error, record)
                continue
            ok, reason = self.target.admit(coords[0])
            if not ok:
                self._quarantine(
                    offset, reason,
                    f"cell {coords[0]} not admissible", record,
                )
                continue
            rows.append((offset, coords[0], coords[1], record))
        return rows

    def _encode_coords(self, record) -> Tuple[Tuple[int, ...], float]:
        slot = None
        if self.time_column is not None:
            if self.time_column not in record:
                raise _BadTime(
                    f"record missing time column {self.time_column!r}"
                )
            raw = record[self.time_column]
            try:
                slot = int(raw)
            except (TypeError, ValueError):
                raise _BadTime(
                    f"time column {self.time_column!r}={raw!r} is not "
                    f"an integer slot"
                ) from None
            if slot < 0:
                raise _BadTime(f"negative time slot {slot}")
        coords, measure = self.schema.encode_record(record)
        if self.measure_dtype is not None:
            try:
                validate_measure(
                    measure, self.measure_dtype, allow_promotion=False
                )
            except SchemaError as error:
                raise _BadMeasure(str(error)) from None
        if slot is not None:
            coords = (slot,) + coords
        return coords, float(measure)

    # -- submit --------------------------------------------------------------

    def _commit_group(self, rows: List[Row], start: int, end: int) -> None:
        if rows:
            # the roll comes first: opening the group's top slot may
            # expire slots earlier rows were admitted under, and the
            # intent's expected sequence must account for any slab-
            # zeroing groups the advance submits
            before = getattr(self.target, "roller", None)
            newest_before = before.newest_slot if before else None
            pairs_to_roll = [(c, d) for _, c, d, _ in rows]
            self._retry_on_overload(
                lambda: self.target.prepare(
                    pairs_to_roll, timeout=self.submit_timeout
                )
            )
            if before is not None and before.newest_slot != newest_before:
                self.metrics.record_roll(before.newest_slot - newest_before)
            self._boundary("roll")
            admitted: List[Row] = []
            for offset, coords, delta, record in rows:
                ok, reason = self.target.admit(coords)
                if ok:
                    admitted.append((offset, coords, delta, record))
                else:
                    self._quarantine(
                        offset, reason,
                        f"cell {coords} expired during the group's roll",
                        record,
                    )
            rows = admitted
        self.deadletter.sync()
        self._boundary("deadletter")
        pairs = _coalesce(rows)
        if pairs:
            expect = self.target.expect(pairs)
            self.checkpoint.save({
                "offset": int(start),
                "target_state": self.target.state(),
                "pending": {
                    "start": int(start),
                    "end": int(end),
                    "expect": expect,
                    "target_state": self.target.state(),
                },
            })
            self._boundary("intent")
            self._submit_with_backpressure(pairs, expect)
            self.metrics.record_applied(len(rows))
            self._boundary("submit")
        self.checkpoint.save(self._committed_state(end))
        self._boundary("checkpoint")
        self._adapt_group_size()

    def _submit_with_backpressure(self, pairs, expect) -> None:
        self._retry_on_overload(
            lambda: self.target.submit_fenced(
                pairs, expect, timeout=self.submit_timeout
            )
        )
        self.metrics.record_group(len(pairs))

    def _retry_on_overload(self, operation) -> None:
        """Run ``operation`` under the overload backoff: each rejection
        shrinks future groups and waits before retrying. Used for both
        the fenced submit and the pre-submit roll — both must be safe
        to re-run as-is, which submits are (the intent is durable) and
        the roll is (``advance`` moves the window only past slabs whose
        zeroing group was acked)."""
        for attempt in range(self.max_submit_retries + 1):
            try:
                operation()
                return
            except ServiceOverloadedError:
                self.metrics.record_overload()
                self.group_rows = max(
                    self.min_group_rows, self.group_rows // 2
                )
                if attempt >= self.max_submit_retries:
                    raise
                time.sleep(
                    self.backoff_seconds * min(64, 2 ** attempt)
                )

    def _adapt_group_size(self) -> None:
        depth = self.target.queue_depth()
        if depth >= self.queue_depth_high:
            self.group_rows = max(self.min_group_rows, self.group_rows // 2)
        elif depth <= self.queue_depth_low:
            self.group_rows = min(self.max_group_rows, self.group_rows * 2)

    # -- state/report --------------------------------------------------------

    def _committed_state(self, offset: int) -> Dict:
        return {
            "offset": int(offset),
            "target_state": self.target.state(),
            "pending": None,
        }

    def _report(self, offset: int) -> IngestReport:
        report = IngestReport(self.metrics.snapshot())
        report["offset"] = int(offset)
        report["group_rows"] = self.group_rows
        report["deadletter_reasons"] = self.deadletter.counters()
        report["deadletter_total"] = self.deadletter.total
        return report

    def close(self) -> None:
        """Release the dead-letter file handle."""
        self.deadletter.close()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _BadTime(IngestError):
    """Internal: a record's time slot is missing or malformed."""


class _BadMeasure(IngestError):
    """Internal: a measure the configured cube dtype cannot hold."""


def _coalesce(rows: List[Row]) -> List[Tuple[Tuple[int, ...], float]]:
    """Merge per-row deltas into one delta per touched cell.

    Columnar: one ``np.unique`` over the coordinate matrix plus one
    scatter-add — no Python dict of tuples. Output order is the sorted
    cell order ``np.unique`` defines, which makes replayed groups
    byte-identical to the originals.
    """
    if not rows:
        return []
    coords = np.asarray([row[1] for row in rows], dtype=np.intp)
    deltas = np.asarray([row[2] for row in rows], dtype=np.float64)
    cells, inverse = np.unique(coords, axis=0, return_inverse=True)
    sums = np.zeros(len(cells), dtype=np.float64)
    np.add.at(sums, inverse.reshape(-1), deltas)
    return [
        (tuple(int(c) for c in cell), float(total))
        for cell, total in zip(cells, sums)
    ]

"""Replayable chunked record sources for the ingest pipeline.

A source is anything with ``chunks(start) -> iterator of (offset,
records)`` where ``offset`` is the 0-based index of the chunk's first
row in the *whole stream* and ``records`` is a list of plain mappings.
Two properties make exactly-once resume possible and every source here
guarantees them:

* **Deterministic replay** — ``chunks(k)`` yields exactly the rows the
  original pass would have yielded from offset ``k`` on, in the same
  order with the same values. The crash-recovery path re-reads a
  suffix of the stream and must reproduce the in-flight group
  bit-for-bit.
* **Monotone offsets** — chunk offsets strictly increase and partition
  the stream; row ``i`` appears in exactly one chunk.

Chunk boundaries themselves need *not* be stable across different
``chunk_rows`` settings; the pipeline checkpoints group boundaries, not
chunk boundaries, and groups always cover whole chunks of the pass that
wrote them only until the next resume re-chunks the suffix.
"""

from __future__ import annotations

import csv
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import IngestError

#: one yielded chunk: (offset of first row, rows)
Chunk = Tuple[int, List[Dict]]


def _check_start(start: int) -> int:
    start = int(start)
    if start < 0:
        raise IngestError(f"source offset must be >= 0, got {start}")
    return start


def _check_chunk_rows(chunk_rows: int) -> int:
    chunk_rows = int(chunk_rows)
    if chunk_rows < 1:
        raise IngestError(f"chunk_rows must be >= 1, got {chunk_rows}")
    return chunk_rows


class MemorySource:
    """An in-memory list of records, chunked — the test double.

    Args:
        records: the fact records (any iterable of mappings; stored).
        chunk_rows: rows per yielded chunk.
    """

    def __init__(self, records, chunk_rows: int = 1024) -> None:
        self._records: List[Dict] = [dict(r) for r in records]
        self.chunk_rows = _check_chunk_rows(chunk_rows)

    def __len__(self) -> int:
        return len(self._records)

    def chunks(self, start: int = 0) -> Iterator[Chunk]:
        """Yield ``(offset, rows)`` chunks from row ``start`` on."""
        start = _check_start(start)
        for lo in range(start, len(self._records), self.chunk_rows):
            hi = min(lo + self.chunk_rows, len(self._records))
            yield lo, [dict(r) for r in self._records[lo:hi]]


class ColumnarSource:
    """Columnar (numpy) arrays served as row-record chunks.

    The natural shape of a bulk export is one array per column; this
    source row-slices the columns per chunk and materializes dicts only
    for the rows of the chunk in hand — the whole table is never turned
    into a list of a million dicts.

    Args:
        columns: mapping of column name to a 1-d array-like; all columns
            must share one length.
        chunk_rows: rows per yielded chunk.
    """

    def __init__(
        self, columns: Mapping[str, np.ndarray], chunk_rows: int = 4096
    ) -> None:
        if not columns:
            raise IngestError("a columnar source needs at least one column")
        self._columns = {
            str(name): np.asarray(values) for name, values in columns.items()
        }
        lengths = {name: len(col) for name, col in self._columns.items()}
        if len(set(lengths.values())) != 1:
            raise IngestError(f"ragged columns: {lengths}")
        self._rows = next(iter(lengths.values()))
        self.chunk_rows = _check_chunk_rows(chunk_rows)

    def __len__(self) -> int:
        return self._rows

    def chunks(self, start: int = 0) -> Iterator[Chunk]:
        """Yield ``(offset, rows)`` chunks from row ``start`` on."""
        start = _check_start(start)
        names = list(self._columns)
        for lo in range(start, self._rows, self.chunk_rows):
            hi = min(lo + self.chunk_rows, self._rows)
            slices = [self._columns[name][lo:hi] for name in names]
            yield lo, [
                {
                    name: value.item()
                    if isinstance(value, np.generic) else value
                    for name, value in zip(names, row)
                }
                for row in zip(*slices)
            ]


class CSVSource:
    """A header-rowed CSV file read in chunks, resumable by row offset.

    Resume does not trust byte offsets (a quoted field may span lines);
    it re-reads from the top and skips ``start`` data rows — O(start)
    line parsing, paid once per crash, never per row of normal flow.

    Args:
        path: the CSV file path.
        chunk_rows: data rows per yielded chunk.
        converters: optional per-column conversion functions (CSV yields
            strings; e.g. ``{"sales": float, "age": int}``). A converter
            raising ``ValueError``/``TypeError`` does *not* fail the
            source — the raw string is kept and the schema encode stage
            downstream quarantines the row with its real reason.
    """

    def __init__(
        self,
        path,
        chunk_rows: int = 4096,
        converters: Optional[Mapping[str, Callable]] = None,
    ) -> None:
        self.path = path
        self.chunk_rows = _check_chunk_rows(chunk_rows)
        self.converters = dict(converters or {})

    def chunks(self, start: int = 0) -> Iterator[Chunk]:
        """Yield ``(offset, rows)`` chunks from data row ``start`` on."""
        start = _check_start(start)
        with open(self.path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise IngestError(f"{self.path!s}: empty CSV, no header row")
            offset = 0
            chunk: List[Dict] = []
            chunk_start = start
            for row in reader:
                if offset >= start:
                    record = {}
                    for key, raw in row.items():
                        convert = self.converters.get(key)
                        if convert is None:
                            record[key] = raw
                        else:
                            try:
                                record[key] = convert(raw)
                            except (ValueError, TypeError):
                                record[key] = raw
                    chunk.append(record)
                    if len(chunk) >= self.chunk_rows:
                        yield chunk_start, chunk
                        chunk = []
                        chunk_start = offset + 1
                offset += 1
            if chunk:
                yield chunk_start, chunk

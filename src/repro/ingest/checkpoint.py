"""The durable source-offset checkpoint and its commit fence.

One small JSON file is the whole of the pipeline's crash state. It
holds, at every instant, either

* a **committed** position — ``{"offset": k}``: every source row below
  ``k`` is fully accounted for (applied to the target or quarantined),
  nothing at or above ``k`` has been submitted — or
* an **intent** — the committed position *plus* ``"pending"``
  describing the one group in flight: the half-open row range
  ``[start, end)`` it covers and the target sequence number(s) it will
  commit at (``expect``), captured immediately before the submit.

The write protocol per group is::

    quarantine rows of the group, fsync the dead-letter file
    save {"offset": start, "pending": {start, end, expect}}   # intent
    target.submit(group)            # durable at the target when it acks
    save {"offset": end}                                      # commit

A crash can interleave anywhere; the resume path reloads the file and,
when an intent is present, asks the *recovered target* whether the
expected sequence committed (:meth:`repro.ingest.targets.ServiceTarget.
committed`). The target's own WAL is the arbiter — the acked sequence
either survived recovery or it did not — so the pipeline replays the
group exactly when it is missing and skips it exactly when it is not.
This is the fence that turns at-least-once retry into exactly-once.

The file itself is written with the repo's usual crash discipline:
canonical JSON + embedded crc32c, written to a temp file, fsynced,
``os.replace``-d over the old one, directory fsynced. A torn or
corrupt checkpoint therefore cannot exist; the old state simply
survives.

The fence assumes the pipeline is the only writer advancing the
target's sequence domain between the intent and the resume (the
single-logical-writer rule every transactional producer has). Reader
traffic is unrestricted.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.errors import IngestError
from repro.serve.wal import crc32c


class CheckpointStore:
    """Atomic load/save of the pipeline's checkpoint state."""

    def __init__(self, path) -> None:
        self.path = path

    def load(self) -> Optional[Dict]:
        """The last durably saved state, or ``None`` for a fresh run.

        Raises :class:`~repro.errors.IngestError` when the file exists
        but fails its checksum — a checkpoint that cannot be trusted
        must stop the pipeline, not silently restart it from zero (that
        would double-apply everything after the real offset).
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        try:
            wrapper = json.loads(raw.decode("utf-8"))
            payload = json.dumps(
                wrapper["state"], sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            if crc32c(payload) != int(wrapper["crc"]):
                raise ValueError("checksum mismatch")
            state = wrapper["state"]
        except (ValueError, KeyError, TypeError) as error:
            raise IngestError(
                f"{self.path!s}: corrupt ingest checkpoint ({error}); "
                f"refusing to guess a resume offset"
            ) from error
        return state

    def save(self, state: Dict) -> None:
        """Durably replace the checkpoint (atomic, all-or-nothing)."""
        payload = json.dumps(
            state, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        wrapper = json.dumps(
            {"crc": crc32c(payload), "state": state},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        tmp = f"{self.path}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(wrapper)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        dirfd = os.open(
            os.path.dirname(os.path.abspath(self.path)), os.O_RDONLY
        )
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    def __repr__(self) -> str:
        return f"CheckpointStore({self.path!s})"

"""The dead-letter file: checksummed quarantine for poison rows.

"Never silently dropped, never poisoning the writer": a row the
pipeline cannot turn into a cell delta — missing dimension, value
outside an encoder's domain, a measure the cube's dtype cannot hold —
is appended here and counted, and the stream moves on.

Format: one entry per line, ``<crc32c hex8>\\t<canonical json>``. The
JSON carries ``offset`` (the row's position in the source stream),
``reason`` (a stable category for counters), ``error`` (the human
message) and ``record`` (the offending row, stringified where not
JSON-representable). The CRC is over the JSON bytes, same crc32c the
WAL uses.

Crash semantics mirror the WAL's:

* an append is durable once :meth:`DeadLetterFile.sync` returns — the
  pipeline syncs quarantined rows *before* persisting the intent to
  submit their chunk, so a chunk the fence later proves committed
  always has its dead letters on disk already;
* a torn final line is the expected image of a crash mid-append and is
  repaired (truncated) on open; a bad checksum anywhere else raises
  :class:`~repro.errors.DeadLetterCorruptionError`;
* :meth:`DeadLetterFile.truncate_from` drops every entry at or past a
  source offset — the resume path calls it with the offset it will
  re-read from, so re-processed rows re-quarantine exactly once.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Optional

from repro.errors import DeadLetterCorruptionError
from repro.serve.wal import crc32c


def _encode_entry(entry: Dict) -> bytes:
    payload = json.dumps(
        entry, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")
    return b"%08x\t%s\n" % (crc32c(payload), payload)


def _decode_line(line: bytes) -> Optional[Dict]:
    """One parsed entry, or ``None`` for a torn/invalid line."""
    if not line.endswith(b"\n"):
        return None
    body = line[:-1]
    if len(body) < 10 or body[8:9] != b"\t":
        return None
    try:
        expected = int(body[:8], 16)
    except ValueError:
        return None
    payload = body[9:]
    if crc32c(payload) != expected:
        return None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def read_dead_letters(path) -> List[Dict]:
    """All entries of a dead-letter file, CRC-verified.

    A torn final line (crash mid-append) is tolerated and dropped; a
    checksum failure on any earlier line raises
    :class:`~repro.errors.DeadLetterCorruptionError`.
    """
    try:
        with open(path, "rb") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return []
    entries: List[Dict] = []
    for i, line in enumerate(lines):
        entry = _decode_line(line)
        if entry is None:
            if i == len(lines) - 1:
                break  # torn tail: the expected crash image
            raise DeadLetterCorruptionError(
                f"{path!s}: bad checksum at entry {i} "
                f"(not the tail — the file was damaged after writing)"
            )
        entries.append(entry)
    return entries


class DeadLetterFile:
    """Append-only quarantine with per-reason counters.

    Opening scans the existing file (if any) to repair a torn tail and
    rebuild counters, so a resumed pipeline reports totals over the
    whole run, not just the rows since the last crash.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._reasons: Counter = Counter()
        entries = read_dead_letters(path)  # validates + detects torn tail
        if entries:
            for entry in entries:
                self._reasons[str(entry.get("reason", "?"))] += 1
        self._rewrite(entries, preserve_missing=True)
        # the append handle opens lazily on first append: a clean
        # stream never creates an empty quarantine file
        self._handle = None

    def _rewrite(self, entries: List[Dict], preserve_missing=False) -> None:
        """Atomically replace the file with exactly ``entries``."""
        if preserve_missing and not os.path.exists(self.path):
            # nothing to repair and nothing to write: don't create an
            # empty quarantine file for a clean stream
            if not entries:
                return
        tmp = f"{self.path}.tmp"
        with open(tmp, "wb") as handle:
            for entry in entries:
                handle.write(_encode_entry(entry))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        dirfd = os.open(os.path.dirname(os.path.abspath(self.path)),
                        os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    def append(self, offset: int, reason: str, error: str, record) -> None:
        """Quarantine one row (buffered; durable after :meth:`sync`)."""
        entry = {
            "offset": int(offset),
            "reason": str(reason),
            "error": str(error),
            "record": record if isinstance(record, dict) else str(record),
        }
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(_encode_entry(entry))
        self._reasons[str(reason)] += 1

    def sync(self) -> None:
        """Make every appended entry durable (no-op before the first
        append — rewrites fsync themselves)."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def truncate_from(self, offset: int) -> int:
        """Drop entries with ``entry.offset >= offset``; returns count.

        The resume path's idempotence guard: rows at or past the resume
        offset are about to be re-processed, so their earlier quarantine
        entries (written after the checkpoint the pipeline is resuming
        from) must go, or they would appear twice.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        entries = read_dead_letters(self.path)
        keep = [e for e in entries if int(e.get("offset", -1)) < int(offset)]
        dropped = len(entries) - len(keep)
        if dropped:
            self._rewrite(keep)
            self._reasons = Counter()
            for entry in keep:
                self._reasons[str(entry.get("reason", "?"))] += 1
        return dropped

    def counters(self) -> Dict[str, int]:
        """Per-reason quarantine tallies (whole file, all passes)."""
        return dict(self._reasons)

    @property
    def total(self) -> int:
        """Total quarantined rows currently recorded."""
        return sum(self._reasons.values())

    def close(self) -> None:
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "DeadLetterFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"DeadLetterFile({self.path!s}, {self.total} entries)"

"""Target adapters: one submit/fence contract over service and cluster.

The pipeline speaks one small protocol and these adapters implement it
for each backend:

``admit(coords)``
    Whether a cell is currently writable (the rolling target rejects
    expired time slots — those rows quarantine instead of poisoning a
    group).
``prepare(pairs)``
    Pre-submit work that must precede the durable intent (the rolling
    target advances the window here; idempotent on replay).
``expect(pairs)``
    The commit marker the next submitted group will reach, captured
    into the intent *before* the submit.
``submit(pairs)``
    One atomic group (per shard, for the cluster), durably acked when
    it returns. :class:`~repro.errors.ServiceOverloadedError` escapes
    to the pipeline's backpressure loop; node failures are absorbed by
    failover/retry here.
``committed(expect)``
    The fence: after a coordinator crash, did the in-flight group
    commit? ``"all"``, ``"none"``, or ``"partial"`` (cluster only — a
    cross-shard group is atomic per shard, and the resume resubmits
    exactly the missing shards' sub-updates via
    ``resubmit_missing``).
``state()`` / ``restore(state)``
    Adapter state persisted alongside the committed offset (the
    rolling target's ``newest_slot``).

The fence compares recorded expectations against the target's acked
sequence numbers, which is sound while the pipeline is the only writer
advancing those sequences between intent and resume — the standard
single-logical-writer rule; concurrent readers are unrestricted.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ClusterUnavailableError,
    FenceError,
    IngestError,
)

Pair = Tuple[Tuple[int, ...], float]


class ServiceTarget:
    """Adapter over one :class:`~repro.serve.CubeService`."""

    kind = "service"

    def __init__(self, service) -> None:
        self.service = service

    # -- protocol ------------------------------------------------------------

    def admit(self, coords) -> Tuple[bool, str]:
        return True, ""

    def prepare(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> None:
        pass

    def expect(self, pairs: Sequence[Pair]) -> Dict:
        return {"kind": self.kind, "seq": self.service.last_submitted_seq + 1}

    def submit(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> Dict:
        seq = self.service.submit_batch(pairs, timeout=timeout)
        return {"seq": seq}

    def submit_fenced(
        self,
        pairs: Sequence[Pair],
        expect: Dict,
        *,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Submit under the intent just persisted, verifying the group
        landed at the fenced sequence (a mismatch means another writer
        shares the sequence domain and the exactly-once fence is void —
        fail loud, the checkpoint can no longer be trusted)."""
        ack = self.submit(pairs, timeout=timeout)
        if int(ack["seq"]) != int(expect["seq"]):
            raise FenceError(
                f"group committed at seq {ack['seq']} but the intent "
                f"was fenced to {expect['seq']}; another writer is "
                f"advancing this target's sequence domain"
            )
        return ack

    def committed(self, expect: Dict) -> str:
        if expect.get("kind") != self.kind:
            raise FenceError(
                f"checkpoint intent was fenced to a {expect.get('kind')!r} "
                f"target, resuming against {self.kind!r}"
            )
        done = self.service.last_submitted_seq >= int(expect["seq"])
        return "all" if done else "none"

    def resubmit_missing(
        self,
        pairs: Sequence[Pair],
        expect: Dict,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        raise IngestError(
            "a single-service group commits atomically; there is no "
            "partial state to resubmit"
        )

    def state(self) -> Dict:
        return {}

    def restore(self, state: Dict) -> None:
        pass

    def queue_depth(self) -> int:
        return int(self.service.stats()["queue_depth"])

    def flush(self, timeout: Optional[float] = None) -> None:
        self.service.flush(timeout=timeout)


class RollingServiceTarget(ServiceTarget):
    """Adapter over a :class:`~repro.ingest.rolling.RollingCubeService`.

    Pairs carry *logical* leading time slots. ``prepare`` advances the
    window to the group's top slot before the intent is written, so the
    expected sequence number captured after it accounts for any slab
    zeroing groups; ``admit`` rejects slots the advance just expired
    (late arrivals quarantine as ``expired_slot``); ``state`` persists
    ``newest_slot`` so a resumed coordinator reopens the window where
    the checkpoint left it.
    """

    kind = "rolling"

    def __init__(self, roller) -> None:
        super().__init__(roller.service)
        self.roller = roller

    def admit(self, coords) -> Tuple[bool, str]:
        slot = int(coords[0])
        if slot < self.roller.oldest_slot:
            return False, "expired_slot"
        return True, ""

    def prepare(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> None:
        top = max(int(coords[0]) for coords, _ in pairs)
        if top > self.roller.newest_slot:
            self.roller.advance(
                top - self.roller.newest_slot, timeout=timeout
            )

    def submit(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> Dict:
        seq = self.roller.submit_slot_batch(pairs, timeout=timeout)
        return {"seq": seq}

    def state(self) -> Dict:
        return {"newest_slot": self.roller.newest_slot}

    def restore(self, state: Dict) -> None:
        if "newest_slot" in state:
            self.roller.newest_slot = max(
                self.roller.newest_slot, int(state["newest_slot"])
            )

    def flush(self, timeout: Optional[float] = None) -> None:
        self.roller.flush(timeout=timeout)


class ClusterTarget:
    """Adapter over a :class:`~repro.cluster.CubeCluster`.

    A cross-shard group is atomic per shard, not globally, so the fence
    is per shard: the intent records each touched shard's expected
    sequence, and a crash between shards resumes by resubmitting
    exactly the shards whose expectation is still unmet. Primary
    failures inside a shard are absorbed by the replica set's inline
    failover; a shard left wholly unavailable is retried here with
    backoff until ``retries`` is exhausted.
    """

    kind = "cluster"

    def __init__(
        self,
        cluster,
        *,
        retries: int = 6,
        retry_backoff: float = 0.05,
    ) -> None:
        self.cluster = cluster
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)

    # -- protocol ------------------------------------------------------------

    def admit(self, coords) -> Tuple[bool, str]:
        return True, ""

    def prepare(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> None:
        pass

    def _acked_by_shard(self) -> Dict[int, int]:
        return {
            rs.shard_id: rs.last_acked
            for rs in self.cluster.replica_sets
        }

    def _shards_of(self, pairs: Sequence[Pair]) -> Dict[int, List[Pair]]:
        """Group pairs by owning shard, keeping GLOBAL coordinates
        (``split_updates`` localizes them, which only the cluster's own
        submit path may do — resubmitting localized cells as global
        ones would route them to the wrong shard entirely)."""
        grouped: Dict[int, List[Pair]] = {}
        for cell, delta in pairs:
            shard = self.cluster.shardmap.shard_of(cell)
            grouped.setdefault(shard, []).append((cell, delta))
        return grouped

    def expect(self, pairs: Sequence[Pair]) -> Dict:
        acked = self._acked_by_shard()
        return {
            "kind": self.kind,
            "epoch": int(self.cluster.epoch),
            # JSON round-trips dict keys as strings; store them that way
            "shards": {
                str(shard): int(acked[shard]) + 1
                for shard in self._shards_of(pairs)
            },
        }

    def _submit_with_retry(
        self, pairs: Sequence[Pair], expect: Dict,
        *, timeout: Optional[float] = None,
    ) -> Dict:
        """Drive ``pairs`` until every touched shard meets its
        expectation, resubmitting only still-missing shards.

        The fence filter applies *before* the first attempt, not only
        between attempts: an overloaded shard's
        :class:`~repro.errors.ServiceOverloadedError` escapes to the
        pipeline's backpressure loop after earlier shards in the group
        already durably acked, and the loop re-enters here with the
        full group — resubmitting the acked shards' sub-updates would
        apply them twice."""
        remaining = self._missing_pairs(list(pairs), expect)
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if not remaining:
                break
            try:
                self.cluster.submit_batch(remaining, timeout=timeout)
                remaining = []
                break
            except ClusterUnavailableError as error:
                last_error = error
                remaining = self._missing_pairs(remaining, expect)
                if not remaining:
                    break
                time.sleep(self.retry_backoff * (2 ** attempt))
        if remaining:
            raise ClusterUnavailableError(
                f"ingest group could not reach "
                f"{len(remaining)} cells after "
                f"{self.retries + 1} attempts: {last_error}"
            ) from last_error
        return {"shards": {
            shard: seq for shard, seq in self._acked_by_shard().items()
        }}

    def _missing_pairs(
        self, pairs: Sequence[Pair], expect: Dict
    ) -> List[Pair]:
        """The sub-updates routed to shards whose fence is unmet."""
        acked = self._acked_by_shard()
        grouped = self._shards_of(pairs)
        missing: List[Pair] = []
        for shard, sub in grouped.items():
            seq = expect["shards"].get(str(shard))
            if seq is None:
                # the group's routing changed under us — impossible
                # within one epoch, so fail loud rather than guess
                raise FenceError(
                    f"shard {shard} appeared in routing but not in the "
                    f"fenced intent (epoch changed mid-group?)"
                )
            if acked.get(shard, 0) < int(seq):
                missing.extend(sub)
        return missing

    def submit(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> Dict:
        return self._submit_with_retry(
            pairs, self.expect(pairs), timeout=timeout
        )

    def submit_fenced(
        self,
        pairs: Sequence[Pair],
        expect: Dict,
        *,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Submit under an intent captured earlier (the pipeline's hot
        path: the same ``expect`` it just persisted)."""
        self._check_epoch(expect)
        return self._submit_with_retry(pairs, expect, timeout=timeout)

    def _check_epoch(self, expect: Dict) -> None:
        if int(expect.get("epoch", -1)) != int(self.cluster.epoch):
            raise FenceError(
                f"intent was fenced under shard-map epoch "
                f"{expect.get('epoch')}, cluster is now at epoch "
                f"{self.cluster.epoch}; per-shard sequence numbers are "
                f"not comparable across reshards"
            )

    def committed(self, expect: Dict) -> str:
        if expect.get("kind") != self.kind:
            raise FenceError(
                f"checkpoint intent was fenced to a {expect.get('kind')!r} "
                f"target, resuming against {self.kind!r}"
            )
        self._check_epoch(expect)
        acked = self._acked_by_shard()
        met = [
            acked.get(int(shard), 0) >= int(seq)
            for shard, seq in expect["shards"].items()
        ]
        if all(met):
            return "all"
        if not any(met):
            return "none"
        return "partial"

    def resubmit_missing(
        self,
        pairs: Sequence[Pair],
        expect: Dict,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        """Complete a partially committed group: only the shards whose
        expectation is unmet receive their sub-updates again."""
        self._check_epoch(expect)
        missing = self._missing_pairs(pairs, expect)
        if missing:
            self._submit_with_retry(missing, expect, timeout=timeout)

    def state(self) -> Dict:
        return {}

    def restore(self, state: Dict) -> None:
        pass

    def queue_depth(self) -> int:
        depths = [
            int(rs.primary.service.stats()["queue_depth"])
            for rs in self.cluster.replica_sets
        ]
        return max(depths) if depths else 0

    def flush(self, timeout: Optional[float] = None) -> None:
        self.cluster.flush(timeout=timeout)

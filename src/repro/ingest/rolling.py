"""Time-rolling over a live serving cube: retire a slab, open a slab.

:class:`~repro.cube.rolling_window.RollingWindowEngine` implements the
circular-time-axis trick over a bare in-process method. Streaming
ingestion needs the same semantics over a *live*
:class:`~repro.serve.CubeService` — durable, snapshot-isolated, read by
concurrent dashboards while the firehose writes — and that is what
:class:`RollingCubeService` provides.

The leading axis of the wrapped service is the physical window of
``W = service.shape[0]`` time slots; logical slot ``t`` lives at
``t mod W``. :meth:`advance` retires the oldest slab by submitting one
atomic zeroing group for the reused physical slice — computed
vectorized from the published snapshot, no per-cell loop, no rebuild —
so readers see the old slab in full or not at all, never half-expired.

Reads during the roll are **exact or explicitly estimated, never
silently stale**: every submitted group's per-slot positive and
negative delta mass is tracked until the service's applied version
catches up. :meth:`window_sum` answers from one snapshot and checks
which tracked groups that snapshot has not absorbed yet; if any of
them touch the queried slots the caller either gets an exact answer
after a flush (the default) or, with ``allow_estimate=True``, the
snapshot value wrapped in a
:class:`~repro.cluster.degraded.RangeEstimate` whose ``[low, high]``
interval is the snapshot value padded by the pending negative/positive
mass — deterministic bounds the true acked sum cannot escape.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.degraded import RangeEstimate
from repro.errors import RangeError

WindowAnswer = Union[float, RangeEstimate]


class RollingCubeService:
    """Logical-slot addressing + slab rolling over a ``CubeService``.

    Args:
        service: the wrapped service; its leading axis is the physical
            window (``service.shape[0]`` slots).
        newest_slot: the highest logical slot currently open — pass the
            checkpointed value when resuming over a recovered service
            (a fresh service starts at 0).

    Thread-safety: submits and advances serialize on one lock (the
    ingest coordinator is single-writer anyway); reads are lock-free
    against the service's snapshots except for the pending-group table,
    which is read under the same lock.
    """

    def __init__(self, service, newest_slot: int = 0) -> None:
        if len(service.shape) < 2:
            raise RangeError(
                "a rolling service needs a leading time axis plus at "
                f"least one data axis, got shape {service.shape}"
            )
        self.service = service
        self.window = int(service.shape[0])
        if self.window < 2:
            raise RangeError(
                f"window must be >= 2 slots, got {self.window}"
            )
        self.slot_shape = tuple(service.shape[1:])
        self.newest_slot = int(newest_slot)
        self._lock = threading.Lock()
        # seq -> {slot: (pos_mass, neg_mass)} for groups possibly
        # unapplied; pruned against the service version as reads and
        # writes observe it
        self._pending: Dict[int, Dict[int, Tuple[float, float]]] = {}

    @property
    def oldest_slot(self) -> int:
        """Oldest logical slot still inside the window."""
        return max(0, self.newest_slot - self.window + 1)

    def _prune(self, version: int) -> None:
        for seq in [s for s in self._pending if s <= version]:
            del self._pending[seq]

    # -- time control --------------------------------------------------------

    def advance(self, slots: int = 1, *, timeout: Optional[float] = None
                ) -> int:
        """Open ``slots`` new slots, retiring the oldest ones.

        Each reused physical slice is zeroed by one atomic group built
        from the published snapshot (flushed first, so the snapshot is
        current). Zeroing an already-empty slice submits nothing, which
        makes a crash-resume re-advance a no-op — the property the
        ingest fence relies on. ``newest_slot`` moves only after the
        slice's zeroing group is acked, so a
        :class:`~repro.errors.ServiceOverloadedError` from the bounded
        queue leaves the window where it was and a backed-off retry
        redoes the slot from the snapshot — never opening a slot over a
        still-dirty slab.

        Returns the new newest logical slot.
        """
        if slots < 1:
            raise RangeError(f"can only advance forward, got {slots}")
        with self._lock:
            for _ in range(int(slots)):
                opening = self.newest_slot + 1
                physical = opening % self.window
                self.service.flush(timeout=timeout)
                array, _ = self.service.snapshot_array()
                slab = np.asarray(array[physical])
                nonzero = np.nonzero(slab)
                if nonzero[0].size:
                    cells = np.column_stack(nonzero)
                    updates = [
                        ((physical,) + tuple(int(c) for c in cell),
                         -slab[tuple(cell)])
                        for cell in cells
                    ]
                    seq = self.service.submit_batch(
                        updates, timeout=timeout
                    )
                    # the reused physical slice serves the NEW slot: a
                    # read of it before the zeroing group applies would
                    # see the retired tenant's data, so the pending
                    # mass is tracked under the new logical slot
                    mass = float(np.abs(slab).sum())
                    self._pending[seq] = {opening: (mass, mass)}
                self.newest_slot = opening
            return self.newest_slot

    # -- writes --------------------------------------------------------------

    def submit_slot_batch(
        self,
        updates: Sequence[Tuple[Sequence[int], float]],
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Submit one atomic group of logical ``((slot, *cell), delta)``.

        Slots above :attr:`newest_slot` advance the window first (the
        mid-stream roll); slots below :attr:`oldest_slot` raise
        :class:`~repro.errors.RangeError` — the ingest pipeline
        quarantines such rows instead of calling this.
        """
        top = max(int(u[0][0]) for u in updates)
        if top > self.newest_slot:
            self.advance(top - self.newest_slot, timeout=timeout)
        with self._lock:
            physical_updates = []
            masses: Dict[int, List[float]] = {}
            for coords, delta in updates:
                slot = int(coords[0])
                self._check_slot(slot)
                physical_updates.append(
                    ((slot % self.window,) + tuple(
                        int(c) for c in coords[1:]
                    ), delta)
                )
                pos_neg = masses.setdefault(slot, [0.0, 0.0])
                if delta >= 0:
                    pos_neg[0] += float(delta)
                else:
                    pos_neg[1] += -float(delta)
            seq = self.service.submit_batch(
                physical_updates, timeout=timeout
            )
            self._pending[seq] = {
                slot: (pos, neg) for slot, (pos, neg) in masses.items()
            }
            self._prune(self.service.version)
            return seq

    def record(self, slot: int, cell: Sequence[int], amount: float) -> int:
        """Add ``amount`` at one logical cell (its own atomic group)."""
        return self.submit_slot_batch(
            [((int(slot),) + tuple(cell), float(amount))]
        )

    # -- reads ---------------------------------------------------------------

    def window_sum(
        self,
        first_slot: int,
        last_slot: int,
        low: Optional[Sequence[int]] = None,
        high: Optional[Sequence[int]] = None,
        *,
        allow_estimate: bool = False,
    ) -> WindowAnswer:
        """Sum over logical slots ``[first, last]`` and a sub-cube box.

        Exact when the serving snapshot has absorbed every group
        touching the queried slots. When ingest lags (submitted groups
        not yet applied), the default flushes and re-reads — exact,
        at a latency cost; with ``allow_estimate=True`` the snapshot
        value returns immediately as a
        :class:`~repro.cluster.degraded.RangeEstimate` bounding the
        true acked sum — explicitly marked, never silently stale.
        """
        self._check_slot(first_slot)
        self._check_slot(last_slot)
        if first_slot > last_slot:
            raise RangeError(
                f"inverted slot range [{first_slot}, {last_slot}]"
            )
        low = tuple(int(c) for c in low) if low is not None else tuple(
            0 for _ in self.slot_shape
        )
        high = tuple(int(c) for c in high) if high is not None else tuple(
            n - 1 for n in self.slot_shape
        )
        lows, highs = [], []
        for p_lo, p_hi in self._physical_ranges(first_slot, last_slot):
            lows.append((p_lo,) + low)
            highs.append((p_hi,) + high)
        values, version = self.service.query_many(lows, highs)
        value = float(np.asarray(values).sum())
        pos, neg = self._pending_mass(version, first_slot, last_slot)
        if pos == 0.0 and neg == 0.0:
            return value
        if not allow_estimate:
            self.service.flush()
            values, version = self.service.query_many(lows, highs)
            return float(np.asarray(values).sum())
        return RangeEstimate(
            value=value,
            low=value - neg,
            high=value + pos,
            confidence=1.0,
            degraded_shards=(),
            epoch=version,
        )

    def _pending_mass(
        self, version: int, first_slot: int, last_slot: int
    ) -> Tuple[float, float]:
        """Positive/negative unapplied delta mass over a slot range."""
        pos = neg = 0.0
        with self._lock:
            self._prune(version)
            for seq, masses in self._pending.items():
                if seq <= version:
                    continue
                for slot, (p, n) in masses.items():
                    if first_slot <= slot <= last_slot:
                        pos += p
                        neg += n
        return pos, neg

    def flush(self, timeout: Optional[float] = None) -> int:
        """Drain the wrapped service; subsequent reads are exact."""
        applied = self.service.flush(timeout=timeout)
        with self._lock:
            self._prune(self.service.version)
        return applied

    def _physical_ranges(self, first: int, last: int):
        """Map a logical slot range to 1 or 2 contiguous physical ones."""
        p_first = first % self.window
        p_last = last % self.window
        if last - first + 1 >= self.window:
            return [(0, self.window - 1)]
        if p_first <= p_last:
            return [(p_first, p_last)]
        return [(p_first, self.window - 1), (0, p_last)]

    def _check_slot(self, slot: int) -> None:
        if slot < self.oldest_slot or slot > self.newest_slot:
            raise RangeError(
                f"slot {slot} outside the current window "
                f"[{self.oldest_slot}, {self.newest_slot}]"
            )

    def __repr__(self) -> str:
        return (
            f"RollingCubeService(window={self.window}, "
            f"slot_shape={self.slot_shape}, "
            f"slots=[{self.oldest_slot}..{self.newest_slot}])"
        )

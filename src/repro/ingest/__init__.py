"""Streaming ingestion: the firehose from raw facts into a live cube.

The paper's premise is *dynamic* cubes — "new information arrives on a
daily basis" — and the serving stack (WAL-backed :class:`CubeService`,
failover-capable :class:`CubeCluster`) is built to absorb updates
durably. This package supplies the missing front half: a single-pass,
chunked, columnar pipeline that streams raw fact records through
``encode -> coalesce -> submit`` into a live target, engineered
robustness-first:

* **Exactly-once delivery.** A durable source-offset checkpoint
  (:mod:`repro.ingest.checkpoint`) is fenced to the target's acked
  group sequence: before every submit the coordinator persists an
  *intent* recording the rows in flight and the sequence number the
  group will commit at; after a crash the resume path compares that
  expectation against the recovered target's
  :attr:`~repro.serve.CubeService.last_submitted_seq` and either skips
  the group (it committed before the crash) or replays it (it never
  did) — never both, never neither.
* **Poison-row quarantine.** Rows failing schema validation or index
  encoding are appended to a CRC-checksummed dead-letter file
  (:mod:`repro.ingest.deadletter`) with per-reason counters — never
  silently dropped, never allowed to poison the writer.
* **End-to-end backpressure.** The coalescing stage adapts its group
  size off :class:`~repro.errors.ServiceOverloadedError` and the
  target's queue depth instead of OOMing or hot-spinning.
* **Time rolling.** :class:`~repro.ingest.rolling.RollingCubeService`
  wires :mod:`repro.cube.rolling_window` semantics into a live serving
  cube: a leading time axis retires its oldest slab and opens a new
  one mid-stream without a rebuild, and reads during the roll stay
  exact or come back explicitly
  :class:`~repro.cluster.degraded.RangeEstimate`-marked.
"""

from repro.ingest.checkpoint import CheckpointStore
from repro.ingest.deadletter import DeadLetterFile, read_dead_letters
from repro.ingest.pipeline import IngestPipeline, IngestReport
from repro.ingest.rolling import RollingCubeService
from repro.ingest.sources import (
    ColumnarSource,
    CSVSource,
    MemorySource,
)
from repro.ingest.targets import (
    ClusterTarget,
    RollingServiceTarget,
    ServiceTarget,
)

__all__ = [
    "CheckpointStore",
    "ClusterTarget",
    "ColumnarSource",
    "CSVSource",
    "DeadLetterFile",
    "IngestPipeline",
    "IngestReport",
    "MemorySource",
    "read_dead_letters",
    "RollingCubeService",
    "RollingServiceTarget",
    "ServiceTarget",
]

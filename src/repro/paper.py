"""Reference tables transcribed from the paper's figures.

These constants let the test suite and the table-reproduction benchmarks
assert *cell-for-cell* equality with the published worked examples:

* :data:`ARRAY_A` — Figure 1, the 9x9 source data cube.
* :data:`ARRAY_P` — Figure 2, its prefix-sum array.
* :data:`ARRAY_P_AFTER_UPDATE` — Figure 4, P after ``A[1,1]`` goes 3 -> 4.
* :data:`ARRAY_RP` — Figure 10/13, the relative prefix array for k=3.
* :data:`OVERLAY_ANCHORS` / borders — Figure 13's overlay box values.
* :data:`ARRAY_RP_AFTER_UPDATE` / updated overlay values — Figure 15.

The paper's update example (Figures 4 and 15) changes ``A[1,1]`` from 3 to
4 and reports 64 affected cells for the prefix sum method versus 16 for the
relative prefix sum method (12 overlay + 4 RP).
"""

from __future__ import annotations

import numpy as np

#: Figure 1 — the example data cube A (9x9, d=2).
ARRAY_A = np.array(
    [
        [3, 5, 1, 2, 2, 4, 6, 3, 3],
        [7, 3, 2, 6, 8, 7, 1, 2, 4],
        [2, 4, 2, 3, 3, 3, 4, 5, 7],
        [3, 2, 1, 5, 3, 5, 2, 8, 2],
        [4, 2, 1, 3, 3, 4, 7, 1, 3],
        [2, 3, 3, 6, 1, 8, 5, 1, 1],
        [4, 5, 2, 7, 1, 9, 3, 3, 4],
        [2, 4, 2, 2, 3, 1, 9, 1, 3],
        [5, 4, 3, 1, 3, 2, 1, 9, 6],
    ],
    dtype=np.int64,
)

#: Figure 2 — the prefix-sum array P of ARRAY_A.
ARRAY_P = np.array(
    [
        [3, 8, 9, 11, 13, 17, 23, 26, 29],
        [10, 18, 21, 29, 39, 50, 57, 62, 69],
        [12, 24, 29, 40, 53, 67, 78, 88, 102],
        [15, 29, 35, 51, 67, 86, 99, 117, 133],
        [19, 35, 42, 61, 80, 103, 123, 142, 161],
        [21, 40, 50, 75, 95, 126, 151, 171, 191],
        [25, 49, 61, 93, 114, 154, 182, 205, 229],
        [27, 55, 69, 103, 127, 168, 205, 229, 256],
        [32, 64, 81, 116, 143, 186, 224, 257, 290],
    ],
    dtype=np.int64,
)

#: Figure 4 — P after updating A[1,1] from 3 to 4 (delta +1).
ARRAY_P_AFTER_UPDATE = np.array(
    [
        [3, 8, 9, 11, 13, 17, 23, 26, 29],
        [10, 19, 22, 30, 40, 51, 58, 63, 70],
        [12, 25, 30, 41, 54, 68, 79, 89, 103],
        [15, 30, 36, 52, 68, 87, 100, 118, 134],
        [19, 36, 43, 62, 81, 104, 124, 143, 162],
        [21, 41, 51, 76, 96, 127, 152, 172, 192],
        [25, 50, 62, 94, 115, 155, 183, 206, 230],
        [27, 56, 70, 104, 128, 169, 206, 230, 257],
        [32, 65, 82, 117, 144, 187, 225, 258, 291],
    ],
    dtype=np.int64,
)

#: Figures 10 and 13 — the relative prefix array RP for box size k=3.
ARRAY_RP = np.array(
    [
        [3, 8, 9, 2, 4, 8, 6, 9, 12],
        [10, 18, 21, 8, 18, 29, 7, 12, 19],
        [12, 24, 29, 11, 24, 38, 11, 21, 35],
        [3, 5, 6, 5, 8, 13, 2, 10, 12],
        [7, 11, 13, 8, 14, 23, 9, 18, 23],
        [9, 16, 21, 14, 21, 38, 14, 24, 30],
        [4, 9, 11, 7, 8, 17, 3, 6, 10],
        [6, 15, 19, 9, 13, 23, 12, 16, 23],
        [11, 24, 31, 10, 17, 29, 13, 26, 39],
    ],
    dtype=np.int64,
)

#: Paper's overlay box size for all worked examples.
BOX_SIZE = 3

#: Figure 13 — anchor values V, one per 3x3 box (box-grid layout).
OVERLAY_ANCHORS = np.array(
    [
        [0, 9, 17],
        [12, 46, 97],
        [21, 86, 179],
    ],
    dtype=np.int64,
)

#: Figure 15 — anchor values after the A[1,1] += 1 update.
OVERLAY_ANCHORS_AFTER_UPDATE = np.array(
    [
        [0, 9, 17],
        [12, 47, 98],
        [21, 87, 180],
    ],
    dtype=np.int64,
)

#: Figure 13 — border values on the vertical faces (cells (r, a_col) with
#: r not a multiple of 3; the paper's Y-style values). Keyed by
#: (row, col) in cube coordinates.
BORDER_COLUMN_VALUES = {
    (1, 0): 0, (2, 0): 0, (4, 0): 0, (5, 0): 0, (7, 0): 0, (8, 0): 0,
    (1, 3): 12, (2, 3): 20, (4, 3): 7, (5, 3): 15, (7, 3): 8, (8, 3): 20,
    (1, 6): 33, (2, 6): 50, (4, 6): 17, (5, 6): 40, (7, 6): 14, (8, 6): 32,
}

#: Figure 13 — border values on the horizontal faces (cells (a_row, c)
#: with c not a multiple of 3; the paper's X-style values).
BORDER_ROW_VALUES = {
    (0, 1): 0, (0, 2): 0, (0, 4): 0, (0, 5): 0, (0, 7): 0, (0, 8): 0,
    (3, 1): 12, (3, 2): 17, (3, 4): 13, (3, 5): 27, (3, 7): 10, (3, 8): 24,
    (6, 1): 19, (6, 2): 29, (6, 4): 20, (6, 5): 51, (6, 7): 20, (6, 8): 40,
}

#: Figure 15 — the twelve overlay cells the update example modifies,
#: with their new values ((row, col) -> value).
OVERLAY_CELLS_AFTER_UPDATE = {
    (1, 3): 13, (2, 3): 21, (1, 6): 34, (2, 6): 51,   # right of the change
    (3, 1): 13, (3, 2): 18, (6, 1): 20, (6, 2): 30,   # below the change
    (3, 3): 47, (3, 6): 98, (6, 3): 87, (6, 6): 180,  # interior anchors
}

#: The worked query of Section 3.3: SUM(A[0,0]..A[7,5]) via box (6,3).
EXAMPLE_QUERY_TARGET = (7, 5)
EXAMPLE_QUERY_ANCHOR_VALUE = 86
EXAMPLE_QUERY_BORDER_Y = 8     # overlay cell (7, 3)
EXAMPLE_QUERY_BORDER_X = 51    # overlay cell (6, 5)
EXAMPLE_QUERY_RP = 23          # RP[7, 5]
EXAMPLE_QUERY_RESULT = 168

#: Update example costs (Section 4.2): cells touched by A[1,1] += 1.
UPDATE_EXAMPLE_CELL = (1, 1)
UPDATE_EXAMPLE_PS_CELLS = 64
UPDATE_EXAMPLE_RPS_RP_CELLS = 4
UPDATE_EXAMPLE_RPS_OVERLAY_CELLS = 12
UPDATE_EXAMPLE_RPS_TOTAL_CELLS = 16


def rp_after_update() -> np.ndarray:
    """Figure 15's RP array (computed: ARRAY_RP with the 4-cell cascade)."""
    rp = ARRAY_RP.copy()
    for r in (1, 2):
        for c in (1, 2):
            rp[r, c] += 1
    return rp


# Materialize the Figure 15 table once so tests can import it directly.
ARRAY_RP_AFTER_UPDATE = rp_after_update()

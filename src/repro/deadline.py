"""Time budgets threaded through client calls.

A production read path is judged by its tail: the caller of a fan-out
query cares about *its own* total budget, not about each hop's private
timeout. :class:`Deadline` is the one object every layer shares — the
cluster client creates one per call, each hop bounds its own waits with
:meth:`Deadline.bound`, sub-operations get narrower per-hop budgets via
:meth:`Deadline.sub`, and :func:`repro.serve.retry.call_with_retries`
stops retrying the moment the budget is gone instead of running out its
attempt count.

The module is deliberately dependency-free (both :mod:`repro.serve` and
:mod:`repro.cluster` import it), and the clock is injectable so tests
can drive deadlines deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import DeadlineExceededError


class Deadline:
    """An absolute point on a monotonic clock that work must finish by.

    Build one with :meth:`after` (relative seconds) and pass it down the
    call chain; every layer reads the *same* remaining budget, so N
    retries or M fan-out hops can never stretch the caller's wait beyond
    the budget it chose.

    Args:
        expires_at: absolute expiry on ``clock``'s timeline.
        clock: monotonic time source (injectable for tests).
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        return cls(clock() + float(seconds), clock)

    def remaining(self) -> float:
        """Seconds left in the budget, floored at zero."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return self._clock() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its deadline"
            )

    def bound(self, timeout: Optional[float] = None) -> float:
        """Clamp a layer's own ``timeout`` to the remaining budget.

        With ``timeout=None`` (the layer would wait forever) the result
        is simply the remaining budget — a deadline-carrying call never
        blocks unboundedly.
        """
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def sub(self, seconds: float) -> "Deadline":
        """A per-hop budget: at most ``seconds``, never past the parent.

        Lets a fan-out layer give each hop a slice of the budget while
        guaranteeing no hop outlives the caller's deadline.
        """
        return Deadline(
            min(self.expires_at, self._clock() + float(seconds)),
            self._clock,
        )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"

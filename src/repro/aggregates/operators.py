"""Invertible aggregate operators (paper Section 2).

The prefix-sum family works for "any binary operator ``+`` for which there
exists an inverse binary operator ``-`` such that ``a + b - b = a``". This
module captures that contract as :class:`InvertibleOperator` and provides
the operators the paper names: SUM, COUNT, AVERAGE, ROLLING SUM and
ROLLING AVERAGE. COUNT and AVERAGE are *derived*: COUNT runs the machinery
over a 0/1 presence cube, AVERAGE divides a SUM cube by a COUNT cube, and
the rolling variants slide a fixed-width window along one dimension using
only range queries — so all of them inherit O(1) query cost from the
underlying method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.base import RangeSumMethod
from repro.errors import RangeError


@dataclass(frozen=True)
class InvertibleOperator:
    """A binary operator with an exact inverse, per the paper's requirement.

    Attributes:
        name: human-readable operator name.
        combine: the ``+`` operation.
        invert: the ``-`` operation satisfying ``invert(combine(a, b), b) == a``.
        identity: neutral element of ``combine``.
    """

    name: str
    combine: Callable
    invert: Callable
    identity: float

    def satisfies_inverse_law(self, a, b) -> bool:
        """Check ``a + b - b == a`` for concrete values (used by tests)."""
        return self.invert(self.combine(a, b), b) == a


#: Ordinary addition — the paper's running example.
SUM = InvertibleOperator("sum", lambda a, b: a + b, lambda a, b: a - b, 0)

#: Multiplication over nonzero reals — a valid invertible operator the
#: framework supports even though the paper does not use it.
PRODUCT = InvertibleOperator(
    "product", lambda a, b: a * b, lambda a, b: a / b, 1
)


class AggregateCube:
    """COUNT / AVERAGE / rolling aggregates on top of any range-sum method.

    Maintains two synchronized structures of the same method class: one
    over the measure values (SUM) and one over cell presence counts
    (COUNT). Both update in the method's update cost; all aggregates are
    answered with a constant number of range queries.

    Args:
        values: dense measure cube (e.g. total sales per cell).
        counts: dense count cube (e.g. number of transactions per cell);
            defaults to ``1`` wherever ``values`` is nonzero.
        method: a :class:`RangeSumMethod` subclass to instantiate twice.
        **method_kwargs: forwarded to the method constructor (e.g.
            ``box_size`` for the RPS method).
    """

    def __init__(
        self,
        values: np.ndarray,
        counts: np.ndarray = None,
        method: type = None,
        **method_kwargs,
    ) -> None:
        from repro.core.rps import RelativePrefixSumCube

        values = np.asarray(values)
        if counts is None:
            counts = (values != 0).astype(np.int64)
        else:
            counts = np.asarray(counts)
            if counts.shape != values.shape:
                raise RangeError(
                    f"counts shape {counts.shape} != values shape {values.shape}"
                )
        method = method or RelativePrefixSumCube
        self.sums: RangeSumMethod = method(values, **method_kwargs)
        self.counts: RangeSumMethod = method(counts, **method_kwargs)
        self.shape = self.sums.shape

    # -- aggregates ----------------------------------------------------------

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """SUM over the inclusive range."""
        return self.sums.range_sum(low, high)

    def range_count(self, low: Sequence[int], high: Sequence[int]):
        """COUNT over the inclusive range."""
        return self.counts.range_sum(low, high)

    def range_average(self, low: Sequence[int], high: Sequence[int]) -> float:
        """AVERAGE = SUM / COUNT; ``nan`` for an empty range."""
        count = self.range_count(low, high)
        if count == 0:
            return float("nan")
        return float(self.range_sum(low, high)) / float(count)

    def rolling_sum(
        self,
        axis: int,
        window: int,
        low: Sequence[int],
        high: Sequence[int],
    ) -> List:
        """ROLLING SUM: window sums slid along ``axis`` across ``[low, high]``.

        For every window start ``s`` in ``[low_axis, high_axis]`` the window
        covers ``[s, s + window - 1]`` on ``axis`` (clipped to the query
        range) and the full ``[low, high]`` extent on other axes.
        """
        if window < 1:
            raise RangeError(f"window must be >= 1, got {window}")
        lo = list(low)
        hi = list(high)
        results = []
        for start in range(low[axis], high[axis] + 1):
            lo[axis] = start
            hi[axis] = min(start + window - 1, high[axis])
            results.append(self.sums.range_sum(lo, hi))
        return results

    def rolling_average(
        self,
        axis: int,
        window: int,
        low: Sequence[int],
        high: Sequence[int],
    ) -> List[float]:
        """ROLLING AVERAGE: per-window SUM / COUNT along ``axis``."""
        if window < 1:
            raise RangeError(f"window must be >= 1, got {window}")
        lo_s = list(low)
        hi_s = list(high)
        results = []
        for start in range(low[axis], high[axis] + 1):
            lo_s[axis] = start
            hi_s[axis] = min(start + window - 1, high[axis])
            count = self.counts.range_sum(lo_s, hi_s)
            if count == 0:
                results.append(float("nan"))
            else:
                results.append(
                    float(self.sums.range_sum(lo_s, hi_s)) / float(count)
                )
        return results

    # -- updates -------------------------------------------------------------

    def record(self, index: Sequence[int], amount, occurrences: int = 1) -> None:
        """Ingest ``occurrences`` new facts totalling ``amount`` at a cell.

        Both the SUM and COUNT structures update; cost is twice the
        underlying method's update cost.
        """
        self.sums.apply_delta(index, amount)
        if occurrences:
            self.counts.apply_delta(index, occurrences)

    def retract(self, index: Sequence[int], amount, occurrences: int = 1) -> None:
        """Remove previously recorded facts (the inverse of :meth:`record`)."""
        self.record(index, -amount, -occurrences)

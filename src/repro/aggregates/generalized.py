"""Prefix structures over arbitrary invertible operators (paper Section 2).

"The techniques presented here can also be applied to obtain COUNT,
AVERAGE, ROLLING SUM, ROLLING AVERAGE, and any binary operator + for
which there exists an inverse binary operator - such that a + b - b = a."

This module demonstrates that claim constructively: the prefix-sum method
and the relative prefix sum method, parameterized by any *commutative
group* operator supplied as a numpy ufunc pair. ``SUM`` is the paper's
running instance; ``XOR`` and floating-point ``PRODUCT`` are included as
genuinely different groups (sets with an associative, commutative,
invertible operation — the structure the prefix identities actually
need).

The classes here mirror :class:`~repro.baselines.prefix.PrefixSumCube`
and :class:`~repro.core.rps.RelativePrefixSumCube` but speak the group
language: ``combine`` instead of add, ``invert`` instead of subtract,
``identity`` instead of zero. They share the same asymptotics
(O(1)-lookup prefixes; box-constrained cascades for the RPS variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core import indexing

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class GroupOperator:
    """A commutative group operation as a numpy ufunc pair.

    Attributes:
        name: human-readable name.
        combine: the group operation (binary ufunc).
        invert: its inverse, satisfying ``invert(combine(a, b), b) == a``.
        identity: the neutral element.
        dtype: numpy dtype the structure should carry values in.
    """

    name: str
    combine: np.ufunc
    invert: np.ufunc
    identity: object
    dtype: object = np.int64


#: Ordinary addition — the paper's running example.
GROUP_SUM = GroupOperator("sum", np.add, np.subtract, 0, np.int64)

#: Bitwise XOR — a self-inverse group over ints.
GROUP_XOR = GroupOperator(
    "xor", np.bitwise_xor, np.bitwise_xor, 0, np.int64
)

#: Multiplication over nonzero floats.
GROUP_PRODUCT = GroupOperator(
    "product", np.multiply, np.divide, 1.0, np.float64
)


def _blocked_accumulate(
    array: np.ndarray, axis: int, block: int, op: GroupOperator
) -> np.ndarray:
    """Group-accumulate along ``axis`` restarting at block boundaries.

    The group generalization of
    :func:`repro.core.blocked.blocked_cumsum`: the carried-in total of
    each block is removed with ``op.invert`` instead of subtraction.
    """
    out = op.combine.accumulate(array, axis=axis, dtype=op.dtype)
    n = array.shape[axis]
    if block >= n:
        return out
    starts = np.arange(block, n, block)
    carried = np.take(out, starts - 1, axis=axis)
    block_ids = np.arange(n) // block
    carry_index = np.maximum(block_ids - 1, 0)
    carried_full = np.take(carried, carry_index, axis=axis)
    mask_shape = [1] * array.ndim
    mask_shape[axis] = n
    in_first_block = (block_ids == 0).reshape(mask_shape)
    return np.where(in_first_block, out, op.invert(out, carried_full))


class GroupPrefixCube:
    """Ho et al.'s prefix method over an arbitrary group operator.

    Same structure and costs as :class:`~repro.baselines.prefix.PrefixSumCube`:
    O(1) range queries via ``2^d`` corners, O(n^d) worst-case updates.
    """

    def __init__(self, array: np.ndarray, operator: GroupOperator) -> None:
        source = np.asarray(array).astype(operator.dtype)
        self.operator = operator
        self.shape = source.shape
        self.ndim = source.ndim
        self._p = source.copy()
        for axis in range(self.ndim):
            # accumulate in the group's own dtype: numpy otherwise
            # promotes small ints, breaking wrap-around groups
            self._p = operator.combine.accumulate(
                self._p, axis=axis, dtype=operator.dtype
            )

    def prefix(self, target: Sequence[int]):
        """Group-combine of ``A[0..target]`` — one lookup."""
        t = indexing.normalize_index(target, self.shape)
        return self._p[t]

    def range_query(self, low: Sequence[int], high: Sequence[int]):
        """Group-combine over the inclusive range, via signed corners.

        Positive-parity corners are combined in, negative-parity corners
        inverted out — the group reading of Figure 3.
        """
        lo, hi = indexing.normalize_range(low, high, self.shape)
        total = np.asarray(self.operator.identity, dtype=self.operator.dtype)[()]
        for sign, corner in indexing.iter_corners(lo, hi):
            if indexing.has_empty_axis(corner):
                continue
            value = self._p[corner]
            if sign > 0:
                total = self.operator.combine(total, value)
            else:
                total = self.operator.invert(total, value)
        return total

    def combine_into(self, index: Sequence[int], value) -> None:
        """Combine ``value`` into one cell (the group's 'delta' update).

        Cascades over every dominating P cell, exactly as in Figure 4.
        """
        idx = indexing.normalize_index(index, self.shape)
        suffix = tuple(slice(i, None) for i in idx)
        region = self._p[suffix]
        self._p[suffix] = self.operator.combine(region, value)

    def cell_value(self, index: Sequence[int]):
        """Recover one cell's value by corner differencing."""
        idx = indexing.normalize_index(index, self.shape)
        return self.range_query(idx, idx)


class GroupRelativePrefixCube:
    """The relative prefix sum method over an arbitrary group operator.

    Keeps the group analogue of the RP array (box-relative accumulations)
    and the overlay (anchor plus subset border values); queries and
    updates have the same shape and costs as the SUM instance —
    demonstrating that the paper's construction uses nothing beyond the
    group axioms.
    """

    def __init__(
        self,
        array: np.ndarray,
        operator: GroupOperator,
        box_size=None,
    ) -> None:
        from repro.core.rps import default_box_size

        source = np.asarray(array).astype(operator.dtype)
        self.operator = operator
        self.shape = source.shape
        self.ndim = source.ndim
        if box_size is None:
            box_size = default_box_size(source.shape)
        self.box_sizes = indexing.normalize_box_sizes(box_size, source.shape)
        self._full_mask = (1 << self.ndim) - 1
        self._build(source)

    # -- construction -------------------------------------------------------

    def _build(self, array: np.ndarray) -> None:
        op = self.operator
        rp = array
        for axis in range(self.ndim):
            rp = _blocked_accumulate(rp, axis, self.box_sizes[axis], op)
        self._rp = rp
        self._values = {}
        for mask in range(1, self._full_mask + 1):
            work = array
            for axis in range(self.ndim):
                if not mask & (1 << axis):
                    work = self._exclusive_blocked(work, axis)
            inclusive = work
            for axis in range(self.ndim):
                if mask & (1 << axis):
                    inclusive = op.combine.accumulate(
                        inclusive, axis=axis, dtype=op.dtype
                    )
            s1, s2 = inclusive, work
            for axis in range(self.ndim):
                if mask & (1 << axis):
                    starts = np.arange(
                        0, self.shape[axis], self.box_sizes[axis]
                    )
                    s1 = np.take(s1, starts, axis=axis)
                    s2 = np.take(s2, starts, axis=axis)
            self._values[mask] = op.invert(s1, s2)

    def _exclusive_blocked(self, array: np.ndarray, axis: int) -> np.ndarray:
        """Group analogue of the exclusive blocked accumulation."""
        op = self.operator
        k = self.box_sizes[axis]
        inclusive = _blocked_accumulate(array, axis, k, op)
        starts = np.arange(0, array.shape[axis], k)
        start_vals = np.take(array, starts, axis=axis)
        full, rem = divmod(array.shape[axis], k)
        reps = [k] * full + ([rem] if rem else [])
        expanded = np.repeat(start_vals, np.array(reps, dtype=np.intp),
                             axis=axis)
        return op.invert(inclusive, expanded)

    # -- queries ------------------------------------------------------------

    def prefix(self, target: Sequence[int]):
        """Group-combine of ``A[0..target]`` from overlay values + RP."""
        op = self.operator
        t = indexing.normalize_index(target, self.shape)
        anchor = indexing.anchor_of(t, self.box_sizes)
        off_mask = 0
        for axis in range(self.ndim):
            if t[axis] != anchor[axis]:
                off_mask |= 1 << axis
        total = self._rp[t]
        anchor_index = tuple(
            a // k for a, k in zip(anchor, self.box_sizes)
        )
        total = op.combine(total, self._values[self._full_mask][anchor_index])
        sub = off_mask
        while sub > 0:
            if sub != self._full_mask:
                z_mask = self._full_mask ^ sub
                cell = tuple(
                    t[axis] if sub & (1 << axis) else anchor[axis]
                    for axis in range(self.ndim)
                )
                loc = tuple(
                    c // self.box_sizes[axis] if z_mask & (1 << axis) else c
                    for axis, c in enumerate(cell)
                )
                total = op.combine(total, self._values[z_mask][loc])
            sub = (sub - 1) & off_mask
        return total

    def range_query(self, low: Sequence[int], high: Sequence[int]):
        """Group-combine over the inclusive range via signed corners."""
        op = self.operator
        lo, hi = indexing.normalize_range(low, high, self.shape)
        total = np.asarray(op.identity, dtype=op.dtype)[()]
        for sign, corner in indexing.iter_corners(lo, hi):
            if indexing.has_empty_axis(corner):
                continue
            value = self.prefix(corner)
            total = op.combine(total, value) if sign > 0 else op.invert(
                total, value
            )
        return total

    # -- updates ------------------------------------------------------------

    def combine_into(self, index: Sequence[int], value) -> None:
        """Combine ``value`` into one cell with the constrained cascade.

        Exactly Figure 15's update, in group language: the RP cascade
        stays inside one box; the overlay slices combine (or invert, for
        the anchor-exclusion slice) the value in.
        """
        op = self.operator
        idx = indexing.normalize_index(index, self.shape)
        rp_region = tuple(
            slice(i, min((i // k) * k + k, n))
            for i, k, n in zip(idx, self.box_sizes, self.shape)
        )
        self._rp[rp_region] = op.combine(self._rp[rp_region], value)
        for mask in range(1, self._full_mask + 1):
            add, sub = self._update_slices(idx, mask)
            if add is None:
                continue
            values = self._values[mask]
            values[add] = op.combine(values[add], value)
            if sub is not None:
                values[sub] = op.invert(values[sub], value)

    def _update_slices(self, idx: Coord, mask: int):
        """Same slice geometry as :meth:`Overlay._update_slices`."""
        boxes_shape = tuple(
            -(-n // k) for n, k in zip(self.shape, self.box_sizes)
        )
        add = []
        exclusion_applies = True
        for axis in range(self.ndim):
            u = idx[axis]
            k = self.box_sizes[axis]
            if mask & (1 << axis):
                add.append(slice(-(-u // k), boxes_shape[axis]))
                if u % k != 0:
                    exclusion_applies = False
            else:
                if u % k == 0:
                    return None, None
                add.append(slice(u, min((u // k) * k + k, self.shape[axis])))
        sub = None
        if exclusion_applies:
            sub = tuple(
                slice(idx[axis] // self.box_sizes[axis],
                      idx[axis] // self.box_sizes[axis] + 1)
                if mask & (1 << axis) else add[axis]
                for axis in range(self.ndim)
            )
        return tuple(add), sub

    def cell_value(self, index: Sequence[int]):
        """Recover one cell's value by corner differencing."""
        idx = indexing.normalize_index(index, self.shape)
        return self.range_query(idx, idx)

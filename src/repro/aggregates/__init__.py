"""Invertible aggregate operators: SUM, COUNT, AVERAGE, rolling variants."""

from repro.aggregates.generalized import (
    GROUP_PRODUCT,
    GROUP_SUM,
    GROUP_XOR,
    GroupOperator,
    GroupPrefixCube,
    GroupRelativePrefixCube,
)
from repro.aggregates.operators import (
    SUM,
    PRODUCT,
    AggregateCube,
    InvertibleOperator,
)

__all__ = [
    "GROUP_PRODUCT",
    "GROUP_SUM",
    "GROUP_XOR",
    "GroupOperator",
    "GroupPrefixCube",
    "GroupRelativePrefixCube",
    "SUM",
    "PRODUCT",
    "AggregateCube",
    "InvertibleOperator",
]

"""Conformance harness for custom :class:`RangeSumMethod` implementations.

Downstream users adding their own structure (a new blocking scheme, a
compressed variant...) can validate it against the interface contract in
one call::

    from repro.testing import assert_method_correct
    assert_method_correct(MyCube)

The harness drives construction, queries, point updates, set-updates,
batches, reconstruction, and counter discipline against a brute-force
oracle over randomized cubes (several shapes and dtypes), raising
``AssertionError`` with a reproducible seed on the first violation. The
library's own methods are checked with exactly this harness in
``tests/test_conformance.py``.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Type

import numpy as np

from repro.core.base import RangeSumMethod

DEFAULT_SHAPES: Tuple[Tuple[int, ...], ...] = (
    (13,),
    (9, 9),
    (10, 7),
    (5, 6, 4),
)


def _oracle_range(array, low, high):
    return array[tuple(slice(l, h + 1) for l, h in zip(low, high))].sum()


def _random_range(rng, shape):
    low, high = [], []
    for n in shape:
        a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
        low.append(a)
        high.append(b)
    return tuple(low), tuple(high)


def assert_method_correct(
    method_cls: Type[RangeSumMethod],
    shapes: Sequence[Tuple[int, ...]] = DEFAULT_SHAPES,
    operations: int = 40,
    seed: int = 0,
    check_counters: bool = True,
    **method_kwargs,
) -> None:
    """Validate one method class against the interface contract.

    Args:
        method_cls: the class under test.
        shapes: cube shapes to exercise.
        operations: interleaved query/update steps per shape.
        seed: randomization seed (reported in failures).
        check_counters: also require that queries charge reads and
            updates charge writes to ``method.counter``.
        **method_kwargs: forwarded to every construction.

    Raises:
        AssertionError: on the first contract violation, with enough
            context (shape, seed, operation) to reproduce it.
    """
    for shape in shapes:
        rng = np.random.default_rng(seed)
        array = rng.integers(-20, 20, size=shape)
        context = f"[{method_cls.__name__} shape={shape} seed={seed}]"
        method = method_cls(array, **method_kwargs)

        assert method.shape == tuple(shape), (
            f"{context} shape attribute mismatch: {method.shape}"
        )
        assert method.ndim == len(shape), f"{context} ndim mismatch"
        assert method.total() == array.sum(), (
            f"{context} total() wrong after build"
        )

        oracle = array.copy()
        for step in range(operations):
            step_context = f"{context} step={step}"
            low, high = _random_range(rng, shape)
            before = method.counter.snapshot()
            got = method.range_sum(low, high)
            expected = _oracle_range(oracle, low, high)
            assert np.isclose(float(got), float(expected)), (
                f"{step_context} range_sum({low}, {high}) = {got}, "
                f"expected {expected}"
            )
            if check_counters:
                assert before.delta(method.counter).cells_read > 0, (
                    f"{step_context} query charged no reads"
                )

            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-9, 10)) or 1
            before = method.counter.snapshot()
            method.apply_delta(cell, delta)
            oracle[cell] += delta
            if check_counters:
                assert before.delta(method.counter).cells_written > 0, (
                    f"{step_context} update charged no writes"
                )
            assert np.isclose(
                float(method.cell_value(cell)), float(oracle[cell])
            ), f"{step_context} cell_value({cell}) wrong after delta"

        # set-semantics update
        cell = tuple(0 for _ in shape)
        method.update(cell, 123)
        oracle[cell] = 123
        assert method.cell_value(cell) == 123, (
            f"{context} update() did not set the cell"
        )

        # batch application
        batch = []
        for _ in range(10):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-5, 6))
            batch.append((cell, delta))
            oracle[cell] += delta
        method.apply_batch(batch)

        # reconstruction
        rebuilt = method.to_array()
        assert np.allclose(
            np.asarray(rebuilt, dtype=np.float64),
            np.asarray(oracle, dtype=np.float64),
        ), f"{context} to_array() diverged from the oracle"

        # storage accounting sanity
        assert method.storage_cells() > 0, (
            f"{context} storage_cells() must be positive"
        )

        # built-in verification agrees
        method.verify(probes=20, seed=seed)

"""Conformance harness for custom :class:`RangeSumMethod` implementations.

Downstream users adding their own structure (a new blocking scheme, a
compressed variant...) can validate it against the interface contract in
one call::

    from repro.testing import assert_method_correct
    assert_method_correct(MyCube)

The harness drives construction, queries, point updates, set-updates,
batches, reconstruction, and counter discipline against a brute-force
oracle over randomized cubes (several shapes and dtypes), raising
``AssertionError`` with a reproducible seed on the first violation. The
library's own methods are checked with exactly this harness in
``tests/test_conformance.py``.

:func:`assert_method_correct` also exercises the batched query kernels
(``prefix_sum_many`` / ``range_sum_many``) and the array-signature batch
updates (``apply_batch_array``); use
:func:`assert_batch_queries_correct` or
:func:`assert_batch_updates_correct` alone for a focused check that a
custom vectorized kernel matches the looped path in both values and
counter charges.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Type

import numpy as np

from repro.core.base import RangeSumMethod

DEFAULT_SHAPES: Tuple[Tuple[int, ...], ...] = (
    (13,),
    (9, 9),
    (10, 7),
    (5, 6, 4),
)


def _oracle_range(array, low, high):
    return array[tuple(slice(l, h + 1) for l, h in zip(low, high))].sum()


def _random_range(rng, shape):
    low, high = [], []
    for n in shape:
        a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
        low.append(a)
        high.append(b)
    return tuple(low), tuple(high)


def _batch_of_ranges(rng, shape, count):
    """``(Q, d)`` low/high batches of random ranges (may repeat)."""
    lows = np.empty((count, len(shape)), dtype=np.intp)
    highs = np.empty((count, len(shape)), dtype=np.intp)
    for q in range(count):
        low, high = _random_range(rng, shape)
        lows[q] = low
        highs[q] = high
    return lows, highs


def assert_batch_queries_correct(
    method_cls: Type[RangeSumMethod],
    shapes: Sequence[Tuple[int, ...]] = DEFAULT_SHAPES,
    queries: int = 16,
    seed: int = 0,
    check_counters: bool = True,
    **method_kwargs,
) -> None:
    """Validate the batched query kernels of one method class.

    Drives ``prefix_sum_many`` and ``range_sum_many`` against the
    brute-force oracle *and* against the method's own looped path —
    including empty batches, ``Q = 1``, duplicated queries, and targets
    on box/cube boundaries. With ``check_counters`` (default) the
    batched calls must charge exactly the logical cell costs the looped
    calls charge, in total and per structure.

    Raises:
        AssertionError: on the first violation, with shape/seed context.
    """
    for shape in shapes:
        rng = np.random.default_rng(seed)
        array = rng.integers(-20, 20, size=shape)
        context = f"[{method_cls.__name__} shape={shape} seed={seed}]"
        looped = method_cls(array, **method_kwargs)
        batched = method_cls(array, **method_kwargs)
        d = len(shape)

        # empty batches are legal and charge nothing
        empty = np.empty((0, d), dtype=np.intp)
        before = batched.counter.snapshot()
        assert batched.prefix_sum_many(empty).shape == (0,), (
            f"{context} prefix_sum_many([]) must return shape (0,)"
        )
        assert batched.range_sum_many(empty, empty).shape == (0,), (
            f"{context} range_sum_many([], []) must return shape (0,)"
        )
        delta = before.delta(batched.counter)
        assert delta.cells_read == 0 and delta.cells_written == 0, (
            f"{context} empty batches must not charge the counter"
        )

        lows, highs = _batch_of_ranges(rng, shape, queries)
        # boundary rows: the full cube, a single cell at each extreme,
        # and a duplicated row
        top = np.asarray(shape, dtype=np.intp) - 1
        extremes = np.array(
            [np.zeros(d, dtype=np.intp), top, np.zeros(d, dtype=np.intp)]
        )
        lows = np.vstack([lows, np.zeros((1, d), dtype=np.intp), extremes])
        highs = np.vstack([highs, top[np.newaxis], extremes])
        lows = np.vstack([lows, lows[:1]])  # duplicate of the first query
        highs = np.vstack([highs, highs[:1]])

        loop_before = looped.counter.snapshot()
        expected = [
            looped.range_sum(tuple(lo), tuple(hi))
            for lo, hi in zip(lows, highs)
        ]
        loop_cost = loop_before.delta(looped.counter)
        batch_before = batched.counter.snapshot()
        got = batched.range_sum_many(lows, highs)
        batch_cost = batch_before.delta(batched.counter)
        oracle = [
            _oracle_range(array, tuple(lo), tuple(hi))
            for lo, hi in zip(lows, highs)
        ]
        assert got.shape == (len(lows),), (
            f"{context} range_sum_many returned shape {got.shape}"
        )
        assert np.allclose(
            np.asarray(got, dtype=np.float64),
            np.asarray(oracle, dtype=np.float64),
        ), f"{context} range_sum_many diverged from the oracle"
        assert np.allclose(
            np.asarray(got, dtype=np.float64),
            np.asarray(expected, dtype=np.float64),
        ), f"{context} range_sum_many diverged from the looped path"
        assert np.isclose(
            float(got[-1]), float(got[0])
        ), f"{context} duplicated query rows answered differently"
        if check_counters:
            assert (
                loop_cost.cells_read == batch_cost.cells_read
                and loop_cost.cells_written == batch_cost.cells_written
            ), (
                f"{context} range_sum_many charged "
                f"{batch_cost.cells_read}r/{batch_cost.cells_written}w, "
                f"looped path charged "
                f"{loop_cost.cells_read}r/{loop_cost.cells_written}w"
            )

        # Q = 1 agrees with the scalar call
        one = batched.range_sum_many(lows[:1], highs[:1])
        assert np.isclose(
            float(one[0]), float(looped.range_sum(lows[0], highs[0]))
        ), f"{context} Q=1 batch disagrees with the scalar range_sum"

        # prefix_sum_many over the high corners (hits box boundaries)
        loop_before = looped.counter.snapshot()
        expected_p = [looped.prefix_sum(tuple(t)) for t in highs]
        loop_cost = loop_before.delta(looped.counter)
        batch_before = batched.counter.snapshot()
        got_p = batched.prefix_sum_many(highs)
        batch_cost = batch_before.delta(batched.counter)
        assert np.allclose(
            np.asarray(got_p, dtype=np.float64),
            np.asarray(expected_p, dtype=np.float64),
        ), f"{context} prefix_sum_many diverged from the looped path"
        if check_counters:
            assert loop_cost.cells_read == batch_cost.cells_read, (
                f"{context} prefix_sum_many charged "
                f"{batch_cost.cells_read} reads, looped path charged "
                f"{loop_cost.cells_read}"
            )

        # batched queries observe updates (no stale caches)
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        looped.apply_delta(cell, 17)
        batched.apply_delta(cell, 17)
        array_after = array.copy()
        array_after[cell] += 17
        got_after = batched.range_sum_many(lows, highs)
        oracle_after = [
            _oracle_range(array_after, tuple(lo), tuple(hi))
            for lo, hi in zip(lows, highs)
        ]
        assert np.allclose(
            np.asarray(got_after, dtype=np.float64),
            np.asarray(oracle_after, dtype=np.float64),
        ), f"{context} range_sum_many went stale after apply_delta"


def assert_batch_updates_correct(
    method_cls: Type[RangeSumMethod],
    shapes: Sequence[Tuple[int, ...]] = DEFAULT_SHAPES,
    updates: int = 24,
    seed: int = 0,
    check_counters: bool = True,
    **method_kwargs,
) -> None:
    """Validate the array-signature batch updates of one method class.

    The contract: ``apply_batch_array(indices, deltas)`` must be
    *equivalent to the method's own* ``apply_batch`` over the same rows —
    identical resulting values (checked against a scatter-add oracle)
    and, with ``check_counters`` (default), an identical counter ledger
    in totals and per structure. Exercised with duplicate rows, zero
    deltas, and an empty batch (which must be free); finishes with the
    method's own :meth:`~repro.core.base.RangeSumMethod.verify`.

    Raises:
        AssertionError: on the first violation, with shape/seed context.
    """
    for shape in shapes:
        rng = np.random.default_rng(seed)
        array = rng.integers(-20, 20, size=shape)
        context = f"[{method_cls.__name__} shape={shape} seed={seed}]"
        listed = method_cls(array, **method_kwargs)
        arrayed = method_cls(array, **method_kwargs)
        d = len(shape)

        # an empty batch is legal and charges nothing
        before = arrayed.counter.snapshot()
        applied = arrayed.apply_batch_array(
            np.empty((0, d), dtype=np.intp), np.empty(0, dtype=np.int64)
        )
        cost = before.delta(arrayed.counter)
        assert applied == 0, f"{context} empty batch applied {applied} rows"
        assert cost.cells_read == 0 and cost.cells_written == 0, (
            f"{context} empty apply_batch_array must not charge the counter"
        )

        # random rows with duplicates and explicit zero deltas
        idx = np.stack(
            [rng.integers(0, n, size=updates) for n in shape], axis=1
        ).astype(np.intp)
        idx = np.vstack([idx, idx[:3]])  # duplicated cells accumulate
        deltas = rng.integers(-9, 10, size=len(idx)).astype(np.int64)
        deltas[1] = 0  # zero deltas still travel through the kernel
        oracle = array.astype(np.int64)
        np.add.at(oracle, tuple(idx.T), deltas)

        list_before = listed.counter.snapshot()
        listed.apply_batch(
            [
                (tuple(int(c) for c in row), int(dv))
                for row, dv in zip(idx, deltas)
            ]
        )
        list_cost = list_before.delta(listed.counter)
        array_before = arrayed.counter.snapshot()
        applied = arrayed.apply_batch_array(idx, deltas)
        array_cost = array_before.delta(arrayed.counter)
        assert applied == len(idx), (
            f"{context} apply_batch_array reported {applied} of {len(idx)}"
        )
        assert np.array_equal(
            np.asarray(arrayed.to_array(), dtype=np.int64), oracle
        ), f"{context} apply_batch_array diverged from the scatter oracle"
        assert np.array_equal(
            np.asarray(listed.to_array(), dtype=np.int64), oracle
        ), f"{context} apply_batch diverged from the scatter oracle"
        if check_counters:
            assert (
                list_cost.cells_read == array_cost.cells_read
                and list_cost.cells_written == array_cost.cells_written
            ), (
                f"{context} apply_batch_array charged "
                f"{array_cost.cells_read}r/{array_cost.cells_written}w, "
                f"apply_batch charged "
                f"{list_cost.cells_read}r/{list_cost.cells_written}w"
            )
            assert (
                listed.counter.by_structure == arrayed.counter.by_structure
            ), (
                f"{context} per-structure ledgers diverged: "
                f"{listed.counter.by_structure} != "
                f"{arrayed.counter.by_structure}"
            )

        # scalar deltas broadcast across the batch
        scalar = method_cls(array, **method_kwargs)
        scalar.apply_batch_array(idx[:4], 7)
        bumped = array.astype(np.int64)
        np.add.at(bumped, tuple(idx[:4].T), np.full(4, 7, dtype=np.int64))
        assert np.array_equal(
            np.asarray(scalar.to_array(), dtype=np.int64), bumped
        ), f"{context} scalar delta broadcast diverged"

        arrayed.verify(probes=20, seed=seed)


def assert_method_correct(
    method_cls: Type[RangeSumMethod],
    shapes: Sequence[Tuple[int, ...]] = DEFAULT_SHAPES,
    operations: int = 40,
    seed: int = 0,
    check_counters: bool = True,
    **method_kwargs,
) -> None:
    """Validate one method class against the interface contract.

    Args:
        method_cls: the class under test.
        shapes: cube shapes to exercise.
        operations: interleaved query/update steps per shape.
        seed: randomization seed (reported in failures).
        check_counters: also require that queries charge reads and
            updates charge writes to ``method.counter``.
        **method_kwargs: forwarded to every construction.

    Raises:
        AssertionError: on the first contract violation, with enough
            context (shape, seed, operation) to reproduce it.
    """
    for shape in shapes:
        rng = np.random.default_rng(seed)
        array = rng.integers(-20, 20, size=shape)
        context = f"[{method_cls.__name__} shape={shape} seed={seed}]"
        method = method_cls(array, **method_kwargs)

        assert method.shape == tuple(shape), (
            f"{context} shape attribute mismatch: {method.shape}"
        )
        assert method.ndim == len(shape), f"{context} ndim mismatch"
        assert method.total() == array.sum(), (
            f"{context} total() wrong after build"
        )

        oracle = array.copy()
        for step in range(operations):
            step_context = f"{context} step={step}"
            low, high = _random_range(rng, shape)
            before = method.counter.snapshot()
            got = method.range_sum(low, high)
            expected = _oracle_range(oracle, low, high)
            assert np.isclose(float(got), float(expected)), (
                f"{step_context} range_sum({low}, {high}) = {got}, "
                f"expected {expected}"
            )
            if check_counters:
                assert before.delta(method.counter).cells_read > 0, (
                    f"{step_context} query charged no reads"
                )

            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-9, 10)) or 1
            before = method.counter.snapshot()
            method.apply_delta(cell, delta)
            oracle[cell] += delta
            if check_counters:
                assert before.delta(method.counter).cells_written > 0, (
                    f"{step_context} update charged no writes"
                )
            assert np.isclose(
                float(method.cell_value(cell)), float(oracle[cell])
            ), f"{step_context} cell_value({cell}) wrong after delta"

        # set-semantics update
        cell = tuple(0 for _ in shape)
        method.update(cell, 123)
        oracle[cell] = 123
        assert method.cell_value(cell) == 123, (
            f"{context} update() did not set the cell"
        )

        # batch application
        batch = []
        for _ in range(10):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-5, 6))
            batch.append((cell, delta))
            oracle[cell] += delta
        method.apply_batch(batch)

        # reconstruction
        rebuilt = method.to_array()
        assert np.allclose(
            np.asarray(rebuilt, dtype=np.float64),
            np.asarray(oracle, dtype=np.float64),
        ), f"{context} to_array() diverged from the oracle"

        # storage accounting sanity
        assert method.storage_cells() > 0, (
            f"{context} storage_cells() must be positive"
        )

        # built-in verification agrees
        method.verify(probes=20, seed=seed)

    # the batched query kernels obey the same contract
    assert_batch_queries_correct(
        method_cls,
        shapes=shapes,
        seed=seed,
        check_counters=check_counters,
        **method_kwargs,
    )
    # ...and so do the array-signature batch updates
    assert_batch_updates_correct(
        method_cls,
        shapes=shapes,
        seed=seed,
        check_counters=check_counters,
        **method_kwargs,
    )


def assert_recovery_correct(
    method_cls: Type[RangeSumMethod],
    directory,
    shape: Tuple[int, ...] = (10, 8),
    groups: int = 24,
    crash_after: int = None,
    checkpoint_every: int = 5,
    seed: int = 0,
    **method_kwargs,
) -> None:
    """Differential crash-recovery check against a brute-force oracle.

    Runs a durable :class:`~repro.serve.CubeService` over ``groups``
    random update groups, simulates a crash (via
    :meth:`~repro.serve.CubeService.abandon`) after ``crash_after``
    acknowledged groups (default: all of them), recovers from
    ``directory``, and asserts the recovered state is byte-identical to
    a plain array that applied exactly the acknowledged prefix — the
    durability contract: nothing acked is lost, nothing torn shows up.

    ``directory`` must be a fresh directory per call (pass pytest's
    ``tmp_path``); the harness deliberately leaves the crash artifacts
    in place so a failing run can be inspected.
    """
    from repro.serve import CubeService, DurabilityPolicy

    rng = np.random.default_rng(seed)
    base = rng.integers(-20, 80, size=shape).astype(np.int64)
    oracle = base.copy()
    cutoff = groups if crash_after is None else int(crash_after)

    service = CubeService(
        method_cls,
        base,
        method_kwargs=method_kwargs,
        durability=DurabilityPolicy(
            dir=directory, checkpoint_every=checkpoint_every
        ),
    )
    acked = 0
    try:
        for _ in range(groups):
            if acked >= cutoff:
                break
            updates = [
                (
                    tuple(int(rng.integers(0, n)) for n in shape),
                    int(rng.integers(-9, 10)) or 1,
                )
                for _ in range(int(rng.integers(1, 6)))
            ]
            service.submit_batch(updates)
            acked += 1
            for cell, delta in updates:
                oracle[cell] += delta
    finally:
        service.abandon()

    recovered = CubeService.recover(directory, method_cls)
    try:
        assert recovered.version == acked, (
            f"recovered version {recovered.version}, "
            f"but {acked} groups were acknowledged (seed={seed})"
        )
        arr, _, _ = recovered._read(lambda m: m.to_array())
        assert np.array_equal(np.asarray(arr), oracle), (
            f"recovered state diverged from the acked-prefix oracle "
            f"(seed={seed}, acked={acked})"
        )
        assert not recovered.quarantined_groups(), (
            "clean workload must not quarantine anything at replay"
        )
    finally:
        recovered.close()

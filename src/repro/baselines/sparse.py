"""A sparse naive baseline: hash-map of nonzero cells.

The paper's structures are dense — their sizes are ``n^d`` regardless of
content — and its warning that "the size of a data cube is exponential in
the number of its dimensions" is precisely why real high-dimensional
cubes are stored sparsely. This baseline represents that practice: only
nonzero cells are materialized, queries scan the nonzero set (O(nnz)
worst case, independent of the range's volume), updates are O(1).

It completes the trade-off picture the benchmarks draw: on very sparse
cubes the scan beats the naive dense scan and costs no precomputation,
while the prefix-sum family still answers in O(1) but must pay dense
storage. ``storage_cells()`` reports the live (nonzero) cell count.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod

Coord = Tuple[int, ...]


class SparseNaiveCube(RangeSumMethod):
    """Nonzero cells in a dict; scan-based queries, O(1) updates."""

    name = "sparse_naive"

    def _build(self, array: np.ndarray) -> None:
        self._cells: Dict[Coord, object] = {}
        for idx in np.argwhere(array != 0):
            coord = tuple(int(i) for i in idx)
            self._cells[coord] = array[coord]

    @property
    def nonzero_cells(self) -> int:
        """Number of cells currently materialized."""
        return len(self._cells)

    def prefix_sum(self, target: Sequence[int]):
        """Sum every stored cell dominated by ``target`` (one dict scan)."""
        t = indexing.normalize_index(target, self.shape)
        total = self._zero()
        scanned = 0
        for coord, value in self._cells.items():
            scanned += 1
            if all(c <= ti for c, ti in zip(coord, t)):
                total += value
        self.counter.read(max(scanned, 1), structure="sparse")
        return total

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """Scan the nonzero set once, filtering by the range."""
        lo, hi = indexing.normalize_range(low, high, self.shape)
        total = self._zero()
        scanned = 0
        for coord, value in self._cells.items():
            scanned += 1
            if all(l <= c <= h for c, l, h in zip(coord, lo, hi)):
                total += value
        self.counter.read(max(scanned, 1), structure="sparse")
        return total

    def cell_value(self, index: Sequence[int]):
        """One dict lookup."""
        idx = indexing.normalize_index(index, self.shape)
        self.counter.read(1, structure="sparse")
        return self._cells.get(idx, self._zero())

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """O(1): adjust (or create/remove) one stored cell."""
        idx = indexing.normalize_index(index, self.shape)
        new_value = self._cells.get(idx, self._zero()) + delta
        if new_value:
            self._cells[idx] = new_value
        else:
            self._cells.pop(idx, None)  # keep the map truly sparse
        self.counter.write(1, structure="sparse")

    def storage_cells(self) -> int:
        """Only the live nonzero cells are materialized."""
        return len(self._cells)

    def to_array(self) -> np.ndarray:
        """Densify (verification/debug)."""
        out = np.zeros(self.shape, dtype=self._dtype)
        for coord, value in self._cells.items():
            out[coord] = value
        return out

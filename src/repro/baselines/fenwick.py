"""d-dimensional Fenwick tree (binary indexed tree) comparator.

Not part of the paper's 1999 evaluation, but the natural point of
comparison from the follow-on range-sum literature: it balances both
operations at ``O(log^d n)`` instead of making one of them constant. We
include it as a clearly-labelled extension so the benchmark harness can
show where the RPS trade-off (O(1) query, O(n^{d/2}) update) wins and
loses against a logarithmic-both-ways structure.

The implementation uses the classic 1-based parent arithmetic
(``i -= i & -i`` walking down, ``i += i & -i`` walking up) applied
independently per axis.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod


class FenwickCube(RangeSumMethod):
    """d-dimensional binary indexed tree over a dense cube."""

    name = "fenwick"

    def _build(self, array: np.ndarray) -> None:
        self._tree = np.zeros(self.shape, dtype=self._dtype)
        # O(n^d log^d n) bulk build by repeated point insertion would be
        # slow; instead use the linear-time trick per axis: start from the
        # raw values and push each node's total into its parent.
        self._tree[...] = array
        for axis in range(self.ndim):
            n = self.shape[axis]
            for i in range(1, n + 1):  # 1-based positions
                parent = i + (i & -i)
                if parent <= n:
                    src = [slice(None)] * self.ndim
                    dst = [slice(None)] * self.ndim
                    src[axis] = i - 1
                    dst[axis] = parent - 1
                    self._tree[tuple(dst)] += self._tree[tuple(src)]

    def _axis_prefix_positions(self, target: int) -> List[int]:
        """0-based tree cells combined for a prefix ``[0, target]`` on one axis."""
        positions = []
        i = target + 1  # 1-based
        while i > 0:
            positions.append(i - 1)
            i -= i & -i
        return positions

    def _axis_update_positions(self, index: int, n: int) -> List[int]:
        """0-based tree cells touched by a point update on one axis."""
        positions = []
        i = index + 1
        while i <= n:
            positions.append(i - 1)
            i += i & -i
        return positions

    def prefix_sum(self, target: Sequence[int]):
        """Sum of ``A[0..target]`` from O(log^d n) tree cells."""
        t = indexing.normalize_index(target, self.shape)
        grids = [self._axis_prefix_positions(ti) for ti in t]
        block = self._tree[np.ix_(*grids)]
        self.counter.read(block.size, structure="fenwick")
        return self._dtype.type(block.sum())

    def apply_delta(self, index: Sequence[int], delta) -> None:
        """Add ``delta`` along the O(log^d n) update paths."""
        idx = indexing.normalize_index(index, self.shape)
        grids = [
            self._axis_update_positions(i, n)
            for i, n in zip(idx, self.shape)
        ]
        view = self._tree[np.ix_(*grids)]
        view += delta
        self._tree[np.ix_(*grids)] = view
        self.counter.write(view.size, structure="fenwick")

    def storage_cells(self) -> int:
        """The tree is exactly the size of A."""
        return self._tree.size

"""d-dimensional Fenwick tree (binary indexed tree) comparator.

Not part of the paper's 1999 evaluation, but the natural point of
comparison from the follow-on range-sum literature: it balances both
operations at ``O(log^d n)`` instead of making one of them constant. We
include it as a clearly-labelled extension so the benchmark harness can
show where the RPS trade-off (O(1) query, O(n^{d/2}) update) wins and
loses against a logarithmic-both-ways structure.

The implementation uses the classic 1-based parent arithmetic
(``i -= i & -i`` walking down, ``i += i & -i`` walking up) applied
independently per axis.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod


class FenwickCube(RangeSumMethod):
    """d-dimensional binary indexed tree over a dense cube."""

    name = "fenwick"

    def _build(self, array: np.ndarray) -> None:
        self._tree = np.zeros(self.shape, dtype=self._dtype)
        # O(n^d log^d n) bulk build by repeated point insertion would be
        # slow; instead use the linear-time trick per axis: start from the
        # raw values and push each node's total into its parent.
        self._tree[...] = array
        for axis in range(self.ndim):
            n = self.shape[axis]
            for i in range(1, n + 1):  # 1-based positions
                parent = i + (i & -i)
                if parent <= n:
                    src = [slice(None)] * self.ndim
                    dst = [slice(None)] * self.ndim
                    src[axis] = i - 1
                    dst[axis] = parent - 1
                    self._tree[tuple(dst)] += self._tree[tuple(src)]

    def _axis_prefix_positions(self, target: int) -> List[int]:
        """0-based tree cells combined for a prefix ``[0, target]`` on one axis."""
        positions = []
        i = target + 1  # 1-based
        while i > 0:
            positions.append(i - 1)
            i -= i & -i
        return positions

    def _axis_update_positions(self, index: int, n: int) -> List[int]:
        """0-based tree cells touched by a point update on one axis."""
        positions = []
        i = index + 1
        while i <= n:
            positions.append(i - 1)
            i += i & -i
        return positions

    def prefix_sum(self, target: Sequence[int]):
        """Sum of ``A[0..target]`` from O(log^d n) tree cells."""
        t = indexing.normalize_index(target, self.shape)
        grids = [self._axis_prefix_positions(ti) for ti in t]
        block = self._tree[np.ix_(*grids)]
        self.counter.read(block.size, structure="fenwick")
        return self._dtype.type(block.sum())

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched prefix sums via per-bit-slot gathers.

        Each axis contributes at most ``ceil(log2 n_i)`` tree positions
        per query; the kernel materializes them as ``(Q, L_i)`` position
        and validity matrices (one vectorized parent-walk per bit slot,
        never per query) and gathers the tree once per slot combination —
        ``prod(L_i)`` gathers of Q cells, replacing Q Python-level
        ``np.ix_`` constructions. Charges the same
        ``prod(#set bits of t_i + 1)`` reads per query as the loop.
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        q_count = len(batch)
        out = np.zeros(q_count, dtype=self._dtype)
        if q_count == 0:
            return out
        positions, valid = [], []
        charges = np.ones(q_count, dtype=np.int64)
        for axis, n in enumerate(self.shape):
            bits = int(n).bit_length()
            pos = np.zeros((q_count, bits), dtype=np.intp)
            live = np.zeros((q_count, bits), dtype=bool)
            i = batch[:, axis] + 1  # 1-based walk, vectorized over Q
            for b in range(bits):
                alive = i > 0
                live[:, b] = alive
                pos[alive, b] = i[alive] - 1
                i = i - (i & -i)
            positions.append(pos)
            valid.append(live)
            charges *= live.sum(axis=1)
        self.counter.read(int(charges.sum()), structure="fenwick")
        for combo in itertools.product(
            *[range(int(n).bit_length()) for n in self.shape]
        ):
            mask = valid[0][:, combo[0]]
            for axis in range(1, self.ndim):
                mask = mask & valid[axis][:, combo[axis]]
            if not mask.any():
                continue
            cell = tuple(
                positions[axis][mask, combo[axis]]
                for axis in range(self.ndim)
            )
            out[mask] += self._tree[cell]
        return out

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched range sums: the corner identity over batched prefixes."""
        lo, hi = indexing.normalize_range_batch(lows, highs, self.shape)
        return self._corner_range_sum_many(lo, hi)

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """Add ``delta`` along the O(log^d n) update paths."""
        idx = indexing.normalize_index(index, self.shape)
        grids = [
            self._axis_update_positions(i, n)
            for i, n in zip(idx, self.shape)
        ]
        view = self._tree[np.ix_(*grids)]
        view += delta
        self._tree[np.ix_(*grids)] = view
        self.counter.write(view.size, structure="fenwick")

    def apply_batch_array(self, indices, deltas) -> int:
        """Array-signature batch updates, looped per row.

        The Fenwick update paths are log-structured (a different
        ``np.ix_`` grid per cell), not suffix regions, so there is no
        shared cumulative-sum pass to batch them into; the fallback keeps
        the uniform ``apply_batch_array`` contract — and the per-update
        ledger — by looping :meth:`apply_delta`.
        """
        idx, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        deltas = self.coerce_deltas(deltas)
        for row, delta in zip(idx, deltas):
            self.apply_delta(tuple(int(c) for c in row), delta)
        return len(idx)

    def storage_cells(self) -> int:
        """The tree is exactly the size of A."""
        return self._tree.size

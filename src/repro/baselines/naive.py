"""The naive method (paper Section 2).

Array ``A`` is stored as-is. A range query scans every cell in the range —
``O(n^d)`` worst case — while an update writes exactly one cell, ``O(1)``.
The query×update cost product is ``O(n^d)``, the figure both the prefix sum
method and the relative prefix sum method are measured against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod


class NaiveCube(RangeSumMethod):
    """Dense array with scan-based range sums and constant-time updates."""

    name = "naive"

    def _build(self, array: np.ndarray) -> None:
        self._a = array.copy()
        # Lazily-built padded prefix cube used only by the *_many kernels
        # (invalidated by every write). Purely a wall-clock shortcut: the
        # counters still charge the naive method's logical cost — the
        # volume of every scanned region — so the cost model is unchanged.
        self._batch_prefix = None

    def _padded_prefix(self) -> np.ndarray:
        """``P1`` with a zero border: ``P1[t + 1] = SUM(A[0..t])``.

        The +1 padding turns every empty-prefix corner of the
        inclusion–exclusion identity into an ordinary zero lookup, so the
        batched kernels need no masking.
        """
        if self._batch_prefix is None:
            p1 = np.zeros(
                tuple(n + 1 for n in self.shape), dtype=self._a.dtype
            )
            inner = tuple(slice(1, None) for _ in self.shape)
            p1[inner] = self._a
            for axis in range(self.ndim):
                np.cumsum(p1, axis=axis, out=p1)
            self._batch_prefix = p1
        return self._batch_prefix

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched prefix sums from one shared prefix pass over ``A``.

        Charges the same logical cost as looping :meth:`prefix_sum`:
        every cell of every prefix region, however the lookup is
        physically served.
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        if len(batch) == 0:
            return np.empty(0, dtype=self._dtype)
        volumes = np.prod(batch.astype(np.int64) + 1, axis=1)
        self.counter.read(int(volumes.sum()), structure="A")
        return self._padded_prefix()[tuple((batch + 1).T)]

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched range sums via ``2^d`` gathers on the padded prefix.

        Charges each query's region volume — the naive method's logical
        scan cost — exactly as the looped :meth:`range_sum` does.
        """
        lo, hi = indexing.normalize_range_batch(lows, highs, self.shape)
        if len(lo) == 0:
            return np.empty(0, dtype=self._dtype)
        volumes = np.prod((hi - lo + 1).astype(np.int64), axis=1)
        self.counter.read(int(volumes.sum()), structure="A")
        p1 = self._padded_prefix()
        out = np.zeros(len(lo), dtype=self._dtype)
        for mask in range(1 << self.ndim):
            corner = hi + 1
            for axis in range(self.ndim):
                if mask & (1 << axis):
                    corner[:, axis] = lo[:, axis]
            sign = -1 if bin(mask).count("1") % 2 else 1
            out += sign * p1[tuple(corner.T)]
        return out

    def prefix_sum(self, target: Sequence[int]):
        """Sum ``A[0..target]`` by scanning the prefix region."""
        t = indexing.normalize_index(target, self.shape)
        region = self._a[indexing.prefix_slices(t)]
        self.counter.read(region.size, structure="A")
        return self._dtype.type(region.sum())

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """Sum the query region directly — no inclusion–exclusion needed."""
        lo, hi = indexing.normalize_range(low, high, self.shape)
        region = self._a[indexing.range_to_slices(lo, hi)]
        self.counter.read(region.size, structure="A")
        return self._dtype.type(region.sum())

    def cell_value(self, index: Sequence[int]):
        """Read a single cell."""
        idx = indexing.normalize_index(index, self.shape)
        self.counter.read(1, structure="A")
        return self._a[idx]

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """Add ``delta`` to one cell — the O(1) update of the naive method."""
        idx = indexing.normalize_index(index, self.shape)
        self._a[idx] += delta
        self._batch_prefix = None
        self.counter.write(1, structure="A")

    def apply_batch(self, updates) -> int:
        """Batching changes nothing for the naive method: one write each."""
        count = 0
        for index, delta in updates:
            self.apply_delta(index, delta)
            count += 1
        return count

    def apply_batch_array(self, indices, deltas) -> int:
        """One ``np.add.at`` scatter (duplicate rows accumulate).

        Charges one write per row — the same ledger as looping
        :meth:`apply_delta` — and invalidates the batch-query cache once.
        """
        idx, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        if len(idx) == 0:
            return 0
        deltas = self.coerce_deltas(deltas)
        np.add.at(self._a, tuple(idx.T), deltas)
        self._batch_prefix = None
        self.counter.write(len(idx), structure="A")
        return len(idx)

    def storage_cells(self) -> int:
        """The naive method stores exactly the source array."""
        return self._a.size

    def to_array(self) -> np.ndarray:
        """Direct copy — cheaper than the base-class reconstruction."""
        return self._a.copy()

"""The naive method (paper Section 2).

Array ``A`` is stored as-is. A range query scans every cell in the range —
``O(n^d)`` worst case — while an update writes exactly one cell, ``O(1)``.
The query×update cost product is ``O(n^d)``, the figure both the prefix sum
method and the relative prefix sum method are measured against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod


class NaiveCube(RangeSumMethod):
    """Dense array with scan-based range sums and constant-time updates."""

    name = "naive"

    def _build(self, array: np.ndarray) -> None:
        self._a = array.copy()

    def prefix_sum(self, target: Sequence[int]):
        """Sum ``A[0..target]`` by scanning the prefix region."""
        t = indexing.normalize_index(target, self.shape)
        region = self._a[indexing.prefix_slices(t)]
        self.counter.read(region.size, structure="A")
        return self._dtype.type(region.sum())

    def range_sum(self, low: Sequence[int], high: Sequence[int]):
        """Sum the query region directly — no inclusion–exclusion needed."""
        lo, hi = indexing.normalize_range(low, high, self.shape)
        region = self._a[indexing.range_to_slices(lo, hi)]
        self.counter.read(region.size, structure="A")
        return self._dtype.type(region.sum())

    def cell_value(self, index: Sequence[int]):
        """Read a single cell."""
        idx = indexing.normalize_index(index, self.shape)
        self.counter.read(1, structure="A")
        return self._a[idx]

    def apply_delta(self, index: Sequence[int], delta) -> None:
        """Add ``delta`` to one cell — the O(1) update of the naive method."""
        idx = indexing.normalize_index(index, self.shape)
        self._a[idx] += delta
        self.counter.write(1, structure="A")

    def apply_batch(self, updates) -> int:
        """Batching changes nothing for the naive method: one write each."""
        count = 0
        for index, delta in updates:
            self.apply_delta(index, delta)
            count += 1
        return count

    def storage_cells(self) -> int:
        """The naive method stores exactly the source array."""
        return self._a.size

    def to_array(self) -> np.ndarray:
        """Direct copy — cheaper than the base-class reconstruction."""
        return self._a.copy()

"""Baseline range-sum methods the paper compares against, plus extensions."""

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube, build_prefix_array
from repro.baselines.fenwick import FenwickCube
from repro.baselines.sparse import SparseNaiveCube

__all__ = [
    "FenwickCube",
    "NaiveCube",
    "PrefixSumCube",
    "SparseNaiveCube",
    "build_prefix_array",
]

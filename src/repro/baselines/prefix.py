"""The prefix sum method of Ho, Agrawal, Megiddo and Srikant (paper ref [7]).

Array ``P`` stores, for every cell, the sum of all cells of ``A`` up to and
including it (Figure 2). Any prefix sum is a single lookup, so a range sum
costs ``2^d`` lookups — O(1) for fixed d. The price is the cascading update:
changing ``A[c]`` changes ``P[q]`` for every ``q >= c`` componentwise
(Figure 4), which in the worst case (``c = 0``) rewrites the entire cube,
``O(n^d)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import indexing
from repro.core.base import RangeSumMethod


def build_prefix_array(array: np.ndarray) -> np.ndarray:
    """Compute the d-dimensional inclusive prefix-sum array ``P`` of ``A``.

    Runs one cumulative sum per axis; ``P[t] = SUM(A[0..t])``.
    """
    p = array.copy()
    for axis in range(array.ndim):
        np.cumsum(p, axis=axis, out=p)
    return p


class PrefixSumCube(RangeSumMethod):
    """Ho et al.'s precomputed prefix sums: O(1) query, O(n^d) update."""

    name = "prefix_sum"

    def _build(self, array: np.ndarray) -> None:
        self._p = build_prefix_array(array)

    def prefix_sum(self, target: Sequence[int]):
        """One cell lookup in ``P`` (the method's core property)."""
        t = indexing.normalize_index(target, self.shape)
        self.counter.read(1, structure="P")
        return self._p[t]

    def prefix_sum_many(self, targets) -> np.ndarray:
        """Batched prefix sums: one fancy-indexed gather on ``P``.

        Charges one read per target — exactly what looping
        :meth:`prefix_sum` charges.
        """
        batch = indexing.normalize_index_batch(targets, self.shape)
        if len(batch) == 0:
            return np.empty(0, dtype=self._p.dtype)
        self.counter.read(len(batch), structure="P")
        return self._p[tuple(batch.T)]

    def range_sum_many(self, lows, highs) -> np.ndarray:
        """Batched range sums: one gather per corner of the identity."""
        lo, hi = indexing.normalize_range_batch(lows, highs, self.shape)
        return self._corner_range_sum_many(lo, hi)

    def _apply_delta(self, index: Sequence[int], delta) -> None:
        """Cascade ``delta`` into every P-cell dominating ``index``.

        This is the shaded region of Figure 4: all cells ``q`` with
        ``q_i >= index_i`` on every axis. The write count —
        ``prod(n_i - index_i)`` — is the quantity the paper's update-cost
        analysis tracks.
        """
        idx = indexing.normalize_index(index, self.shape)
        suffix = tuple(slice(i, None) for i in idx)
        region = self._p[suffix]
        region += delta
        self.counter.write(region.size, structure="P")

    def apply_batch(self, updates) -> int:
        """Fold a whole batch into one O(n^d) pass over P.

        Materializes the batch as a delta cube, prefix-sums it once, and
        adds it to P — the natural daily-batch strategy for this method:
        the cost is one rebuild-sized pass however large the batch is.
        """
        batch = list(updates)
        if not batch:
            return 0
        indices = np.array(
            [
                indexing.normalize_index(index, self.shape)
                for index, _ in batch
            ],
            dtype=np.intp,
        )
        return self.apply_batch_array(
            indices, np.asarray([delta for _, delta in batch])
        )

    def apply_batch_array(self, indices, deltas) -> int:
        """Array-native :meth:`apply_batch`: scatter, prefix-sum, add.

        Same one-pass fold and same ledger (one ``n^d`` write pass per
        non-empty batch, however large), with ``np.add.at`` replacing the
        per-row Python scatter.
        """
        idx, deltas = indexing.normalize_update_batch(
            indices, deltas, self.shape
        )
        if len(idx) == 0:
            return 0
        deltas = self.coerce_deltas(deltas)
        spread = np.zeros(self.shape, dtype=self._p.dtype)
        np.add.at(spread, tuple(idx.T), deltas)
        self._p += build_prefix_array(spread)
        self.counter.write(self._p.size, structure="P")
        return len(idx)

    def storage_cells(self) -> int:
        """P has exactly the same size as A."""
        return self._p.size

    def prefix_array(self) -> np.ndarray:
        """Copy of the internal P array (used by table-reproduction benches)."""
        return self._p.copy()

    def to_array(self) -> np.ndarray:
        """Invert the prefix sums by differencing along every axis."""
        a = self._p.copy()
        for axis in range(self.ndim):
            a = np.diff(a, axis=axis, prepend=0)
        return a

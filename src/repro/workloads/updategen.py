"""Update-stream generators.

The paper's motivation is data that changes — "new information may arrive
on a daily basis". These generators produce streams of ``(cell, delta)``
updates: uniformly random cells, skewed (hot-cell) streams, append-style
streams concentrated on the trailing slice of a time dimension, and the
adversarial worst-case cells each method's analysis highlights.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError

Coord = Tuple[int, ...]
Update = Tuple[Coord, int]


def _check_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(n) for n in shape)
    if not shape or any(n < 1 for n in shape):
        raise WorkloadError(f"invalid cube shape {shape}")
    return shape


def random_updates(
    shape: Sequence[int],
    count: int,
    max_delta: int = 10,
    seed=0,
) -> Iterator[Update]:
    """Uniformly random cells with deltas in ``[-max_delta, max_delta]\\{0}``."""
    shape = _check_shape(shape)
    if max_delta < 1:
        raise WorkloadError(f"max_delta must be >= 1, got {max_delta}")
    rng = np.random.default_rng(seed)
    for _ in range(count):
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-max_delta, max_delta + 1))
        yield cell, delta


def skewed_updates(
    shape: Sequence[int],
    count: int,
    hot_cells: int = 8,
    hot_probability: float = 0.9,
    max_delta: int = 10,
    seed=0,
) -> Iterator[Update]:
    """Most updates hit a small fixed set of hot cells.

    Models counters for popular products: a handful of cube cells absorb
    nearly all traffic.
    """
    shape = _check_shape(shape)
    if hot_cells < 1:
        raise WorkloadError(f"need at least one hot cell, got {hot_cells}")
    rng = np.random.default_rng(seed)
    hot = [
        tuple(int(rng.integers(0, n)) for n in shape)
        for _ in range(hot_cells)
    ]
    for _ in range(count):
        if rng.random() < hot_probability:
            cell = hot[int(rng.integers(0, hot_cells))]
        else:
            cell = tuple(int(rng.integers(0, n)) for n in shape)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-max_delta, max_delta + 1))
        yield cell, delta


def append_updates(
    shape: Sequence[int],
    count: int,
    time_axis: int = -1,
    recent_fraction: float = 0.1,
    max_delta: int = 10,
    seed=0,
) -> Iterator[Update]:
    """Updates land only in the most recent slice of one time dimension.

    The daily-sales pattern of the paper's introduction: today's facts
    touch today's coordinates. Note this is close to the *best* case for
    the plain prefix sum method (high coordinates cascade little) — the
    harness includes it precisely to show where PS is not terrible.
    """
    shape = _check_shape(shape)
    axis = time_axis % len(shape)
    if not 0.0 < recent_fraction <= 1.0:
        raise WorkloadError(
            f"recent fraction must be in (0, 1], got {recent_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_t = shape[axis]
    first_recent = max(0, n_t - max(1, round(recent_fraction * n_t)))
    for _ in range(count):
        cell = list(int(rng.integers(0, n)) for n in shape)
        cell[axis] = int(rng.integers(first_recent, n_t))
        delta = int(rng.integers(1, max_delta + 1))  # appends only add
        yield tuple(cell), delta


def worst_case_cell(shape: Sequence[int], method: str) -> Coord:
    """The adversarial update position for a method's analysis.

    * ``prefix_sum``: cell 0 — every P cell dominates it (Figure 4's
      "when cell A[0,0] is updated ... every cell ... updated").
    * ``rps``: cell (1, 1, ..., 1) — maximizes all three terms of the
      update formula without degenerate anchor-alignment discounts.
    * ``naive`` / ``fenwick``: position barely matters; cell 0 returned.
    """
    shape = _check_shape(shape)
    if method == "rps":
        return tuple(min(1, n - 1) for n in shape)
    return tuple(0 for _ in shape)

"""Synthetic data-cube generators.

The paper evaluates analytically, so no published dataset exists to load;
these generators produce cubes with the characteristics OLAP workloads
exhibit (dense uniform counts, skewed sales figures, sparse fact tables,
clustered hot regions) so the benchmark harness can exercise every method
on realistic inputs. All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(n) for n in shape)
    if not shape or any(n < 1 for n in shape):
        raise WorkloadError(f"invalid cube shape {shape}")
    return shape


def uniform_cube(
    shape: Sequence[int],
    low: int = 0,
    high: int = 100,
    seed=0,
) -> np.ndarray:
    """Integer cells drawn uniformly from ``[low, high)``."""
    shape = _check_shape(shape)
    if high <= low:
        raise WorkloadError(f"empty value range [{low}, {high})")
    return _rng(seed).integers(low, high, size=shape).astype(np.int64)


def zipf_cube(
    shape: Sequence[int],
    exponent: float = 1.5,
    cap: int = 10_000,
    seed=0,
) -> np.ndarray:
    """Heavy-tailed cells (a few huge totals, many small) via a Zipf law.

    Models measures like revenue where a handful of (age, day) cells
    dominate. ``cap`` truncates the tail so sums stay well inside int64.
    """
    shape = _check_shape(shape)
    if exponent <= 1.0:
        raise WorkloadError(f"zipf exponent must be > 1, got {exponent}")
    values = _rng(seed).zipf(exponent, size=shape)
    return np.minimum(values, cap).astype(np.int64)


def sparse_cube(
    shape: Sequence[int],
    density: float = 0.05,
    low: int = 1,
    high: int = 100,
    seed=0,
) -> np.ndarray:
    """Mostly-zero cube: each cell is nonzero with probability ``density``.

    Models high-dimensional cubes where most attribute combinations never
    occur — the regime where the paper's exponential-size warning bites.
    """
    shape = _check_shape(shape)
    if not 0.0 <= density <= 1.0:
        raise WorkloadError(f"density must be in [0, 1], got {density}")
    rng = _rng(seed)
    mask = rng.random(size=shape) < density
    values = rng.integers(low, high, size=shape)
    return np.where(mask, values, 0).astype(np.int64)


def clustered_cube(
    shape: Sequence[int],
    clusters: int = 4,
    spread: float = 0.08,
    amplitude: int = 1_000,
    seed=0,
) -> np.ndarray:
    """Gaussian hot spots on a low background.

    Models seasonal/regional concentration (e.g. holiday sales spikes):
    ``clusters`` random centers each radiate an exponentially-decaying
    bump of total height ``amplitude`` with radius ``spread * n``.
    """
    shape = _check_shape(shape)
    if clusters < 1:
        raise WorkloadError(f"need at least one cluster, got {clusters}")
    rng = _rng(seed)
    grids = np.meshgrid(
        *[np.arange(n, dtype=np.float64) for n in shape], indexing="ij"
    )
    out = rng.integers(0, 3, size=shape).astype(np.float64)
    for _ in range(clusters):
        center = [rng.uniform(0, n - 1) for n in shape]
        radius = max(1.0, spread * float(np.mean(shape)))
        dist2 = sum((g - c) ** 2 for g, c in zip(grids, center))
        out += amplitude * np.exp(-dist2 / (2.0 * radius**2))
    return np.round(out).astype(np.int64)


def paper_example_cube() -> np.ndarray:
    """The paper's own 9x9 example array (Figure 1)."""
    from repro.paper import ARRAY_A

    return ARRAY_A.copy()


GENERATORS = {
    "uniform": uniform_cube,
    "zipf": zipf_cube,
    "sparse": sparse_cube,
    "clustered": clustered_cube,
}


def make_cube(kind: str, shape: Sequence[int], seed=0, **kwargs) -> np.ndarray:
    """Dispatch to a named generator (used by the CLI and benchmarks)."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise WorkloadError(
            f"unknown cube kind {kind!r}; choose from {sorted(GENERATORS)}"
        ) from None
    return generator(shape, seed=seed, **kwargs)

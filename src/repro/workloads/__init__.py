"""Synthetic cubes, query/update streams, and the mixed-workload runner."""

from repro.workloads.datagen import (
    GENERATORS,
    clustered_cube,
    make_cube,
    paper_example_cube,
    sparse_cube,
    uniform_cube,
    zipf_cube,
)
from repro.workloads.querygen import (
    fixed_extent_ranges,
    hotspot_ranges,
    point_queries,
    random_ranges,
    sliding_windows,
)
from repro.workloads.runner import (
    ClusterWorkloadRunner,
    WorkloadResult,
    WorkloadRunner,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, get_scenario, run_scenario
from repro.workloads.trace import Operation, Trace
from repro.workloads.updategen import (
    append_updates,
    random_updates,
    skewed_updates,
    worst_case_cell,
)

__all__ = [
    "ClusterWorkloadRunner",
    "GENERATORS",
    "Operation",
    "SCENARIOS",
    "Scenario",
    "Trace",
    "WorkloadResult",
    "WorkloadRunner",
    "get_scenario",
    "run_scenario",
    "append_updates",
    "clustered_cube",
    "fixed_extent_ranges",
    "hotspot_ranges",
    "make_cube",
    "paper_example_cube",
    "point_queries",
    "random_ranges",
    "random_updates",
    "skewed_updates",
    "sliding_windows",
    "sparse_cube",
    "uniform_cube",
    "worst_case_cell",
    "zipf_cube",
]

"""Workload traces: record once, replay anywhere.

Benchmarking two methods fairly requires feeding them the *identical*
operation stream; comparing runs across machines or versions requires
persisting that stream. A :class:`Trace` is an ordered list of query and
update operations that can be captured from any generator pair, saved as
JSON lines, loaded back, and replayed through the
:class:`~repro.workloads.runner.WorkloadRunner` against any method.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.errors import WorkloadError

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class Operation:
    """One traced operation.

    ``kind`` is ``"query"`` (payload: low, high) or ``"update"``
    (payload: cell, delta).
    """

    kind: str
    low: Coord = None
    high: Coord = None
    cell: Coord = None
    delta: float = None

    def to_json(self) -> str:
        """One JSON line for this operation."""
        if self.kind == "query":
            return json.dumps(
                {"op": "q", "low": list(self.low), "high": list(self.high)}
            )
        return json.dumps(
            {"op": "u", "cell": list(self.cell), "delta": self.delta}
        )

    @classmethod
    def from_json(cls, line: str) -> "Operation":
        """Parse one JSON line back into an operation."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"bad trace line: {line[:60]!r}") from exc
        if payload.get("op") == "q":
            return cls(
                "query",
                low=tuple(payload["low"]),
                high=tuple(payload["high"]),
            )
        if payload.get("op") == "u":
            return cls(
                "update",
                cell=tuple(payload["cell"]),
                delta=payload["delta"],
            )
        raise WorkloadError(f"unknown trace op in line: {line[:60]!r}")


class Trace:
    """An ordered, persistable stream of workload operations."""

    def __init__(self, operations: Iterable[Operation] = ()) -> None:
        self.operations: List[Operation] = list(operations)

    # -- capture ---------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        queries: Iterable = (),
        updates: Iterable = (),
        interleave: bool = True,
    ) -> "Trace":
        """Build a trace from query/update streams.

        With ``interleave=True`` operations alternate (query, update,
        ...), matching the runner's default mixing; otherwise queries
        come first.
        """
        query_ops = [
            Operation("query", low=tuple(low), high=tuple(high))
            for low, high in queries
        ]
        update_ops = [
            Operation("update", cell=tuple(cell), delta=delta)
            for cell, delta in updates
        ]
        if not interleave:
            return cls(query_ops + update_ops)
        mixed: List[Operation] = []
        qi = ui = 0
        for i in range(len(query_ops) + len(update_ops)):
            take_query = (i % 2 == 0 and qi < len(query_ops)) or (
                ui >= len(update_ops)
            )
            if take_query:
                mixed.append(query_ops[qi])
                qi += 1
            else:
                mixed.append(update_ops[ui])
                ui += 1
        return cls(mixed)

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        """Write the trace as JSON lines."""
        with open(path, "w") as handle:
            for operation in self.operations:
                handle.write(operation.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        operations = []
        for line in Path(path).read_text().splitlines():
            if line.strip():
                operations.append(Operation.from_json(line))
        return cls(operations)

    # -- replay --------------------------------------------------------------------

    def queries(self) -> List[Tuple[Coord, Coord]]:
        """The trace's queries, in order."""
        return [
            (op.low, op.high)
            for op in self.operations
            if op.kind == "query"
        ]

    def updates(self) -> List[Tuple[Coord, float]]:
        """The trace's updates, in order."""
        return [
            (op.cell, op.delta)
            for op in self.operations
            if op.kind == "update"
        ]

    def replay(self, method, oracle=None):
        """Run the trace, in its exact recorded order, against a method.

        Returns a :class:`~repro.workloads.runner.WorkloadResult`. Unlike
        the runner's own mixing, replay preserves the trace's operation
        order exactly (that is the point of a trace).
        """
        from repro.workloads.runner import WorkloadResult, WorkloadRunner

        runner = WorkloadRunner(method, oracle=oracle)
        result = WorkloadResult(method=method.name)
        for operation in self.operations:
            if operation.kind == "query":
                runner._run_query(
                    (operation.low, operation.high), result, keep=False
                )
            else:
                runner._run_update(
                    (operation.cell, operation.delta), result
                )
        return result

    def __len__(self) -> int:
        return len(self.operations)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Trace)
            and self.operations == other.operations
        )

    def __repr__(self) -> str:
        n_queries = sum(1 for op in self.operations if op.kind == "query")
        return (
            f"Trace({n_queries} queries, "
            f"{len(self.operations) - n_queries} updates)"
        )

"""Range-query workload generators.

Streams of inclusive ``(low, high)`` ranges with controllable shape:
uniformly random ranges, fixed-volume ranges, point lookups, hotspot
ranges concentrated in a sub-region, and sliding windows along one axis
(the access pattern of the paper's ROLLING aggregates).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError

Coord = Tuple[int, ...]
QueryRange = Tuple[Coord, Coord]


def _check_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(n) for n in shape)
    if not shape or any(n < 1 for n in shape):
        raise WorkloadError(f"invalid cube shape {shape}")
    return shape


def random_ranges(
    shape: Sequence[int], count: int, seed=0
) -> Iterator[QueryRange]:
    """Uniformly random inclusive ranges (independent per dimension)."""
    shape = _check_shape(shape)
    rng = np.random.default_rng(seed)
    for _ in range(count):
        low, high = [], []
        for n in shape:
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            low.append(a)
            high.append(b)
        yield tuple(low), tuple(high)


def fixed_extent_ranges(
    shape: Sequence[int],
    extent: float,
    count: int,
    seed=0,
) -> Iterator[QueryRange]:
    """Ranges covering a fixed fraction ``extent`` of each dimension.

    ``extent=1.0`` yields full-cube queries (the naive method's worst
    case); small extents model selective drill-downs.
    """
    shape = _check_shape(shape)
    if not 0.0 < extent <= 1.0:
        raise WorkloadError(f"extent must be in (0, 1], got {extent}")
    rng = np.random.default_rng(seed)
    for _ in range(count):
        low, high = [], []
        for n in shape:
            width = max(1, round(extent * n))
            start = int(rng.integers(0, n - width + 1))
            low.append(start)
            high.append(start + width - 1)
        yield tuple(low), tuple(high)


def point_queries(
    shape: Sequence[int], count: int, seed=0
) -> Iterator[QueryRange]:
    """Degenerate single-cell ranges."""
    shape = _check_shape(shape)
    rng = np.random.default_rng(seed)
    for _ in range(count):
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        yield cell, cell


def hotspot_ranges(
    shape: Sequence[int],
    count: int,
    hotspot_fraction: float = 0.2,
    hot_probability: float = 0.8,
    seed=0,
) -> Iterator[QueryRange]:
    """Ranges biased toward one hot sub-region of the cube.

    With probability ``hot_probability`` a query falls entirely inside
    the central region covering ``hotspot_fraction`` of each dimension —
    the skew typical of dashboards querying "the recent quarter".
    """
    shape = _check_shape(shape)
    if not 0.0 < hotspot_fraction <= 1.0:
        raise WorkloadError(
            f"hotspot fraction must be in (0, 1], got {hotspot_fraction}"
        )
    if not 0.0 <= hot_probability <= 1.0:
        raise WorkloadError(
            f"hot probability must be in [0, 1], got {hot_probability}"
        )
    rng = np.random.default_rng(seed)
    for _ in range(count):
        low, high = [], []
        in_hotspot = rng.random() < hot_probability
        for n in shape:
            if in_hotspot:
                width = max(1, round(hotspot_fraction * n))
                base = (n - width) // 2
                a, b = sorted(
                    int(x) for x in rng.integers(base, base + width, size=2)
                )
            else:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            low.append(a)
            high.append(b)
        yield tuple(low), tuple(high)


def sliding_windows(
    shape: Sequence[int],
    axis: int,
    window: int,
    seed=0,
) -> Iterator[QueryRange]:
    """Every window position along ``axis``, full extent elsewhere.

    The access pattern behind ROLLING SUM / ROLLING AVERAGE.
    """
    shape = _check_shape(shape)
    if not 0 <= axis < len(shape):
        raise WorkloadError(f"axis {axis} out of range for {shape}")
    if not 1 <= window <= shape[axis]:
        raise WorkloadError(
            f"window {window} invalid for axis of size {shape[axis]}"
        )
    for start in range(shape[axis] - window + 1):
        low = [0] * len(shape)
        high = [n - 1 for n in shape]
        low[axis] = start
        high[axis] = start + window - 1
        yield tuple(low), tuple(high)

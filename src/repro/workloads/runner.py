"""Mixed query/update workload execution with cost accounting.

The paper's overall-complexity argument assumes "queries and updates are
equally likely" and multiplies their costs. :class:`WorkloadRunner`
executes interleaved query/update streams against any method, verifies
results against an oracle when asked, and reports the per-operation cell
costs the product argument is built from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.base import RangeSumMethod
from repro.errors import ClusterUnavailableError, WorkloadError
from repro.workloads.querygen import QueryRange
from repro.workloads.updategen import Update


@dataclass
class WorkloadResult:
    """Aggregated outcome of one workload run against one method.

    Cell counts are the paper's cost unit; wall-clock seconds are the
    modern sanity check of the same claims.
    """

    method: str
    queries: int = 0
    updates: int = 0
    query_cells_read: int = 0
    update_cells_written: int = 0
    query_seconds: float = 0.0
    update_seconds: float = 0.0
    mismatches: int = 0
    unavailable: int = 0  # cluster runs only: ops lost to unavailability
    answers: List = field(default_factory=list)
    query_latencies: List[float] = field(default_factory=list)
    update_latencies: List[float] = field(default_factory=list)

    @property
    def cells_per_query(self) -> float:
        """Mean cells read per query."""
        return self.query_cells_read / self.queries if self.queries else 0.0

    @property
    def cells_per_update(self) -> float:
        """Mean cells written per update."""
        return (
            self.update_cells_written / self.updates if self.updates else 0.0
        )

    @property
    def cost_product(self) -> float:
        """Mean query cost x mean update cost — the paper's figure of merit."""
        return self.cells_per_query * self.cells_per_update

    def latency_percentiles(self, kind: str = "query") -> Dict[str, float]:
        """p50/p95/p99/max per-operation latency, in seconds.

        ``kind`` is ``"query"`` or ``"update"``; empty streams yield an
        all-zero summary.
        """
        samples = (
            self.query_latencies if kind == "query"
            else self.update_latencies
        )
        if not samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "p50": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
            "max": float(max(samples)),
        }


class WorkloadRunner:
    """Drives query/update streams through a method and tallies costs.

    Args:
        method: the structure under test.
        oracle: optional dense array kept in sync with the updates; when
            provided, every query answer is checked against it and
            mismatches are counted (they indicate a bug, and tests assert
            zero).
    """

    def __init__(
        self,
        method: RangeSumMethod,
        oracle: Optional[np.ndarray] = None,
    ) -> None:
        self.method = method
        self.oracle = None if oracle is None else np.array(oracle)
        if self.oracle is not None and self.oracle.shape != method.shape:
            raise WorkloadError(
                f"oracle shape {self.oracle.shape} != method shape "
                f"{method.shape}"
            )

    def run(
        self,
        queries: Iterable[QueryRange] = (),
        updates: Iterable[Update] = (),
        interleave: bool = True,
        keep_answers: bool = False,
    ) -> WorkloadResult:
        """Execute the streams and return aggregated costs.

        With ``interleave=True`` (the default, matching the paper's
        equally-likely assumption) operations alternate query, update,
        query, update...; otherwise all queries run first.
        """
        result = WorkloadResult(method=self.method.name)
        query_list = list(queries)
        update_list = list(updates)
        if interleave:
            ops: List[Tuple[str, object]] = []
            qi = ui = 0
            for i in range(len(query_list) + len(update_list)):
                take_query = (i % 2 == 0 and qi < len(query_list)) or (
                    ui >= len(update_list)
                )
                if take_query:
                    ops.append(("q", query_list[qi]))
                    qi += 1
                else:
                    ops.append(("u", update_list[ui]))
                    ui += 1
        else:
            ops = [("q", q) for q in query_list] + [
                ("u", u) for u in update_list
            ]
        for kind, op in ops:
            if kind == "q":
                self._run_query(op, result, keep_answers)
            else:
                self._run_update(op, result)
        return result

    def _run_query(
        self, query: QueryRange, result: WorkloadResult, keep: bool
    ) -> None:
        low, high = query
        before = self.method.counter.snapshot()
        start = time.perf_counter()
        answer = self.method.range_sum(low, high)
        elapsed = time.perf_counter() - start
        result.query_seconds += elapsed
        result.query_latencies.append(elapsed)
        delta = before.delta(self.method.counter)
        result.query_cells_read += delta.cells_read
        result.queries += 1
        if keep:
            result.answers.append(answer)
        if self.oracle is not None:
            slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
            expected = self.oracle[slices].sum()
            if not np.isclose(float(answer), float(expected)):
                result.mismatches += 1

    def _run_update(self, update: Update, result: WorkloadResult) -> None:
        cell, delta = update
        before = self.method.counter.snapshot()
        start = time.perf_counter()
        self.method.apply_delta(cell, delta)
        elapsed = time.perf_counter() - start
        result.update_seconds += elapsed
        result.update_latencies.append(elapsed)
        diff = before.delta(self.method.counter)
        result.update_cells_written += diff.cells_written
        result.updates += 1
        if self.oracle is not None:
            self.oracle[cell] += delta


class ClusterWorkloadRunner:
    """Drives interleaved traffic through a :class:`CubeCluster`.

    The cluster analogue of :class:`WorkloadRunner`: queries and update
    groups alternate, the oracle applies *exactly* the acknowledged
    updates (on a :class:`~repro.errors.ClusterUnavailableError` the
    error's ``acked`` receipt decides, per shard, which cells the oracle
    folds in), and every answered query is checked exactly — under
    chaos, a dropped answer is acceptable, a wrong one never is.

    Args:
        cluster: the :class:`~repro.cluster.CubeCluster` under test.
        oracle: dense array the updates are mirrored into; must match
            the cluster's cube shape.
        deadline_s: optional per-operation deadline budget.
    """

    def __init__(
        self,
        cluster,
        oracle: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.cluster = cluster
        self.oracle = np.array(oracle)
        if self.oracle.shape != cluster.shape:
            raise WorkloadError(
                f"oracle shape {self.oracle.shape} != cluster shape "
                f"{cluster.shape}"
            )
        self.deadline_s = deadline_s

    def _deadline(self):
        from repro.deadline import Deadline

        if self.deadline_s is None:
            return None
        return Deadline.after(self.deadline_s)

    def run(
        self,
        queries: Iterable[QueryRange] = (),
        update_groups: Iterable[List[Update]] = (),
        *,
        flush_before_query: bool = True,
    ) -> WorkloadResult:
        """Alternate queries and update groups; verify every answer.

        With ``flush_before_query`` (default) each query waits for every
        shard to apply what it acked, so answers are comparable to the
        oracle exactly even though shards apply asynchronously. Queries
        or updates lost to unavailability (a partitioned shard, an
        expired deadline) are *not* mismatches — they are recorded in
        the result's ``unavailable`` count and the oracle absorbs only
        what was acked.
        """
        result = WorkloadResult(method="cluster")
        query_list = list(queries)
        group_list = [list(g) for g in update_groups]
        ops: List[Tuple[str, object]] = []
        qi = ui = 0
        for i in range(len(query_list) + len(group_list)):
            take_query = (i % 2 == 0 and qi < len(query_list)) or (
                ui >= len(group_list)
            )
            if take_query:
                ops.append(("q", query_list[qi]))
                qi += 1
            else:
                ops.append(("u", group_list[ui]))
                ui += 1
        for kind, op in ops:
            if kind == "q":
                self._run_query(op, result, flush_before_query)
            else:
                self._run_group(op, result)
        return result

    def _run_query(
        self, query: QueryRange, result: WorkloadResult, flush: bool
    ) -> None:
        low, high = query
        start = time.perf_counter()
        try:
            if flush:
                self.cluster.flush()
            answer = self.cluster.range_sum(
                low, high, deadline=self._deadline()
            )
        except ClusterUnavailableError:
            result.unavailable += 1
            return
        elapsed = time.perf_counter() - start
        result.query_seconds += elapsed
        result.query_latencies.append(elapsed)
        result.queries += 1
        slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
        expected = self.oracle[slices].sum()
        if not np.isclose(float(answer), float(expected)):
            result.mismatches += 1

    def _run_group(self, group: List[Update], result: WorkloadResult) -> None:
        start = time.perf_counter()
        try:
            self.cluster.submit_batch(group, deadline=self._deadline())
            acked_shards = None  # everything acked
        except ClusterUnavailableError as error:
            result.unavailable += 1
            acked_shards = set(error.acked)
        elapsed = time.perf_counter() - start
        result.update_seconds += elapsed
        result.update_latencies.append(elapsed)
        result.updates += 1
        shardmap = self.cluster.shardmap
        for cell, delta in group:
            if (
                acked_shards is None
                or shardmap.shard_of(cell) in acked_shards
            ):
                self.oracle[tuple(cell)] += delta

"""Named end-to-end workload scenarios.

Reusable, parameterized combinations of a synthetic cube, a query stream,
and an update stream, modeling the situations the paper's introduction
describes. Each scenario is a recipe the CLI (``repro-bench workload``)
and the benchmarks can run against any method:

* ``dashboard`` — read-heavy hotspot queries over a clustered cube with a
  trickle of appends (the "managers demand near-current information"
  situation).
* ``nightly_etl`` — a large batch of appends followed by a full query
  sweep (the daily-load situation the update-cost analysis targets).
* ``audit`` — uniformly random deep-drill queries, no updates (the
  static case where plain prefix sums already excel).
* ``ticker`` — update-dominated traffic on a few hot cells with
  occasional wide queries (stress on cascade costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.errors import WorkloadError
from repro.workloads import datagen, querygen, updategen


@dataclass(frozen=True)
class Scenario:
    """A named workload recipe.

    Attributes:
        name: scenario identifier.
        description: one-line summary shown by the CLI.
        make_cube: builds the synthetic cube for a given shape/seed.
        make_queries: builds the query stream.
        make_updates: builds the update stream.
        interleave: whether queries and updates alternate (True) or all
            updates run first (False — the nightly-ETL shape).
    """

    name: str
    description: str
    make_cube: Callable
    make_queries: Callable
    make_updates: Callable
    interleave: bool = True


def _dashboard_cube(shape, seed):
    return datagen.clustered_cube(shape, clusters=5, seed=seed)


def _dashboard_queries(shape, operations, seed):
    return list(
        querygen.hotspot_ranges(
            shape, operations, hotspot_fraction=0.25,
            hot_probability=0.85, seed=seed,
        )
    )


def _dashboard_updates(shape, operations, seed):
    return list(
        updategen.append_updates(
            shape, max(1, operations // 4), recent_fraction=0.05, seed=seed
        )
    )


def _etl_cube(shape, seed):
    return datagen.zipf_cube(shape, exponent=1.4, seed=seed)


def _etl_queries(shape, operations, seed):
    return list(
        querygen.fixed_extent_ranges(shape, 0.5, operations, seed=seed)
    )


def _etl_updates(shape, operations, seed):
    return list(
        updategen.random_updates(shape, operations * 4, seed=seed)
    )


def _audit_cube(shape, seed):
    return datagen.uniform_cube(shape, seed=seed)


def _audit_queries(shape, operations, seed):
    return list(querygen.random_ranges(shape, operations, seed=seed))


def _audit_updates(shape, operations, seed):
    return []


def _ticker_cube(shape, seed):
    return datagen.sparse_cube(shape, density=0.1, seed=seed)


def _ticker_queries(shape, operations, seed):
    return list(
        querygen.fixed_extent_ranges(
            shape, 0.9, max(1, operations // 8), seed=seed
        )
    )


def _ticker_updates(shape, operations, seed):
    return list(
        updategen.skewed_updates(
            shape, operations, hot_cells=16, hot_probability=0.95, seed=seed
        )
    )


SCENARIOS: Dict[str, Scenario] = {
    "dashboard": Scenario(
        "dashboard",
        "hotspot reads over clustered data with an append trickle",
        _dashboard_cube, _dashboard_queries, _dashboard_updates,
    ),
    "nightly_etl": Scenario(
        "nightly_etl",
        "bulk update load followed by a broad query sweep",
        _etl_cube, _etl_queries, _etl_updates, interleave=False,
    ),
    "audit": Scenario(
        "audit",
        "uniformly random read-only drill-downs (static data)",
        _audit_cube, _audit_queries, _audit_updates,
    ),
    "ticker": Scenario(
        "ticker",
        "update-dominated hot-cell traffic with rare wide reads",
        _ticker_cube, _ticker_queries, _ticker_updates,
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


def run_scenario(
    name: str,
    method_cls,
    shape: Sequence[int] = (128, 128),
    operations: int = 100,
    seed: int = 0,
    verify: bool = True,
):
    """Run one scenario against one method class.

    Returns the :class:`~repro.workloads.runner.WorkloadResult`; with
    ``verify=True`` every query is checked against an oracle (mismatches
    land in ``result.mismatches`` and should always be zero).
    """
    from repro.workloads.runner import WorkloadRunner

    scenario = get_scenario(name)
    shape = tuple(int(n) for n in shape)
    cube = scenario.make_cube(shape, seed)
    method = method_cls(cube)
    runner = WorkloadRunner(method, oracle=cube.copy() if verify else None)
    return runner.run(
        queries=scenario.make_queries(shape, operations, seed),
        updates=scenario.make_updates(shape, operations, seed),
        interleave=scenario.interleave,
    )

"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``AttributeError`` and friends) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionError(ReproError):
    """A coordinate, range, or shape does not match the cube's dimensions."""


class RangeError(ReproError):
    """A query range is malformed (out of bounds, inverted, wrong arity)."""


class BoxSizeError(ReproError):
    """An overlay box size is invalid for the given cube shape."""


class SchemaError(ReproError):
    """A cube schema is inconsistent or a record does not fit the schema."""


class EncodingError(ReproError):
    """A dimension value cannot be encoded to (or decoded from) an index."""


class StorageError(ReproError):
    """A simulated storage operation failed (bad page id, pool exhausted...)."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""

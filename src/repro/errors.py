"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``AttributeError`` and friends) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionError(ReproError):
    """A coordinate, range, or shape does not match the cube's dimensions."""


class RangeError(ReproError):
    """A query range is malformed (out of bounds, inverted, wrong arity)."""


class BoxSizeError(ReproError):
    """An overlay box size is invalid for the given cube shape."""


class SchemaError(ReproError):
    """A cube schema is inconsistent or a record does not fit the schema."""


class EncodingError(ReproError):
    """A dimension value cannot be encoded to (or decoded from) an index."""


class StorageError(ReproError):
    """A simulated storage operation failed (bad page id, pool exhausted...)."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class WALError(StorageError):
    """A write-ahead-log operation failed (bad sequence, failed log...)."""


class WALCorruptionError(WALError):
    """A WAL segment holds corrupt records *before* its tail.

    A torn tail — a partial final record after a crash — is expected and
    silently truncated; corruption in the committed body of the log is
    not, and replay refuses to guess past it.
    """


class RecoveryError(StorageError):
    """Crash recovery cannot restore a usable state from a durability
    directory (no valid checkpoint, conflicting sequences...)."""


class ServiceOverloadedError(ReproError):
    """The service's bounded submission queue stayed full past the
    caller's timeout; back off and retry (see :mod:`repro.serve.retry`)."""


class DeadlineExceededError(ReproError):
    """The caller's time budget (:class:`repro.deadline.Deadline`) ran
    out before the operation completed."""


class NetError(ReproError):
    """Base class for errors raised by the :mod:`repro.net` serving tier."""


class ProtocolError(NetError):
    """A wire frame or request is malformed (bad length prefix, invalid
    JSON, unknown operation, missing parameters...)."""


class PayloadTooLargeError(ProtocolError):
    """A frame exceeds the connection's negotiated size limit."""


class AuthError(NetError):
    """A request carried a missing or unknown tenant token."""


class QuotaExceededError(NetError):
    """The tenant's quota bucket is empty; retry after ``retry_after_s``
    seconds (token-bucket refill, see :mod:`repro.net.auth`)."""

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class RemoteError(NetError):
    """The server failed internally while handling a request; the
    original error class did not survive the wire, only its message."""


class ClusterError(ReproError):
    """Base class for errors raised by the :mod:`repro.cluster` layer."""


class ClusterUnavailableError(ClusterError):
    """A query or write could not reach every shard it needs.

    Failure handling in the cluster is exact, never approximate: rather
    than returning a partial sum (or silently dropping a shard's
    updates), the call fails. ``acked`` carries the per-shard sequence
    numbers of any sub-groups that *were* acknowledged before the
    failure, so a writer can reconcile a partially routed group.
    """

    def __init__(self, message: str, acked=None):
        super().__init__(message)
        self.acked = dict(acked or {})


class NodeUnavailableError(ClusterError):
    """A single serving node could not be reached (dead, partitioned,
    or circuit-broken); the caller should try another replica."""


class ReshardError(ClusterError):
    """A live reshard migration failed.

    ``phase`` names the migration phase that failed and ``rolled_back``
    whether the cluster was restored to its prior epoch (always true
    for pre-flip failures; a post-flip verify failure rolls back unless
    the reverse dual-write mirror had already been lost).
    """

    def __init__(self, message: str, *, phase: str = "?",
                 rolled_back: bool = False):
        super().__init__(message)
        self.phase = str(phase)
        self.rolled_back = bool(rolled_back)


class IngestError(ReproError):
    """Base class for errors raised by the :mod:`repro.ingest` layer."""


class FenceError(IngestError):
    """An ingest resume could not decide whether an in-flight group
    committed.

    Raised when the durable checkpoint's fence no longer matches the
    target — e.g. the shard-map epoch changed underneath a partially
    acked cross-shard group — so neither skipping nor resubmitting the
    group can be proven safe. Exactly-once beats availability here: the
    pipeline stops instead of guessing.
    """


class DeadLetterCorruptionError(StorageError):
    """A dead-letter file failed its per-entry CRC away from the tail.

    A torn final entry is the expected image of a crash mid-append and
    is repaired silently; a bad checksum anywhere *else* means the file
    was damaged after the fact, and the quarantine record can no longer
    be trusted.
    """

"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``AttributeError`` and friends) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionError(ReproError):
    """A coordinate, range, or shape does not match the cube's dimensions."""


class RangeError(ReproError):
    """A query range is malformed (out of bounds, inverted, wrong arity)."""


class BoxSizeError(ReproError):
    """An overlay box size is invalid for the given cube shape."""


class SchemaError(ReproError):
    """A cube schema is inconsistent or a record does not fit the schema."""


class EncodingError(ReproError):
    """A dimension value cannot be encoded to (or decoded from) an index."""


class StorageError(ReproError):
    """A simulated storage operation failed (bad page id, pool exhausted...)."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class WALError(StorageError):
    """A write-ahead-log operation failed (bad sequence, failed log...)."""


class WALCorruptionError(WALError):
    """A WAL segment holds corrupt records *before* its tail.

    A torn tail — a partial final record after a crash — is expected and
    silently truncated; corruption in the committed body of the log is
    not, and replay refuses to guess past it.
    """


class RecoveryError(StorageError):
    """Crash recovery cannot restore a usable state from a durability
    directory (no valid checkpoint, conflicting sequences...)."""


class ServiceOverloadedError(ReproError):
    """The service's bounded submission queue stayed full past the
    caller's timeout; back off and retry (see :mod:`repro.serve.retry`)."""

"""Public API surface tests (repro top-level package)."""

import numpy as np

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy_reachable(self):
        from repro.errors import (
            BoxSizeError,
            DimensionError,
            EncodingError,
            RangeError,
            SchemaError,
            StorageError,
            WorkloadError,
        )

        for exc in (
            BoxSizeError, DimensionError, EncodingError, RangeError,
            SchemaError, StorageError, WorkloadError,
        ):
            assert issubclass(exc, repro.ReproError)


class TestQuickstartSnippet:
    def test_readme_quickstart_works(self):
        """The exact usage pattern documented in the package docstring."""
        cube = repro.RelativePrefixSumCube(
            np.random.default_rng(0).integers(0, 100, (365, 50))
        )
        total = cube.range_sum((0, 12), (89, 37))
        assert total > 0
        before = cube.cell_value((120, 40))
        cube.apply_delta((120, 40), 250)
        assert cube.cell_value((120, 40)) == before + 250

    def test_engine_quickstart(self):
        schema = repro.CubeSchema(
            [
                repro.Dimension("age", repro.IntegerEncoder(20, 69)),
                repro.Dimension("day", repro.DateEncoder("2026-01-01", 90)),
            ],
            measure="sales",
        )
        engine = repro.DataCubeEngine(schema)
        engine.ingest({"age": 37, "day": "2026-01-15", "sales": 250.0})
        assert engine.sum({"age": (37, 52)}) == 250.0

"""Differential tests: batched query kernels vs the looped path.

The vectorized ``prefix_sum_many`` / ``range_sum_many`` kernels must be
bit-identical to looping the scalar calls — in results *and* in the
logical cell costs charged to the counter, per structure — across
dimensions 1..4 and non-square shapes. Randomized with fixed seeds.
"""

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core import indexing
from repro.core.rps import RelativePrefixSumCube
from repro.errors import DimensionError, RangeError

METHODS = [NaiveCube, PrefixSumCube, FenwickCube, RelativePrefixSumCube]

SHAPES = [
    (23,),          # d=1
    (17, 6),        # d=2, non-square
    (9, 14, 5),     # d=3, non-square
    (5, 3, 6, 4),   # d=4, non-square
]


def _random_batch(rng, shape, count):
    lows = np.empty((count, len(shape)), dtype=np.intp)
    highs = np.empty((count, len(shape)), dtype=np.intp)
    for q in range(count):
        for axis, n in enumerate(shape):
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            lows[q, axis] = a
            highs[q, axis] = b
    return lows, highs


def _structure_charges(counter):
    return {
        name: (bucket.get("read", 0), bucket.get("written", 0))
        for name, bucket in counter.by_structure.items()
        if bucket.get("read", 0) or bucket.get("written", 0)
    }


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"d{len(s)}")
@pytest.mark.parametrize("method_cls", METHODS, ids=lambda c: c.name)
@pytest.mark.parametrize("seed", [0, 7])
def test_range_sum_many_matches_looped_exactly(method_cls, shape, seed):
    rng = np.random.default_rng(seed)
    array = rng.integers(-30, 30, size=shape)
    looped = method_cls(array)
    batched = method_cls(array)
    lows, highs = _random_batch(rng, shape, 40)

    loop_before = looped.counter.snapshot()
    expected = np.array(
        [looped.range_sum(tuple(lo), tuple(hi))
         for lo, hi in zip(lows, highs)]
    )
    loop_cost = loop_before.delta(looped.counter)

    batch_before = batched.counter.snapshot()
    got = batched.range_sum_many(lows, highs)
    batch_cost = batch_before.delta(batched.counter)

    # int cubes: the kernels must be exactly equal, not merely close
    assert np.array_equal(expected, got)
    assert loop_cost.cells_read == batch_cost.cells_read
    assert loop_cost.cells_written == batch_cost.cells_written
    assert _structure_charges(looped.counter) == _structure_charges(
        batched.counter
    )


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"d{len(s)}")
@pytest.mark.parametrize("method_cls", METHODS, ids=lambda c: c.name)
def test_prefix_sum_many_matches_looped_exactly(method_cls, shape):
    rng = np.random.default_rng(11)
    array = rng.integers(-30, 30, size=shape)
    looped = method_cls(array)
    batched = method_cls(array)
    targets = np.stack(
        [rng.integers(0, n, size=60) for n in shape], axis=1
    ).astype(np.intp)

    loop_before = looped.counter.snapshot()
    expected = np.array([looped.prefix_sum(tuple(t)) for t in targets])
    loop_cost = loop_before.delta(looped.counter)

    batch_before = batched.counter.snapshot()
    got = batched.prefix_sum_many(targets)
    batch_cost = batch_before.delta(batched.counter)

    assert np.array_equal(expected, got)
    assert loop_cost.cells_read == batch_cost.cells_read
    assert _structure_charges(looped.counter) == _structure_charges(
        batched.counter
    )


@pytest.mark.parametrize("method_cls", METHODS, ids=lambda c: c.name)
def test_batched_queries_track_interleaved_updates(method_cls):
    """Query batches interleaved with updates never serve stale answers
    (exercises the naive method's prefix-cache invalidation)."""
    rng = np.random.default_rng(23)
    shape = (11, 8)
    array = rng.integers(0, 40, size=shape)
    method = method_cls(array)
    oracle = array.copy()
    lows, highs = _random_batch(rng, shape, 12)
    for _ in range(6):
        got = method.range_sum_many(lows, highs)
        expected = np.array(
            [oracle[tuple(slice(l, h + 1) for l, h in zip(lo, hi))].sum()
             for lo, hi in zip(lows, highs)]
        )
        assert np.array_equal(expected, got)
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        delta = int(rng.integers(-9, 10)) or 2
        method.apply_delta(cell, delta)
        oracle[cell] += delta
    # and through the batch-update path too
    batch = []
    for _ in range(5):
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        delta = int(rng.integers(-5, 6))
        batch.append((cell, delta))
        oracle[cell] += delta
    method.apply_batch(batch)
    got = method.range_sum_many(lows, highs)
    expected = np.array(
        [oracle[tuple(slice(l, h + 1) for l, h in zip(lo, hi))].sum()
         for lo, hi in zip(lows, highs)]
    )
    assert np.array_equal(expected, got)


@pytest.mark.parametrize("method_cls", METHODS, ids=lambda c: c.name)
def test_rps_box_sweep_batches(method_cls):
    """Batched kernels agree with the loop across awkward RPS box sizes
    (other methods run once; the parametrization keeps ids uniform)."""
    rng = np.random.default_rng(3)
    shape = (10, 7)
    array = rng.integers(-10, 10, size=shape)
    lows, highs = _random_batch(rng, shape, 20)
    box_sizes = (1, 2, 3, 5, 50) if method_cls is RelativePrefixSumCube else (None,)
    for box in box_sizes:
        kwargs = {} if box is None else {"box_size": box}
        looped = method_cls(array, **kwargs)
        batched = method_cls(array, **kwargs)
        expected = np.array(
            [looped.range_sum(tuple(lo), tuple(hi))
             for lo, hi in zip(lows, highs)]
        )
        got = batched.range_sum_many(lows, highs)
        assert np.array_equal(expected, got), f"box_size={box}"


class TestBatchValidation:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            indexing.normalize_index_batch([[1, 2, 3]], (9, 9))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(RangeError):
            indexing.normalize_index_batch([[0, 9]], (9, 9))
        with pytest.raises(RangeError):
            indexing.normalize_index_batch([[-1, 0]], (9, 9))

    def test_inverted_range_rejected(self):
        with pytest.raises(RangeError):
            indexing.normalize_range_batch([[3, 3]], [[2, 5]], (9, 9))

    def test_batch_length_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            indexing.normalize_range_batch(
                [[0, 0], [1, 1]], [[2, 2]], (9, 9)
            )

    def test_non_integer_batch_rejected(self):
        with pytest.raises(TypeError):
            indexing.normalize_index_batch([[0.5, 1.0]], (9, 9))

    def test_flat_vector_accepted_for_1d(self):
        cube = PrefixSumCube(np.arange(10))
        got = cube.prefix_sum_many(np.array([0, 4, 9]))
        assert np.array_equal(got, np.array([0, 10, 45]))

    def test_empty_batch_returns_empty(self):
        cube = RelativePrefixSumCube(np.arange(16).reshape(4, 4))
        empty = np.empty((0, 2), dtype=np.intp)
        assert cube.prefix_sum_many(empty).shape == (0,)
        assert cube.range_sum_many(empty, empty).shape == (0,)

    def test_misshaped_empty_batch_rejected(self):
        """Empty batches are arity-checked too: a (0, 3) batch against a
        2-d cube used to pass silently through the empty early-out."""
        cube = RelativePrefixSumCube(np.arange(16).reshape(4, 4))
        bad = np.empty((0, 3), dtype=np.intp)
        with pytest.raises(DimensionError):
            cube.prefix_sum_many(bad)
        with pytest.raises(DimensionError):
            cube.range_sum_many(bad, bad)

    def test_flat_empty_batch_still_legal(self):
        cube = RelativePrefixSumCube(np.arange(16).reshape(4, 4))
        assert cube.prefix_sum_many([]).shape == (0,)
        assert cube.prefix_sum_many(np.empty(0, dtype=np.intp)).shape == (0,)

"""Unit tests for the naive method (repro.baselines.naive)."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.errors import RangeError
from tests.conftest import brute_range_sum, random_range


class TestQueries:
    def test_range_sum_matches_oracle(self, rng):
        a = rng.integers(0, 30, size=(15, 15))
        cube = NaiveCube(a)
        for _ in range(50):
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_query_cost_is_range_volume(self, paper_cube):
        cube = NaiveCube(paper_cube)
        before = cube.counter.snapshot()
        cube.range_sum((1, 2), (3, 5))
        assert before.delta(cube.counter).cells_read == 3 * 4

    def test_full_cube_query_reads_everything(self, paper_cube):
        cube = NaiveCube(paper_cube)
        before = cube.counter.snapshot()
        cube.range_sum((0, 0), (8, 8))
        assert before.delta(cube.counter).cells_read == 81

    def test_prefix_sum(self, paper_cube):
        cube = NaiveCube(paper_cube)
        assert cube.prefix_sum((7, 5)) == 168

    def test_cell_value_single_read(self, paper_cube):
        cube = NaiveCube(paper_cube)
        before = cube.counter.snapshot()
        assert cube.cell_value((4, 4)) == paper_cube[4, 4]
        assert before.delta(cube.counter).cells_read == 1


class TestUpdates:
    def test_update_cost_is_one(self, paper_cube):
        cube = NaiveCube(paper_cube)
        before = cube.counter.snapshot()
        cube.apply_delta((0, 0), 5)
        assert before.delta(cube.counter).cells_written == 1

    def test_update_visible_in_queries(self, paper_cube):
        cube = NaiveCube(paper_cube)
        total = cube.total()
        cube.apply_delta((4, 4), 10)
        assert cube.total() == total + 10

    def test_set_semantics(self, paper_cube):
        cube = NaiveCube(paper_cube)
        cube.update((1, 1), 4)
        assert cube.cell_value((1, 1)) == 4


class TestMisc:
    def test_source_array_not_aliased(self, paper_cube):
        cube = NaiveCube(paper_cube)
        paper_cube[0, 0] = 999
        assert cube.cell_value((0, 0)) != 999

    def test_to_array(self, rng):
        a = rng.integers(0, 9, size=(5, 5))
        assert np.array_equal(NaiveCube(a).to_array(), a)

    def test_storage(self, paper_cube):
        assert NaiveCube(paper_cube).storage_cells() == 81

    def test_invalid_range(self, paper_cube):
        with pytest.raises(RangeError):
            NaiveCube(paper_cube).range_sum((0, 5), (8, 4))

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            NaiveCube(np.array([["a", "b"]]))

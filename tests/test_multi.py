"""Unit tests for multi-measure engines (repro.cube.multi)."""

import math

import pytest

from repro.baselines.prefix import PrefixSumCube
from repro.cube.encoders import DateEncoder, IntegerEncoder
from repro.cube.multi import MultiMeasureEngine
from repro.cube.schema import Dimension
from repro.errors import SchemaError


@pytest.fixture
def dims():
    return [
        Dimension("age", IntegerEncoder(18, 60)),
        Dimension("day", DateEncoder("2026-01-01", 60)),
    ]


@pytest.fixture
def engine(dims):
    records = [
        {"age": 25, "day": "2026-01-05", "sales": 100.0, "cost": 60.0},
        {"age": 25, "day": "2026-01-20", "sales": 50.0, "cost": 20.0},
        {"age": 45, "day": "2026-02-10", "sales": 200.0, "cost": 150.0},
    ]
    return MultiMeasureEngine(dims, ["sales", "cost"], records)


class TestConstruction:
    def test_requires_measures(self, dims):
        with pytest.raises(SchemaError):
            MultiMeasureEngine(dims, [])

    def test_duplicate_measures_rejected(self, dims):
        with pytest.raises(SchemaError):
            MultiMeasureEngine(dims, ["sales", "sales"])

    def test_unknown_measure_lookup(self, engine):
        with pytest.raises(SchemaError):
            engine.sum("discount")

    def test_method_override(self, dims):
        engine = MultiMeasureEngine(
            dims, ["sales"], method=PrefixSumCube
        )
        assert isinstance(engine.engine("sales").backend, PrefixSumCube)

    def test_records_must_carry_all_measures(self, dims):
        with pytest.raises(SchemaError):
            MultiMeasureEngine(
                dims, ["sales", "cost"],
                [{"age": 25, "day": "2026-01-05", "sales": 1.0}],
            )


class TestQueries:
    def test_per_measure_sums(self, engine):
        assert engine.sum("sales") == pytest.approx(350.0)
        assert engine.sum("cost") == pytest.approx(230.0)

    def test_selection_applies_to_all(self, engine):
        selection = {"age": (18, 30)}
        assert engine.sum("sales", selection) == pytest.approx(150.0)
        assert engine.sum("cost", selection) == pytest.approx(80.0)

    def test_count_shared(self, engine):
        assert engine.count() == 3
        assert engine.count({"age": (40, 60)}) == 1

    def test_average(self, engine):
        assert engine.average("sales", {"age": (18, 30)}) == pytest.approx(
            75.0
        )

    def test_totals(self, engine):
        totals = engine.totals({"age": (18, 30)})
        assert totals == {
            "sales": pytest.approx(150.0), "cost": pytest.approx(80.0)
        }


class TestDerivedMeasures:
    def test_ratio_margin(self, engine):
        # cost / sales over everything: 230 / 350
        assert engine.ratio("cost", "sales") == pytest.approx(230 / 350)

    def test_difference_profit(self, engine):
        assert engine.difference("sales", "cost") == pytest.approx(120.0)

    def test_ratio_of_empty_denominator_nan(self, dims):
        engine = MultiMeasureEngine(dims, ["sales", "cost"])
        assert math.isnan(engine.ratio("sales", "cost"))

    def test_profit_by_selection(self, engine):
        profit_young = engine.difference(
            "sales", "cost", {"age": (18, 30)}
        )
        assert profit_young == pytest.approx(70.0)


class TestIngest:
    def test_ingest_updates_every_measure(self, engine):
        engine.ingest(
            {"age": 30, "day": "2026-02-01", "sales": 10.0, "cost": 4.0}
        )
        assert engine.sum("sales") == pytest.approx(360.0)
        assert engine.sum("cost") == pytest.approx(234.0)
        assert engine.count() == 4

    def test_ingest_many(self, dims):
        engine = MultiMeasureEngine(dims, ["sales", "cost"])
        n = engine.ingest_many(
            {"age": 20 + i, "day": "2026-01-01",
             "sales": 1.0, "cost": 0.5}
            for i in range(5)
        )
        assert n == 5
        assert engine.difference("sales", "cost") == pytest.approx(2.5)

    def test_repr(self, engine):
        assert "sales" in repr(engine) and "cost" in repr(engine)

"""Backoff policy and the retry loop around overloaded submits."""

import pytest

from repro.errors import ServiceOverloadedError
from repro.serve.retry import ExponentialBackoff, call_with_retries


class TestExponentialBackoff:
    def test_undithered_envelope_doubles_then_caps(self):
        backoff = ExponentialBackoff(0.1, 2.0, 0.35, jitter=0.0, seed=0)
        delays = [next(backoff) for _ in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.35, 0.35])

    def test_jitter_stays_inside_the_band(self):
        backoff = ExponentialBackoff(0.1, 2.0, 10.0, jitter=0.5, seed=1)
        for i, delay in zip(range(6), backoff):
            ceiling = min(0.1 * 2.0**i, 10.0)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_deterministic_under_seed(self):
        first = ExponentialBackoff(seed=42)
        second = ExponentialBackoff(seed=42)
        assert [next(first) for _ in range(5)] == [
            next(second) for _ in range(5)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base_delay=-1)
        with pytest.raises(ValueError):
            ExponentialBackoff(multiplier=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.5)


class TestCallWithRetries:
    def test_succeeds_after_transient_overload(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceOverloadedError("full")
            return "done"

        result = call_with_retries(
            flaky, attempts=5, seed=0, sleep=sleeps.append
        )
        assert result == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2  # slept before each retry, not after success
        assert all(s >= 0 for s in sleeps)

    def test_final_failure_reraised_unchanged(self):
        error = ServiceOverloadedError("still full")

        def always():
            raise error

        with pytest.raises(ServiceOverloadedError) as exc_info:
            call_with_retries(always, attempts=3, seed=0, sleep=lambda s: None)
        assert exc_info.value is error

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("not an overload")

        with pytest.raises(KeyError):
            call_with_retries(broken, attempts=5, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_on_retry_observer_sees_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise ServiceOverloadedError("full")
            return 1

        call_with_retries(
            flaky,
            attempts=5,
            seed=0,
            sleep=lambda s: None,
            on_retry=lambda n, err, delay: seen.append((n, type(err), delay)),
        )
        assert [n for n, _, _ in seen] == [1, 2]
        assert all(t is ServiceOverloadedError for _, t, _ in seen)

    def test_attempts_validation(self):
        with pytest.raises(ValueError):
            call_with_retries(lambda: 1, attempts=0)


class TestRetryDeadlines:
    def _clocked(self, budget):
        """A Deadline on a fake clock plus a sleep that advances it."""
        from repro.deadline import Deadline

        state = {"now": 0.0}
        deadline = Deadline.after(budget, clock=lambda: state["now"])

        def sleep(seconds):
            state["now"] += seconds

        return deadline, state, sleep

    def test_expired_deadline_stops_retrying_early(self):
        deadline, state, sleep = self._clocked(budget=0.05)
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            state["now"] += 0.06  # each attempt overruns the budget
            raise ServiceOverloadedError("full")

        with pytest.raises(ServiceOverloadedError):
            call_with_retries(
                always,
                attempts=10,
                seed=0,
                sleep=sleep,
                deadline=deadline,
            )
        # budget died after attempt #1; attempts 2..10 never ran
        assert calls["n"] == 1

    def test_sleeps_are_clamped_to_remaining_budget(self):
        deadline, state, sleep = self._clocked(budget=0.5)
        sleeps = []

        def always():
            raise ServiceOverloadedError("full")

        with pytest.raises(ServiceOverloadedError):
            call_with_retries(
                always,
                attempts=20,
                base_delay=0.2,
                max_delay=5.0,
                jitter=0.0,
                seed=0,
                sleep=lambda s: (sleeps.append(s), sleep(s)),
                deadline=deadline,
            )
        # backoff wanted 0.2 then 0.4; the second sleep is clamped to
        # the 0.3 left in the budget, and retrying then stops
        assert sleeps == pytest.approx([0.2, 0.3])
        assert sum(sleeps) <= 0.5 + 1e-9

    def test_generous_deadline_changes_nothing(self):
        deadline, _, sleep = self._clocked(budget=1000.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceOverloadedError("full")
            return "done"

        assert (
            call_with_retries(
                flaky, attempts=5, seed=0, sleep=sleep, deadline=deadline
            )
            == "done"
        )
        assert calls["n"] == 3

    def test_no_deadline_means_unbounded_retries(self):
        sleeps = []

        def flaky():
            if len(sleeps) < 4:
                raise ServiceOverloadedError("full")
            return 1

        assert (
            call_with_retries(
                flaky, attempts=6, seed=0, sleep=sleeps.append
            )
            == 1
        )
        assert len(sleeps) == 4

"""Backoff policy and the retry loop around overloaded submits."""

import pytest

from repro.errors import ServiceOverloadedError
from repro.serve.retry import ExponentialBackoff, call_with_retries


class TestExponentialBackoff:
    def test_undithered_envelope_doubles_then_caps(self):
        backoff = ExponentialBackoff(0.1, 2.0, 0.35, jitter=0.0, seed=0)
        delays = [next(backoff) for _ in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.35, 0.35])

    def test_jitter_stays_inside_the_band(self):
        backoff = ExponentialBackoff(0.1, 2.0, 10.0, jitter=0.5, seed=1)
        for i, delay in zip(range(6), backoff):
            ceiling = min(0.1 * 2.0**i, 10.0)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_deterministic_under_seed(self):
        first = ExponentialBackoff(seed=42)
        second = ExponentialBackoff(seed=42)
        assert [next(first) for _ in range(5)] == [
            next(second) for _ in range(5)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base_delay=-1)
        with pytest.raises(ValueError):
            ExponentialBackoff(multiplier=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.5)


class TestCallWithRetries:
    def test_succeeds_after_transient_overload(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceOverloadedError("full")
            return "done"

        result = call_with_retries(
            flaky, attempts=5, seed=0, sleep=sleeps.append
        )
        assert result == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2  # slept before each retry, not after success
        assert all(s >= 0 for s in sleeps)

    def test_final_failure_reraised_unchanged(self):
        error = ServiceOverloadedError("still full")

        def always():
            raise error

        with pytest.raises(ServiceOverloadedError) as exc_info:
            call_with_retries(always, attempts=3, seed=0, sleep=lambda s: None)
        assert exc_info.value is error

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("not an overload")

        with pytest.raises(KeyError):
            call_with_retries(broken, attempts=5, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_on_retry_observer_sees_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise ServiceOverloadedError("full")
            return 1

        call_with_retries(
            flaky,
            attempts=5,
            seed=0,
            sleep=lambda s: None,
            on_retry=lambda n, err, delay: seen.append((n, type(err), delay)),
        )
        assert [n for n, _, _ in seen] == [1, 2]
        assert all(t is ServiceOverloadedError for _, t, _ in seen)

    def test_attempts_validation(self):
        with pytest.raises(ValueError):
            call_with_retries(lambda: 1, attempts=0)

"""Unit tests for blocked cumulative sums (repro.core.blocked)."""

import numpy as np
import pytest

from repro.core.blocked import blocked_cumsum, blocked_prefix_all_axes


def brute_blocked_cumsum(array, axis, block):
    """Oracle: per-block cumsum built block by block."""
    out = np.empty_like(array)
    n = array.shape[axis]
    for start in range(0, n, block):
        stop = min(start + block, n)
        src = [slice(None)] * array.ndim
        src[axis] = slice(start, stop)
        out[tuple(src)] = np.cumsum(array[tuple(src)], axis=axis)
    return out


class TestBlockedCumsum:
    def test_block_one_is_identity(self, rng):
        a = rng.integers(0, 10, size=(6, 6))
        assert np.array_equal(blocked_cumsum(a, 0, 1), a)

    def test_block_covering_axis_is_plain_cumsum(self, rng):
        a = rng.integers(0, 10, size=(6, 6))
        assert np.array_equal(blocked_cumsum(a, 1, 6), np.cumsum(a, axis=1))

    def test_block_larger_than_axis(self, rng):
        a = rng.integers(0, 10, size=(4,))
        assert np.array_equal(blocked_cumsum(a, 0, 99), np.cumsum(a))

    @pytest.mark.parametrize("shape,axis,block", [
        ((9,), 0, 3),
        ((9, 9), 0, 3),
        ((9, 9), 1, 3),
        ((10, 7), 0, 3),       # partial final block
        ((10, 7), 1, 4),
        ((5, 6, 7), 2, 2),
        ((5, 6, 7), 1, 5),
    ])
    def test_matches_bruteforce(self, rng, shape, axis, block):
        a = rng.integers(-5, 10, size=shape)
        got = blocked_cumsum(a, axis, block)
        assert np.array_equal(got, brute_blocked_cumsum(a, axis, block))

    def test_restarts_exactly_at_block_boundary(self):
        a = np.ones(9, dtype=np.int64)
        out = blocked_cumsum(a, 0, 3)
        assert out.tolist() == [1, 2, 3, 1, 2, 3, 1, 2, 3]

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError):
            blocked_cumsum(np.ones(4), 0, 0)

    def test_input_not_mutated(self, rng):
        a = rng.integers(0, 10, size=(6, 6))
        original = a.copy()
        blocked_cumsum(a, 0, 2)
        assert np.array_equal(a, original)

    def test_float_dtype_preserved(self, rng):
        a = rng.random((6, 6))
        out = blocked_cumsum(a, 0, 3)
        assert out.dtype == a.dtype


class TestBlockedPrefixAllAxes:
    def test_reproduces_paper_rp(self):
        from repro import paper

        got = blocked_prefix_all_axes(paper.ARRAY_A, paper.BOX_SIZE)
        assert np.array_equal(got, paper.ARRAY_RP)

    def test_matches_per_box_definition(self, rng):
        a = rng.integers(0, 10, size=(7, 8))
        k = 3
        out = blocked_prefix_all_axes(a, k)
        for i in range(7):
            for j in range(8):
                ai, aj = (i // k) * k, (j // k) * k
                assert out[i, j] == a[ai : i + 1, aj : j + 1].sum()

    def test_3d(self, rng):
        a = rng.integers(0, 10, size=(5, 6, 4))
        k = 2
        out = blocked_prefix_all_axes(a, k)
        for idx in np.ndindex(*a.shape):
            anchor = tuple((x // k) * k for x in idx)
            region = tuple(slice(a_, x + 1) for a_, x in zip(anchor, idx))
            assert out[idx] == a[region].sum()

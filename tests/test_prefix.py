"""Unit tests for the prefix sum method (repro.baselines.prefix)."""

import numpy as np
import pytest

from repro import paper
from repro.baselines.prefix import PrefixSumCube, build_prefix_array
from tests.conftest import brute_range_sum, random_range


class TestBuildPrefixArray:
    def test_paper_figure_2(self, paper_cube):
        assert np.array_equal(build_prefix_array(paper_cube), paper.ARRAY_P)

    def test_definition_3d(self, rng):
        a = rng.integers(0, 10, size=(4, 5, 6))
        p = build_prefix_array(a)
        for idx in np.ndindex(*a.shape):
            region = tuple(slice(0, i + 1) for i in idx)
            assert p[idx] == a[region].sum()

    def test_last_cell_is_total(self, paper_cube):
        p = build_prefix_array(paper_cube)
        assert p[8, 8] == paper_cube.sum() == 290


class TestQueries:
    def test_figure_2_spot_values(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        # P[4,0] = 19 and P[2,1] = 24, the paper's two worked lookups.
        assert cube.prefix_sum((4, 0)) == 19
        assert cube.prefix_sum((2, 1)) == 24

    def test_query_cost_constant(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        before = cube.counter.snapshot()
        cube.range_sum((2, 2), (6, 6))
        # 2^d = 4 lookups for an interior range
        assert before.delta(cube.counter).cells_read == 4

    def test_edge_range_skips_empty_corners(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        before = cube.counter.snapshot()
        cube.range_sum((0, 0), (4, 4))
        assert before.delta(cube.counter).cells_read == 1

    def test_range_sums_match_oracle(self, rng):
        a = rng.integers(-10, 30, size=(13, 17))
        cube = PrefixSumCube(a)
        for _ in range(60):
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)


class TestUpdates:
    def test_figure_4_cascade(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        before = cube.counter.snapshot()
        cube.update((1, 1), 4)  # 3 -> 4, the figure's example
        assert before.delta(cube.counter).cells_written == 64
        assert np.array_equal(cube.prefix_array(), paper.ARRAY_P_AFTER_UPDATE)

    def test_worst_case_rewrites_everything(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        before = cube.counter.snapshot()
        cube.apply_delta((0, 0), 1)
        assert before.delta(cube.counter).cells_written == 81

    def test_best_case_single_cell(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        before = cube.counter.snapshot()
        cube.apply_delta((8, 8), 1)
        assert before.delta(cube.counter).cells_written == 1

    def test_updates_keep_queries_correct(self, rng):
        a = rng.integers(0, 10, size=(10, 10))
        cube = PrefixSumCube(a)
        a = a.copy()
        for _ in range(30):
            cell = tuple(int(x) for x in rng.integers(0, 10, size=2))
            delta = int(rng.integers(-4, 5))
            a[cell] += delta
            cube.apply_delta(cell, delta)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)


class TestMisc:
    def test_to_array_inverts_prefix(self, rng):
        a = rng.integers(-5, 10, size=(6, 7, 3))
        assert np.array_equal(PrefixSumCube(a).to_array(), a)

    def test_storage(self, paper_cube):
        assert PrefixSumCube(paper_cube).storage_cells() == 81

    def test_prefix_array_is_a_copy(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        cube.prefix_array()[0, 0] = 999
        assert cube.prefix_sum((0, 0)) == 3

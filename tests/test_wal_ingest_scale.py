"""WAL segment rotation and checkpoint cadence at ingest batch sizes.

The streaming pipeline submits groups of thousands of coalesced cells —
an order of magnitude above the interactive write path the WAL's
defaults were tuned on. These tests pin the durability invariants at
that scale: rotation spreads ingest-sized groups across many segments,
recovery replays a committed prefix that spans multiple rotated
segments (not just the live one), and the checkpoint cadence bounds
replay work without ever splitting a group.
"""

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.cube.encoders import IntegerEncoder
from repro.cube.schema import CubeSchema, Dimension
from repro.ingest import IngestPipeline, MemorySource, ServiceTarget
from repro.serve import CubeService, DurabilityPolicy

SIZE = 16


def schema():
    return CubeSchema(
        [
            Dimension("x", IntegerEncoder(0, SIZE - 1)),
            Dimension("y", IntegerEncoder(0, SIZE - 1)),
        ],
        "sales",
    )


def records_of(rng, n):
    return [
        {
            "x": int(rng.integers(0, SIZE)),
            "y": int(rng.integers(0, SIZE)),
            "sales": float(rng.integers(1, 100)),
        }
        for _ in range(n)
    ]


def oracle_of(records):
    cube = np.zeros((SIZE, SIZE))
    for r in records:
        cube[r["x"], r["y"]] += r["sales"]
    return cube


def ingest(records, svc, tmp_path, **kwargs):
    kwargs.setdefault("group_rows", 512)
    kwargs.setdefault("min_group_rows", 512)
    kwargs.setdefault("max_group_rows", 512)
    with IngestPipeline(
        MemorySource(records, chunk_rows=256),
        schema(),
        ServiceTarget(svc),
        checkpoint_path=tmp_path / "ck.json",
        deadletter_path=tmp_path / "dead.log",
        **kwargs,
    ) as pipe:
        return pipe.run()


class TestIngestScaleWAL:
    def test_ingest_groups_rotate_segments(self, tmp_path, rng):
        """Ingest-sized groups must actually exercise rotation: a few
        KB per segment forces a fresh segment every couple of groups."""
        records = records_of(rng, 4000)
        state = tmp_path / "svc"
        with CubeService(
            RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
            durability=DurabilityPolicy(
                # no checkpoints: every rotated segment stays on disk
                # for the assertion (cadence pruning is pinned below)
                dir=state, segment_max_bytes=8192,
                checkpoint_every=10 ** 9,
            ),
        ) as svc:
            ingest(records, svc, tmp_path)
            svc.flush()
            array, _ = svc.snapshot_array()
        assert np.array_equal(array, oracle_of(records))
        segments = sorted(state.glob("wal-*.seg"))
        assert len(segments) > 2, "groups never rotated the WAL"

    def test_recovery_spans_multiple_rotated_segments(self, tmp_path, rng):
        """Power loss with a sparse checkpoint cadence: the committed
        suffix lives across several rotated segments, and recovery must
        stitch them all back together."""
        records = records_of(rng, 4000)
        state = tmp_path / "svc"
        svc = CubeService(
            RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
            durability=DurabilityPolicy(
                # checkpoint far less often than segments rotate, so
                # replay MUST cross segment boundaries
                dir=state, segment_max_bytes=4096, checkpoint_every=64,
            ),
        )
        ingest(records, svc, tmp_path)
        svc.abandon()  # no final checkpoint: recovery replays the WAL

        assert len(sorted(state.glob("wal-*.seg"))) > 3
        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            recovered.flush()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()
        assert np.array_equal(array, oracle_of(records))

    def test_crash_resume_with_tiny_segments(self, tmp_path, rng):
        """The full exactly-once loop with rotation in play: crash the
        coordinator mid-stream, power-lose the service, and resume."""
        from repro.faults import FaultPlan, InjectedFault

        records = records_of(rng, 3000)
        state = tmp_path / "svc"
        policy = dict(dir=state, segment_max_bytes=4096, checkpoint_every=8)
        svc = CubeService(
            RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
            durability=DurabilityPolicy(**policy),
        )
        with pytest.raises(InjectedFault):
            ingest(records, svc, tmp_path,
                   fault_plan=FaultPlan(ingest_crash_at={"submit": 3}))
        svc.abandon()

        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            report = ingest(records, recovered, tmp_path)
            recovered.flush()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()
        assert np.array_equal(array, oracle_of(records))
        assert report["offset"] == len(records)

    def test_checkpoint_cadence_prunes_replay(self, tmp_path, rng):
        """A tight checkpoint cadence keeps recovery's WAL replay
        bounded: with checkpoints every 2 groups the recovered service
        starts from a near-tip image instead of replaying everything."""
        records = records_of(rng, 2000)
        state = tmp_path / "svc"
        svc = CubeService(
            RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
            durability=DurabilityPolicy(
                dir=state, segment_max_bytes=4096, checkpoint_every=2,
            ),
        )
        ingest(records, svc, tmp_path)
        svc.abandon()
        checkpoints = sorted(state.glob("ckpt-*.npz"))
        assert checkpoints, "cadence produced no checkpoints"
        # the newest checkpoint must be close to the tip: fewer groups
        # behind it than one full cadence interval
        newest = int(checkpoints[-1].stem.split("-")[1])
        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            assert recovered.last_submitted_seq - newest <= 2
            recovered.flush()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()
        assert np.array_equal(array, oracle_of(records))

"""Deadline: monotonic budgets threaded through client calls."""

import pytest

from repro.deadline import Deadline
from repro.errors import DeadlineExceededError


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_after_sets_expiry_from_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired

    def test_remaining_decreases_and_floors_at_zero(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_check_raises_once_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("op")  # within budget: no raise
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError, match="op"):
            deadline.check("op")

    def test_bound_clamps_timeouts(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.bound(5.0) == pytest.approx(2.0)
        assert deadline.bound(0.5) == pytest.approx(0.5)
        # None means "the whole remaining budget"
        assert deadline.bound(None) == pytest.approx(2.0)
        clock.advance(3.0)
        assert deadline.bound(1.0) == 0.0

    def test_sub_never_extends_the_parent(self):
        clock = FakeClock()
        parent = Deadline.after(1.0, clock=clock)
        hop = parent.sub(10.0)
        assert hop.remaining() == pytest.approx(1.0)
        tight = parent.sub(0.25)
        assert tight.remaining() == pytest.approx(0.25)
        # the parent is unaffected by its children
        assert parent.remaining() == pytest.approx(1.0)

    def test_zero_budget_is_born_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(0.0, clock=clock)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check("anything")

    def test_real_clock_default(self):
        deadline = Deadline.after(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired

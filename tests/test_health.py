"""Circuit breakers and the probing health monitor."""

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.cluster import BreakerPolicy, CircuitBreaker, CubeCluster
from repro.faults import FaultPlan
from repro.metrics.cluster import ClusterMetrics


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0, metrics=None):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "n0",
            BreakerPolicy(failure_threshold=threshold, cooldown_s=cooldown),
            clock=clock,
            metrics=metrics,
        )
        return breaker, clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the trial call
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_for_another_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # trial failed
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_metrics_record_trips_and_resets(self):
        metrics = ClusterMetrics()
        breaker, clock = self.make(
            threshold=1, cooldown=1.0, metrics=metrics
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.record_success()
        snap = metrics.snapshot()
        assert snap["breaker_trips"] == {"n0": 1}
        assert snap["breaker_resets"] == {"n0": 1}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_s=-1.0)


@pytest.fixture
def small_cluster(tmp_path, rng):
    cube = rng.integers(0, 30, (8, 6)).astype(np.int64)
    plan = FaultPlan(seed=0)
    cluster = CubeCluster(
        RelativePrefixSumCube,
        cube,
        data_dir=tmp_path,
        num_shards=2,
        replication_factor=2,
        fault_plan=plan,
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=60.0),
    )
    yield cluster, plan, cube
    cluster.close()


class TestHealthMonitor:
    def test_tick_probes_every_live_node(self, small_cluster):
        cluster, _plan, _ = small_cluster
        results = cluster.monitor.tick()
        assert set(results) == {"s0.n0", "s0.n1", "s1.n0", "s1.n1"}
        assert all(results.values())
        assert cluster.stats()["metrics"]["probes"] == 4

    def test_tick_order_is_seeded(self, tmp_path, rng):
        cube = rng.integers(0, 9, (6, 4)).astype(np.int64)
        orders = []
        for attempt in range(2):
            cluster = CubeCluster(
                RelativePrefixSumCube,
                cube,
                data_dir=tmp_path / str(attempt),
                num_shards=2,
                replication_factor=2,
                seed=7,
            )
            try:
                orders.append(list(cluster.monitor.tick()))
            finally:
                cluster.close()
        assert orders[0] == orders[1]

    def test_failed_probes_trip_breaker_and_fail_over(self, small_cluster):
        cluster, plan, _ = small_cluster
        plan.kill("s1.n0")
        cluster.monitor.tick()
        assert cluster.breaker("s1.n0").state == CircuitBreaker.CLOSED
        cluster.monitor.tick()  # second consecutive failure: trip + failover
        assert not cluster.breaker("s1.n0").allow()
        stats = cluster.stats()
        assert stats["metrics"]["failovers"] == {1: 1}
        assert stats["nodes"]["s1.n1"]["role"] == "primary"
        assert stats["nodes"]["s1.n0"]["state"] == "dead"

    def test_failover_preserves_acked_groups(self, small_cluster):
        cluster, plan, cube = small_cluster
        oracle = cube.astype(np.float64)
        cluster.submit_batch([((6, 2), 11.0), ((7, 5), -4.0)])
        oracle[6, 2] += 11.0
        oracle[7, 5] += -4.0
        cluster.flush()
        plan.kill("s1.n0")
        for _ in range(2):
            cluster.monitor.tick()
        assert cluster.stats()["metrics"]["failovers"] == {1: 1}
        assert cluster.range_sum((0, 0), (7, 5)) == oracle.sum()

    def test_tick_survives_a_primaryless_shard(self, small_cluster):
        """One shard with no primary must not abort the tick: probes
        still run and the other shards keep their failover checks."""
        cluster, plan, _ = small_cluster
        for node in cluster.replica_sets[0].nodes:
            node.is_primary = False
        results = cluster.monitor.tick()  # must not raise
        assert set(results) == {"s0.n0", "s0.n1", "s1.n0", "s1.n1"}
        # shard 1's failover opportunity is not denied by shard 0
        plan.kill("s1.n0")
        for _ in range(2):
            cluster.monitor.tick()
        assert cluster.stats()["metrics"]["failovers"] == {1: 1}
        assert cluster.node("s1.n1").is_primary

    def test_background_thread_starts_and_stops(self, small_cluster):
        cluster, _plan, _ = small_cluster
        cluster.monitor.start(interval_s=0.01)
        try:
            import time

            deadline = time.monotonic() + 5.0
            while (
                cluster.monitor.ticks == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert cluster.monitor.ticks > 0
        finally:
            cluster.monitor.stop()

"""Unit tests for result rendering (repro.bench.reporting)."""

import numpy as np
import pytest

from repro.bench.reporting import (
    ResultTable,
    render_matrix,
    render_table,
    to_csv,
    write_csv,
)


@pytest.fixture
def table():
    t = ResultTable("E0", "demo table", ["k", "cost"])
    t.add_row(3, 16)
    t.add_row(16, 900.5)
    t.notes.append("a note")
    return t


class TestResultTable:
    def test_add_row_arity_checked(self, table):
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column(self, table):
        assert table.column("k") == [3, 16]
        assert table.column("cost") == [16, 900.5]

    def test_column_unknown(self, table):
        with pytest.raises(ValueError):
            table.column("nope")


class TestRenderTable:
    def test_contains_all_parts(self, table):
        text = render_table(table)
        assert "E0" in text
        assert "demo table" in text
        assert "k" in text and "cost" in text
        assert "900.5" in text
        assert "note: a note" in text

    def test_alignment_consistent(self, table):
        lines = render_table(table).splitlines()
        data_lines = [l for l in lines if l and not l.startswith(("==", "  note"))]
        widths = {len(l) for l in data_lines}
        assert len(widths) == 1

    def test_float_formatting(self):
        t = ResultTable("E0", "floats", ["v"])
        t.add_row(0.000123)
        t.add_row(float("nan"))
        t.add_row(123456.0)
        text = render_table(t)
        assert "0.000123" in text
        assert "nan" in text
        assert "1.23e+05" in text


class TestCsv:
    def test_to_csv(self, table):
        csv_text = to_csv(table)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "k,cost"
        assert lines[1] == "3,16"

    def test_write_csv(self, table, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(table, path)
        assert path.read_text().startswith("k,cost")


class TestRenderMatrix:
    def test_matrix_rows(self):
        text = render_matrix("demo", np.array([[1, 2], [3, 4]]))
        lines = text.splitlines()
        assert lines[0] == "-- demo --"
        assert "1" in lines[1] and "2" in lines[1]
        assert lines[2].startswith("1:")


class TestRenderSeries:
    def test_bars_scale_with_values(self):
        from repro.bench.reporting import render_series

        text = render_series(
            "update cells", {"n=64": 196, "n=256": 900, "n=1024": 3844}
        )
        lines = text.splitlines()
        assert lines[0] == "-- update cells --"
        bars = [line.count("#") for line in lines[1:]]
        assert bars[0] < bars[1] < bars[2]

    def test_log_scaling_compresses_ratios(self):
        from repro.bench.reporting import render_series

        log_text = render_series("s", {"a": 1, "b": 1000}, width=50)
        linear_text = render_series(
            "s", {"a": 1, "b": 1000}, width=50, logarithmic=False
        )
        log_small = log_text.splitlines()[1].count("#")
        linear_small = linear_text.splitlines()[1].count("#")
        assert log_small >= linear_small  # log keeps tiny values visible

    def test_zero_and_empty(self):
        from repro.bench.reporting import render_series

        assert "(empty)" in render_series("s", {})
        text = render_series("s", {"zero": 0, "one": 5})
        assert text.splitlines()[1].count("#") == 0

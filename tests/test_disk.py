"""Unit tests for the simulated disk (repro.storage.disk)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk


class TestAllocation:
    def test_allocate(self):
        disk = SimulatedDisk(page_size=8)
        first = disk.allocate(4)
        assert first == 0
        assert disk.page_count == 4
        assert disk.allocate(2) == 4
        assert disk.page_count == 6

    def test_pages_start_zeroed(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(1)
        assert disk.read_page(0).tolist() == [0, 0, 0, 0]

    def test_bad_page_size(self):
        with pytest.raises(StorageError):
            SimulatedDisk(page_size=0)

    def test_negative_allocation(self):
        disk = SimulatedDisk(page_size=4)
        with pytest.raises(StorageError):
            disk.allocate(-1)


class TestReadWrite:
    def test_roundtrip(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(2)
        disk.write_page(1, np.array([1.0, 2.0, 3.0, 4.0]))
        assert disk.read_page(1).tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_read_returns_copy(self):
        disk = SimulatedDisk(page_size=2)
        disk.allocate(1)
        page = disk.read_page(0)
        page[0] = 99
        assert disk.read_page(0)[0] == 0

    def test_write_copies_input(self):
        disk = SimulatedDisk(page_size=2)
        disk.allocate(1)
        buf = np.array([5.0, 6.0])
        disk.write_page(0, buf)
        buf[0] = 99
        assert disk.read_page(0)[0] == 5.0

    def test_wrong_shape_rejected(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(1)
        with pytest.raises(StorageError):
            disk.write_page(0, np.zeros(3))

    def test_out_of_range_page(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(1)
        with pytest.raises(StorageError):
            disk.read_page(1)
        with pytest.raises(StorageError):
            disk.write_page(-1, np.zeros(4))


class TestStats:
    def test_counters(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(2)
        disk.read_page(0)
        disk.read_page(1)
        disk.write_page(0, np.zeros(4))
        assert disk.stats.pages_read == 2
        assert disk.stats.pages_written == 1
        assert disk.stats.total_ios == 3

    def test_reset(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(1)
        disk.read_page(0)
        disk.stats.reset()
        assert disk.stats.total_ios == 0

    def test_allocation_is_free(self):
        disk = SimulatedDisk(page_size=4)
        disk.allocate(100)
        assert disk.stats.total_ios == 0

    def test_int_dtype(self):
        disk = SimulatedDisk(page_size=2, dtype=np.int64)
        disk.allocate(1)
        disk.write_page(0, np.array([1, 2]))
        assert disk.read_page(0).dtype == np.int64


class TestChecksums:
    def test_clean_reads_pass(self):
        disk = SimulatedDisk(page_size=4, verify_checksums=True)
        disk.allocate(2)
        disk.write_page(1, np.array([1.0, 2.0, 3.0, 4.0]))
        assert disk.read_page(1).tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_corruption_detected_on_read(self):
        disk = SimulatedDisk(page_size=4, verify_checksums=True)
        disk.allocate(1)
        disk.write_page(0, np.array([1.0, 2.0, 3.0, 4.0]))
        disk.corrupt_page(0, cell=2)
        with pytest.raises(StorageError, match="checksum"):
            disk.read_page(0)

    def test_corruption_silent_without_verification(self):
        disk = SimulatedDisk(page_size=4)  # checksums off by default
        disk.allocate(1)
        disk.write_page(0, np.array([1.0, 2.0, 3.0, 4.0]))
        disk.corrupt_page(0, cell=2)
        assert disk.read_page(0)[2] == 4.0  # silently wrong

    def test_rewrite_heals_checksum(self):
        disk = SimulatedDisk(page_size=2, verify_checksums=True)
        disk.allocate(1)
        disk.write_page(0, np.array([1.0, 2.0]))
        disk.corrupt_page(0)
        disk.write_page(0, np.array([5.0, 6.0]))  # fresh write re-seals
        assert disk.read_page(0).tolist() == [5.0, 6.0]

    def test_paged_rps_surfaces_corruption(self, rng):
        """End to end: a corrupt RP page turns into a loud StorageError
        at the next cold query instead of a silently wrong total."""
        from repro.storage.paged_rps import PagedRPSCube

        a = rng.integers(0, 9, size=(16, 16))
        paged = PagedRPSCube(a, box_size=4, buffer_capacity=2)
        paged.rp_pages.disk.verify_checksums = True
        paged.rp_pages.pool.drop()
        # page 5 holds the box anchored at (4, 4); a query whose corner
        # lands in that box must read it and trip the checksum
        assert paged.rp_pages.layout.page_of_box((1, 1)) == 5
        paged.rp_pages.disk.corrupt_page(5)
        with pytest.raises(StorageError, match="checksum"):
            paged.range_sum((0, 0), (7, 7))


class TestFaultInjection:
    """The disk consults a FaultPlan at its natural injection points;
    the plan's own semantics are covered in tests/test_faults.py."""

    def test_scheduled_write_failure_is_atomic(self):
        from repro.faults import FaultPlan, InjectedFault

        disk = SimulatedDisk(
            page_size=4, dtype=np.int64, faults=FaultPlan(fail_write_at=2)
        )
        disk.allocate(1)
        disk.write_page(0, np.array([1, 2, 3, 4]))
        with pytest.raises(InjectedFault):
            disk.write_page(0, np.array([9, 9, 9, 9]))
        # the failed write left the previous contents in place
        assert disk.read_page(0).tolist() == [1, 2, 3, 4]

    def test_paged_rps_rides_injected_read_corruption(self):
        """End to end through the paged structure: an injected read
        corruption trips the same checksum guard media rot would."""
        from repro.faults import FaultPlan
        from repro.storage.paged_rps import PagedRPSCube

        rng = np.random.default_rng(0)
        a = rng.integers(0, 9, size=(16, 16))
        paged = PagedRPSCube(a, box_size=4, buffer_capacity=2)
        paged.rp_pages.disk.verify_checksums = True
        paged.rp_pages.disk.faults = FaultPlan(seed=1, corrupt_read_at=1)
        paged.rp_pages.pool.drop()
        with pytest.raises(StorageError, match="checksum"):
            paged.range_sum((0, 0), (15, 15))

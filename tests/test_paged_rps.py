"""Unit tests for the disk-resident RPS configuration (repro.storage.paged_rps)."""

import numpy as np
import pytest

from repro.core.rps import RelativePrefixSumCube
from repro.storage.layout import BoxAlignedLayout, RowMajorLayout
from repro.storage.paged_rps import PagedRPSCube
from tests.conftest import brute_range_sum, random_range


class TestCorrectness:
    def test_agrees_with_in_memory_rps(self, rng):
        a = rng.integers(0, 30, size=(16, 16))
        paged = PagedRPSCube(a, box_size=4)
        memory = RelativePrefixSumCube(a, box_size=4)
        for _ in range(40):
            low, high = random_range(rng, a.shape)
            assert paged.range_sum(low, high) == memory.range_sum(low, high)

    def test_updates_then_queries(self, rng):
        a = rng.integers(0, 10, size=(12, 12))
        paged = PagedRPSCube(a, box_size=4, buffer_capacity=3)
        a = a.copy()
        for _ in range(30):
            cell = tuple(int(x) for x in rng.integers(0, 12, size=2))
            delta = int(rng.integers(-3, 4))
            a[cell] += delta
            paged.apply_delta(cell, delta)
            low, high = random_range(rng, a.shape)
            assert paged.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_row_major_layout_also_correct(self, rng):
        a = rng.integers(0, 10, size=(9, 9))
        paged = PagedRPSCube(
            a, box_size=3, layout=RowMajorLayout((9, 9), 9)
        )
        for _ in range(25):
            low, high = random_range(rng, a.shape)
            assert paged.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_3d(self, rng):
        a = rng.integers(0, 10, size=(6, 6, 6))
        paged = PagedRPSCube(a, box_size=2)
        for _ in range(20):
            low, high = random_range(rng, a.shape)
            assert paged.range_sum(low, high) == brute_range_sum(a, low, high)


class TestSection44Claims:
    def test_cold_query_reads_at_most_2_to_d_pages(self, rng):
        """Box-aligned: one RP page per region-sum corner."""
        a = rng.integers(0, 10, size=(32, 32))
        paged = PagedRPSCube(a, box_size=8, buffer_capacity=4)
        for _ in range(20):
            paged.rp_pages.pool.drop()
            paged.reset_io_stats()
            low, high = random_range(rng, a.shape)
            paged.range_sum(low, high)
            assert paged.io_stats()["pages_read"] <= 4

    def test_cold_update_touches_one_rp_page(self, rng):
        """The entire RP cascade stays inside one box = one page."""
        a = rng.integers(0, 10, size=(32, 32))
        paged = PagedRPSCube(a, box_size=8, buffer_capacity=4)
        for _ in range(20):
            cell = tuple(int(x) for x in rng.integers(0, 32, size=2))
            paged.rp_pages.pool.drop()
            paged.reset_io_stats()
            paged.apply_delta(cell, 1)
            paged.flush()
            stats = paged.io_stats()
            assert stats["pages_read"] == 1
            assert stats["pages_written"] == 1

    def test_row_major_update_can_straddle_pages(self, rng):
        """The counter-configuration: unaligned layout spreads one box's
        cascade over many pages."""
        n, k = 32, 8
        a = rng.integers(0, 10, size=(n, n))
        paged = PagedRPSCube(
            a, box_size=k, layout=RowMajorLayout((n, n), k * k),
            buffer_capacity=32,
        )
        paged.rp_pages.pool.drop()
        paged.reset_io_stats()
        paged.apply_delta((0, 0), 1)  # cascades over a full k x k box
        paged.flush()
        assert paged.io_stats()["pages_read"] > 1

    def test_overlay_memory_is_small_fraction(self, rng):
        """Section 4.4's premise: the RAM-resident overlay is small
        relative to RP."""
        a = rng.integers(0, 10, size=(100, 100))
        paged = PagedRPSCube(a, box_size=10)
        # live overlay cells / RP cells = (k^d - (k-1)^d) / k^d = 19%
        ratio = paged.overlay_memory_cells() / a.size
        assert ratio < 0.25

    def test_warm_buffer_hits(self, rng):
        a = rng.integers(0, 10, size=(16, 16))
        paged = PagedRPSCube(a, box_size=4, buffer_capacity=16)
        paged.range_sum((0, 0), (15, 15))
        paged.reset_io_stats()
        paged.range_sum((0, 0), (15, 15))  # same pages, now cached
        stats = paged.io_stats()
        assert stats["pages_read"] == 0
        assert stats["buffer_hit_rate"] == 1.0


class TestAccounting:
    def test_storage_cells_counts_padding(self, rng):
        a = rng.integers(0, 5, size=(10, 10))
        paged = PagedRPSCube(a, box_size=3)
        # 16 pages x 9 slots on disk, plus the overlay in RAM
        assert paged.storage_cells() == 16 * 9 + paged.overlay.storage_cells()

    def test_cell_counters_still_charged(self, rng):
        a = rng.integers(0, 5, size=(9, 9))
        paged = PagedRPSCube(a, box_size=3)
        before = paged.counter.snapshot()
        paged.prefix_sum((7, 5))
        # 1 anchor + 2 borders + 1 RP cell, same as the in-memory method.
        assert before.delta(paged.counter).cells_read == 4

    def test_update_cell_counts_match_in_memory(self, rng):
        a = rng.integers(0, 5, size=(9, 9))
        paged = PagedRPSCube(a, box_size=3)
        memory = RelativePrefixSumCube(a, box_size=3)
        paged.apply_delta((1, 1), 1)
        memory.apply_delta((1, 1), 1)
        assert (
            paged.counter.cells_written == memory.counter.cells_written == 16
        )

"""Unit tests for rolling time windows (repro.cube.rolling_window)."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.cube.rolling_window import RollingWindowEngine
from repro.errors import RangeError, SchemaError


@pytest.fixture
def engine():
    # 7-day window over 4 buckets, small enough to reason about exactly
    return RollingWindowEngine((4,), window=7, box_size=2)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(RangeError):
            RollingWindowEngine((4,), window=1)
        with pytest.raises(SchemaError):
            RollingWindowEngine((0,), window=7)

    def test_starts_empty(self, engine):
        assert engine.window_sum(0, 0) == 0.0
        assert engine.oldest_slot == engine.newest_slot == 0

    def test_alternate_backend(self):
        engine = RollingWindowEngine((3,), window=4, method=NaiveCube)
        engine.record(0, (1,), 5.0)
        assert engine.window_sum(0, 0) == 5.0


class TestRecordAndQuery:
    def test_single_slot(self, engine):
        engine.record(0, (2,), 10.0)
        engine.record(0, (3,), 5.0)
        assert engine.window_sum(0, 0) == 15.0
        assert engine.window_sum(0, 0, low=(2,), high=(2,)) == 10.0

    def test_recording_into_future_advances(self, engine):
        engine.record(3, (0,), 7.0)
        assert engine.newest_slot == 3
        assert engine.window_sum(0, 3) == 7.0

    def test_multi_slot_range(self, engine):
        for slot in range(5):
            engine.record(slot, (1,), float(slot + 1))
        assert engine.window_sum(1, 3) == 2 + 3 + 4
        assert engine.trailing_sum(2) == 4 + 5

    def test_slot_out_of_window_rejected(self, engine):
        engine.record(10, (0,), 1.0)  # window now [4, 10]
        with pytest.raises(RangeError):
            engine.window_sum(3, 5)
        with pytest.raises(RangeError):
            engine.record(2, (0,), 1.0)

    def test_inverted_slot_range(self, engine):
        engine.record(3, (0,), 1.0)
        with pytest.raises(RangeError):
            engine.window_sum(3, 1)


class TestExpiry:
    def test_old_data_expires_on_wrap(self, engine):
        engine.record(0, (0,), 100.0)
        engine.record(7, (0,), 1.0)  # slot 7 reuses physical slice 0
        # slot 0's 100.0 must be gone: totals reflect only live slots
        assert engine.window_sum(engine.oldest_slot,
                                 engine.newest_slot) == 1.0

    def test_window_total_over_long_stream(self):
        """Logical totals always equal the sum of live slots' facts."""
        engine = RollingWindowEngine((3,), window=5, box_size=2)
        rng = np.random.default_rng(9)
        ledger = {}  # slot -> total recorded
        for slot in range(20):
            amount = float(rng.integers(1, 10))
            engine.record(slot, (int(rng.integers(0, 3)),), amount)
            ledger[slot] = ledger.get(slot, 0.0) + amount
            first = engine.oldest_slot
            expected = sum(
                ledger.get(s, 0.0) for s in range(first, slot + 1)
            )
            assert engine.window_sum(first, slot) == pytest.approx(expected)

    def test_wrap_range_splits_into_two_physical_ranges(self):
        engine = RollingWindowEngine((2,), window=5, box_size=2)
        for slot in range(6):  # newest 5, window [1..5]
            engine.record(slot, (0,), 1.0)
        # logical [2, 5] (4 of 5 slots) wraps physically ([2,4] + [0,0])
        assert engine.window_sum(2, 5) == 4.0
        assert engine._physical_ranges(2, 5) == [(2, 4), (0, 0)]

    def test_full_window_range_is_single_physical_scan(self):
        engine = RollingWindowEngine((2,), window=4)
        engine.advance(10)
        assert engine._physical_ranges(
            engine.oldest_slot, engine.newest_slot
        ) == [(0, 3)]


class TestAdvance:
    def test_advance_returns_new_slot(self, engine):
        assert engine.advance(3) == 3

    def test_advance_backwards_rejected(self, engine):
        with pytest.raises(RangeError):
            engine.advance(0)

    def test_advance_beyond_window_clears_everything(self, engine):
        engine.record(0, (0,), 50.0)
        engine.advance(20)
        assert engine.window_sum(
            engine.oldest_slot, engine.newest_slot
        ) == 0.0

    def test_trailing_sum_clips_to_window(self, engine):
        engine.record(2, (0,), 3.0)
        # asking for more history than exists clips to the window start
        assert engine.trailing_sum(100) == 3.0

    def test_repr(self, engine):
        engine.advance(9)
        assert "slots=[3..9]" in repr(engine)

"""Hypothesis properties for split/merge slab geometry.

The reshard coordinator's correctness rests on a purely combinatorial
layer: the successor :class:`~repro.cluster.shardmap.ShardMap` produced
by ``split_shard``/``merge_shards`` must route every cell, update, and
query box to exactly one owner, and a split immediately undone by a
merge must reproduce the *identical* cell→shard mapping. These
properties pin that layer down independently of nodes, WALs, and
threads, so a geometry bug can never hide behind migration machinery.

Arrays are integer-valued so partial sums across shards compare
bit-for-bit against the single-array oracle — no float tolerance needed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardMap

from .conftest import brute_range_sum

MAX_ROWS = 40


@st.composite
def layouts(draw, min_shards=1, max_shards=5):
    """A valid (shape, bounds) pair: contiguous slabs covering axis 0."""
    ndim = draw(st.integers(1, 3))
    rows = draw(st.integers(min_shards, MAX_ROWS))
    tail = tuple(
        draw(st.integers(1, 6)) for _ in range(ndim - 1)
    )
    num_shards = draw(
        st.integers(min_shards, min(max_shards, rows))
    )
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, rows - 1),
                min_size=num_shards - 1,
                max_size=num_shards - 1,
                unique=True,
            )
        )
        if num_shards > 1
        else []
    )
    edges = [0] + cuts + [rows]
    bounds = [
        (edges[i], edges[i + 1]) for i in range(len(edges) - 1)
    ]
    return (rows,) + tail, bounds


@st.composite
def splittable_maps(draw):
    """A ShardMap plus a shard wide enough to split and a valid cut row."""
    shape, bounds = draw(layouts())
    widths = [stop - start for start, stop in bounds]
    candidates = [i for i, w in enumerate(widths) if w >= 2]
    if not candidates:
        # guarantee at least one splittable shard by fusing everything
        bounds = [(0, shape[0])]
        if shape[0] < 2:
            shape = (2,) + shape[1:]
            bounds = [(0, 2)]
        candidates = [0]
    shard = draw(st.sampled_from(candidates))
    start, stop = bounds[shard]
    at_row = draw(st.integers(start + 1, stop - 1))
    epoch = draw(st.integers(0, 10))
    return ShardMap.from_bounds(shape, bounds, epoch=epoch), shard, at_row


def cell_owner_table(shardmap):
    """cell row → owning shard, for every row of axis 0."""
    return tuple(
        shardmap.shard_of((row,) + (0,) * (shardmap.ndim - 1))
        for row in range(shardmap.shape[0])
    )


class TestSplitMergeRoundTrip:
    @given(splittable_maps())
    @settings(max_examples=120, deadline=None)
    def test_split_then_merge_restores_identical_layout(self, case):
        shardmap, shard, at_row = case
        split = shardmap.split_shard(shard, at_row=at_row)
        merged = split.merge_shards(shard)
        assert merged.bounds == shardmap.bounds
        assert merged.shape == shardmap.shape
        # the round trip costs two epochs but changes no ownership
        assert merged.epoch == shardmap.epoch + 2

    @given(splittable_maps())
    @settings(max_examples=120, deadline=None)
    def test_round_trip_reproduces_cell_to_shard_mapping(self, case):
        shardmap, shard, at_row = case
        merged = shardmap.split_shard(shard, at_row=at_row).merge_shards(
            shard
        )
        assert cell_owner_table(merged) == cell_owner_table(shardmap)

    @given(splittable_maps())
    @settings(max_examples=120, deadline=None)
    def test_split_covers_rows_exactly_once(self, case):
        shardmap, shard, at_row = case
        split = shardmap.split_shard(shard, at_row=at_row)
        assert split.num_shards == shardmap.num_shards + 1
        assert split.epoch == shardmap.epoch + 1
        owners = cell_owner_table(split)
        # ownership is monotone non-decreasing and covers every shard
        assert list(owners) == sorted(owners)
        assert set(owners) == set(range(split.num_shards))
        # cells outside the split shard keep their relative grouping:
        # rows that shared a shard before still share one after
        before = cell_owner_table(shardmap)
        for row_a in range(len(before)):
            for row_b in range(row_a + 1, len(before)):
                if owners[row_a] == owners[row_b]:
                    assert before[row_a] == before[row_b]


@st.composite
def maps_with_data(draw):
    """A pre/post-split map pair plus an integer cube and query boxes."""
    shardmap, shard, at_row = draw(splittable_maps())
    shape = shardmap.shape
    cells = int(np.prod(shape))
    values = draw(
        st.lists(
            st.integers(-50, 50), min_size=cells, max_size=cells
        )
    )
    array = np.asarray(values, dtype=np.float64).reshape(shape)
    boxes = []
    for _ in range(draw(st.integers(1, 4))):
        low, high = [], []
        for size in shape:
            a = draw(st.integers(0, size - 1))
            b = draw(st.integers(0, size - 1))
            low.append(min(a, b))
            high.append(max(a, b))
        boxes.append((tuple(low), tuple(high)))
    return shardmap, shard, at_row, array, boxes


class TestCrossEpochExactness:
    @given(maps_with_data())
    @settings(max_examples=80, deadline=None)
    def test_split_box_partials_sum_bit_for_bit(self, case):
        """Per-shard partial sums re-assemble to the single-array oracle
        exactly — under the old epoch, the new epoch, and any mixture.

        Integer-valued float64 cells make every partial sum exact, so
        ``==`` (not approx) is the right assertion: a row routed to the
        wrong shard, dropped, or double-counted shifts the total by at
        least 1."""
        shardmap, shard, at_row, array, boxes = case
        split_map = shardmap.split_shard(shard, at_row=at_row)
        for low, high in boxes:
            oracle = brute_range_sum(array, low, high)
            for epoch_map in (shardmap, split_map):
                pieces = epoch_map.split_box(low, high)
                total = 0.0
                seen = set()
                for piece_shard, plo, phi in pieces:
                    assert piece_shard not in seen
                    seen.add(piece_shard)
                    slab = epoch_map.subarray(array, piece_shard)
                    total += brute_range_sum(slab, plo, phi)
                assert total == oracle

    @given(maps_with_data())
    @settings(max_examples=80, deadline=None)
    def test_split_updates_route_identically_across_epochs(self, case):
        """Applying one update stream through the old layout and through
        the post-split layout produces bit-identical cubes: localization
        plus re-globalization is the identity under both epochs."""
        shardmap, shard, at_row, array, boxes = case
        split_map = shardmap.split_shard(shard, at_row=at_row)
        updates = []
        rng = np.random.default_rng(
            int(np.abs(array).sum()) % (2**31) + at_row
        )
        for _ in range(12):
            cell = tuple(
                int(rng.integers(0, size)) for size in shardmap.shape
            )
            updates.append((cell, float(rng.integers(-9, 10))))
        images = []
        for epoch_map in (shardmap, split_map):
            image = array.copy()
            grouped = epoch_map.split_updates(updates)
            for piece_shard, local_updates in grouped.items():
                start, _ = epoch_map.slab(piece_shard)
                for local_cell, delta in local_updates:
                    global_cell = (local_cell[0] + start,) + local_cell[1:]
                    image[global_cell] += delta
            images.append(image)
        assert np.array_equal(images[0], images[1])
        # and the per-shard sub-groups preserve submission order
        grouped = split_map.split_updates(updates)
        for piece_shard, local_updates in grouped.items():
            start, _ = split_map.slab(piece_shard)
            rebuilt = [
                ((cell[0] + start,) + cell[1:], delta)
                for cell, delta in local_updates
            ]
            filtered = [
                (cell, delta)
                for cell, delta in updates
                if split_map.shard_of(cell) == piece_shard
            ]
            assert rebuilt == filtered

    @given(maps_with_data())
    @settings(max_examples=60, deadline=None)
    def test_slab_images_concatenate_to_the_cube(self, case):
        shardmap, shard, at_row, array, boxes = case
        for epoch_map in (shardmap, shardmap.split_shard(shard, at_row)):
            image = np.concatenate(
                [
                    epoch_map.subarray(array, s)
                    for s in range(epoch_map.num_shards)
                ]
            )
            assert np.array_equal(image, array)

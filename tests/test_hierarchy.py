"""Unit tests for dimension hierarchies (repro.cube.hierarchy)."""

import datetime

import pytest

from repro.cube.encoders import DateEncoder, IntegerEncoder
from repro.cube.engine import DataCubeEngine
from repro.cube.hierarchy import BandHierarchy, CalendarHierarchy, group_by
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import RangeError, SchemaError


@pytest.fixture
def engine():
    schema = CubeSchema(
        [
            Dimension("age", IntegerEncoder(18, 80)),
            Dimension("day", DateEncoder("2025-11-15", 120)),
        ],
        measure="sales",
    )
    engine = DataCubeEngine(schema)
    engine.ingest({"age": 25, "day": "2025-11-20", "sales": 10.0})
    engine.ingest({"age": 25, "day": "2025-12-05", "sales": 20.0})
    engine.ingest({"age": 45, "day": "2026-01-10", "sales": 40.0})
    engine.ingest({"age": 70, "day": "2026-02-28", "sales": 80.0})
    return engine


class TestCalendarMembers:
    def test_month_members_clip_to_window(self, engine):
        hierarchy = CalendarHierarchy(engine, "day")
        members = dict(hierarchy.members("month"))
        assert list(members) == [
            "2025-11", "2025-12", "2026-01", "2026-02", "2026-03",
        ]
        # first month clipped to the window start
        assert members["2025-11"][0] == datetime.date(2025, 11, 15)
        assert members["2025-11"][1] == datetime.date(2025, 11, 30)
        # full interior month
        assert members["2025-12"] == (
            datetime.date(2025, 12, 1), datetime.date(2025, 12, 31)
        )
        # last month clipped to the window end (120 days from 2025-11-15)
        assert members["2026-03"][1] == datetime.date(2026, 3, 14)

    def test_quarter_members(self, engine):
        hierarchy = CalendarHierarchy(engine, "day")
        members = dict(hierarchy.members("quarter"))
        assert list(members) == ["2025-Q4", "2026-Q1"]

    def test_year_members(self, engine):
        hierarchy = CalendarHierarchy(engine, "day")
        members = dict(hierarchy.members("year"))
        assert list(members) == ["2025", "2026"]

    def test_members_tile_the_window(self, engine):
        """Members are contiguous, non-overlapping, and cover every day."""
        hierarchy = CalendarHierarchy(engine, "day")
        for level in CalendarHierarchy.LEVELS:
            members = hierarchy.members(level)
            previous_end = None
            for _, (start, end) in members:
                assert start <= end
                if previous_end is not None:
                    assert start == previous_end + datetime.timedelta(days=1)
                previous_end = end
            assert members[0][1][0] == datetime.date(2025, 11, 15)
            assert previous_end == datetime.date(2026, 3, 14)

    def test_unknown_level(self, engine):
        with pytest.raises(RangeError):
            CalendarHierarchy(engine, "day").members("fortnight")

    def test_non_date_dimension_rejected(self, engine):
        with pytest.raises(SchemaError):
            CalendarHierarchy(engine, "age")


class TestCalendarRollup:
    def test_monthly_sums(self, engine):
        rollup = CalendarHierarchy(engine, "day").rollup("month")
        assert rollup["2025-11"] == pytest.approx(10.0)
        assert rollup["2025-12"] == pytest.approx(20.0)
        assert rollup["2026-01"] == pytest.approx(40.0)
        assert rollup["2026-02"] == pytest.approx(80.0)
        assert rollup["2026-03"] == pytest.approx(0.0)

    def test_rollup_total_matches_engine_total(self, engine):
        for level in CalendarHierarchy.LEVELS:
            rollup = CalendarHierarchy(engine, "day").rollup(level)
            assert sum(rollup.values()) == pytest.approx(engine.sum())

    def test_rollup_with_selection(self, engine):
        rollup = CalendarHierarchy(engine, "day").rollup(
            "year", selection={"age": (18, 30)}
        )
        assert rollup["2025"] == pytest.approx(30.0)
        assert rollup["2026"] == pytest.approx(0.0)

    def test_count_rollup(self, engine):
        rollup = CalendarHierarchy(engine, "day").rollup(
            "quarter", aggregate="count"
        )
        assert rollup == {"2025-Q4": 2, "2026-Q1": 2}


class TestBandHierarchy:
    def test_age_bands(self, engine):
        bands = BandHierarchy(
            engine, "age",
            {"young": (18, 30), "mid": (31, 55), "senior": (56, 80)},
        )
        rollup = bands.rollup()
        assert rollup["young"] == pytest.approx(30.0)
        assert rollup["mid"] == pytest.approx(40.0)
        assert rollup["senior"] == pytest.approx(80.0)

    def test_band_average(self, engine):
        bands = BandHierarchy(engine, "age", {"young": (18, 30)})
        assert bands.rollup(aggregate="average")["young"] == pytest.approx(
            15.0
        )

    def test_overlapping_bands_rejected(self, engine):
        with pytest.raises(RangeError):
            BandHierarchy(
                engine, "age", {"a": (18, 40), "b": (35, 60)}
            )

    def test_empty_bands_rejected(self, engine):
        with pytest.raises(RangeError):
            BandHierarchy(engine, "age", {})


class TestGroupBy:
    def test_explicit_members(self, engine):
        result = group_by(
            engine, "age",
            [("lo", (18, 40)), ("hi", (41, 80))],
        )
        assert result == {
            "lo": pytest.approx(30.0), "hi": pytest.approx(120.0)
        }

    def test_bad_aggregate(self, engine):
        with pytest.raises(RangeError):
            group_by(engine, "age", [("all", (18, 80))], aggregate="median")

    def test_selection_on_grouped_dimension_rejected(self, engine):
        with pytest.raises(RangeError):
            group_by(
                engine, "age", [("all", (18, 80))],
                selection={"age": (20, 30)},
            )

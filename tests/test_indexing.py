"""Unit tests for coordinate/range geometry (repro.core.indexing)."""

import pytest

from repro.core import indexing
from repro.errors import BoxSizeError, DimensionError, RangeError


class TestNormalizeIndex:
    def test_tuple_passthrough(self):
        assert indexing.normalize_index((2, 3), (9, 9)) == (2, 3)

    def test_list_accepted(self):
        assert indexing.normalize_index([0, 8], (9, 9)) == (0, 8)

    def test_bare_int_for_1d(self):
        assert indexing.normalize_index(4, (10,)) == (4,)

    def test_numpy_ints_coerced(self):
        import numpy as np

        idx = indexing.normalize_index(
            (np.int64(1), np.int32(2)), (9, 9)
        )
        assert idx == (1, 2)
        assert all(type(i) is int for i in idx)

    def test_arity_mismatch(self):
        with pytest.raises(DimensionError):
            indexing.normalize_index((1, 2, 3), (9, 9))

    def test_out_of_bounds_high(self):
        with pytest.raises(RangeError):
            indexing.normalize_index((9, 0), (9, 9))

    def test_negative_rejected(self):
        with pytest.raises(RangeError):
            indexing.normalize_index((-1, 0), (9, 9))


class TestNormalizeRange:
    def test_valid(self):
        lo, hi = indexing.normalize_range((1, 2), (3, 4), (9, 9))
        assert lo == (1, 2) and hi == (3, 4)

    def test_degenerate_point_range(self):
        lo, hi = indexing.normalize_range((5, 5), (5, 5), (9, 9))
        assert lo == hi == (5, 5)

    def test_inverted_rejected(self):
        with pytest.raises(RangeError):
            indexing.normalize_range((3, 0), (1, 8), (9, 9))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(RangeError):
            indexing.normalize_range((0, 0), (9, 8), (9, 9))


class TestNormalizeIndexBatch:
    def test_misshaped_empty_batch_rejected(self):
        """A (0, 3) batch against a 2-d cube is malformed, not merely
        empty — arity is validated before the empty early-out."""
        import numpy as np

        with pytest.raises(DimensionError):
            indexing.normalize_index_batch(np.empty((0, 3)), (9, 9))

    def test_higher_rank_empty_batch_rejected(self):
        import numpy as np

        with pytest.raises(DimensionError):
            indexing.normalize_index_batch(np.empty((0, 2, 2)), (9, 9))

    def test_flat_empty_accepted_for_any_d(self):
        out = indexing.normalize_index_batch([], (9, 9))
        assert out.shape == (0, 2)

    def test_right_arity_empty_accepted(self):
        import numpy as np

        out = indexing.normalize_index_batch(
            np.empty((0, 2), dtype=np.intp), (9, 9)
        )
        assert out.shape == (0, 2)


class TestNormalizeUpdateBatch:
    def test_valid_batch_roundtrip(self):
        import numpy as np

        idx, deltas = indexing.normalize_update_batch(
            [[1, 2], [3, 4]], [5, -6], (9, 9)
        )
        assert idx.shape == (2, 2) and idx.dtype == np.intp
        assert list(deltas) == [5, -6]

    def test_scalar_delta_broadcast(self):
        idx, deltas = indexing.normalize_update_batch(
            [[0, 0], [1, 1], [2, 2]], 7, (9, 9)
        )
        assert len(deltas) == 3 and all(d == 7 for d in deltas)

    def test_misaligned_deltas_rejected(self):
        with pytest.raises(DimensionError):
            indexing.normalize_update_batch([[1, 2], [3, 4]], [5], (9, 9))

    def test_matrix_deltas_rejected(self):
        with pytest.raises(DimensionError):
            indexing.normalize_update_batch([[1, 2]], [[5, 6]], (9, 9))

    def test_non_numeric_deltas_rejected(self):
        with pytest.raises(TypeError):
            indexing.normalize_update_batch([[1, 2]], ["x"], (9, 9))

    def test_out_of_bounds_index_rejected(self):
        with pytest.raises(RangeError):
            indexing.normalize_update_batch([[9, 0]], [1], (9, 9))

    def test_misshaped_empty_batch_rejected(self):
        import numpy as np

        with pytest.raises(DimensionError):
            indexing.normalize_update_batch(np.empty((0, 3)), [], (9, 9))


class TestRangeVolume:
    def test_point(self):
        assert indexing.range_volume((3, 3), (3, 3)) == 1

    def test_rectangle(self):
        assert indexing.range_volume((1, 2), (3, 5)) == 3 * 4

    def test_full_cube(self):
        assert indexing.range_volume((0, 0, 0), (8, 8, 8)) == 9**3


class TestSlices:
    def test_range_to_slices(self):
        assert indexing.range_to_slices((1, 2), (3, 4)) == (
            slice(1, 4),
            slice(2, 5),
        )

    def test_prefix_slices(self):
        assert indexing.prefix_slices((2, 0)) == (slice(0, 3), slice(0, 1))


class TestIterCorners:
    def test_count_is_2_to_the_d(self):
        for d in range(1, 5):
            corners = list(
                indexing.iter_corners((1,) * d, (3,) * d)
            )
            assert len(corners) == 2**d

    def test_signs_alternate_by_parity(self):
        corners = dict()
        for sign, corner in indexing.iter_corners((1, 1), (3, 3)):
            corners[corner] = sign
        assert corners[(3, 3)] == 1
        assert corners[(0, 3)] == -1
        assert corners[(3, 0)] == -1
        assert corners[(0, 0)] == 1

    def test_identity_on_concrete_array(self, rng):
        import numpy as np

        a = rng.integers(0, 10, size=(7, 7))
        p = a.cumsum(axis=0).cumsum(axis=1)
        low, high = (2, 3), (5, 6)
        total = 0
        for sign, corner in indexing.iter_corners(low, high):
            if indexing.has_empty_axis(corner):
                continue
            total += sign * p[corner]
        assert total == a[2:6, 3:7].sum()

    def test_low_zero_corners_marked_empty(self):
        empties = [
            corner
            for _, corner in indexing.iter_corners((0, 1), (2, 3))
            if indexing.has_empty_axis(corner)
        ]
        assert empties == [(-1, 3), (-1, 0)]


class TestBoxGeometry:
    def test_validate_box_size_ok(self):
        assert indexing.validate_box_size(3, (9, 9)) == 3

    def test_validate_box_size_larger_than_dim_allowed(self):
        assert indexing.validate_box_size(100, (9, 9)) == 100

    def test_validate_box_size_zero_rejected(self):
        with pytest.raises(BoxSizeError):
            indexing.validate_box_size(0, (9, 9))

    def test_validate_empty_shape_rejected(self):
        with pytest.raises(DimensionError):
            indexing.validate_box_size(3, ())

    def test_anchor_of(self):
        assert indexing.anchor_of((7, 5), 3) == (6, 3)
        assert indexing.anchor_of((0, 0), 3) == (0, 0)
        assert indexing.anchor_of((8, 8), 3) == (6, 6)

    def test_box_count_divisible(self):
        assert indexing.box_count((9, 9), 3) == 9

    def test_box_count_partial_boxes(self):
        assert indexing.box_count((10, 10), 3) == 16

    def test_iter_anchors_matches_paper(self):
        anchors = set(indexing.iter_anchors((9, 9), 3))
        assert anchors == {
            (r, c) for r in (0, 3, 6) for c in (0, 3, 6)
        }

    def test_box_extent_full(self):
        assert indexing.box_extent((3, 3), (9, 9), 3) == ((3, 3), (5, 5))

    def test_box_extent_truncated(self):
        assert indexing.box_extent((9, 9), (10, 10), 3) == ((9, 9), (9, 9))

    def test_face_projection(self):
        assert indexing.face_projection((7, 5), (6, 3), 0) == (6, 5)
        assert indexing.face_projection((7, 5), (6, 3), 1) == (7, 3)

    def test_covers(self):
        assert indexing.covers((6, 3), 3, (7, 5))
        assert not indexing.covers((6, 3), 3, (7, 6))
        assert not indexing.covers((6, 3), 3, (5, 3))

    def test_dominates(self):
        assert indexing.dominates((1, 1), (1, 1))
        assert indexing.dominates((1, 1), (2, 3))
        assert not indexing.dominates((2, 1), (1, 3))

"""Cross-module integration tests: the full OLAP stack end to end."""

import datetime

import numpy as np
import pytest

from repro import (
    CubeSchema,
    DataCubeEngine,
    DateEncoder,
    Dimension,
    FactTable,
    IntegerEncoder,
    PagedRPSCube,
    PrefixSumCube,
    RelativePrefixSumCube,
)
from repro.cube.builder import build_dense_arrays
from repro.workloads import querygen, updategen
from repro.workloads.runner import WorkloadRunner


@pytest.fixture
def insurance_world(rng):
    """The paper's motivating scenario: an insurance company's sales."""
    schema = CubeSchema(
        [
            Dimension("age", IntegerEncoder(18, 80)),
            Dimension("day", DateEncoder("2026-01-01", 120)),
        ],
        measure="sales",
    )
    facts = FactTable()
    start = datetime.date(2026, 1, 1)
    for _ in range(1500):
        facts.append(
            {
                "age": int(rng.integers(18, 81)),
                "day": start + datetime.timedelta(days=int(rng.integers(0, 120))),
                "sales": float(rng.integers(10, 500)),
            }
        )
    return schema, facts


class TestFactTableToEngine:
    def test_csv_roundtrip_preserves_aggregates(
        self, insurance_world, tmp_path
    ):
        schema, facts = insurance_world
        path = tmp_path / "facts.csv"
        facts.to_csv(path)
        reloaded = FactTable.from_csv(
            path, converters={"age": int, "sales": float}
        )
        original = DataCubeEngine(schema, facts)
        roundtripped = DataCubeEngine(schema, reloaded)
        selection = {"age": (37, 52)}
        assert original.sum(selection) == pytest.approx(
            roundtripped.sum(selection)
        )

    def test_streaming_day_equivalence(self, insurance_world):
        """Batch-building a cube == ingesting the same facts one by one."""
        schema, facts = insurance_world
        records = list(facts)
        batch = DataCubeEngine(schema, records)
        streaming = DataCubeEngine(schema, records[:1000])
        for record in records[1000:]:
            streaming.ingest(record)
        for selection in (
            {},
            {"age": (30, 40)},
            {"day": ("2026-02-01", "2026-03-01")},
            {"age": (50, 80), "day": ("2026-01-05", "2026-04-20")},
        ):
            assert streaming.sum(selection) == pytest.approx(
                batch.sum(selection)
            )
            assert streaming.count(selection) == batch.count(selection)


class TestBackendInterchangeability:
    def test_same_answers_across_backends(self, insurance_world):
        schema, facts = insurance_world
        engines = [
            DataCubeEngine(schema, facts, method=cls)
            for cls in (RelativePrefixSumCube, PrefixSumCube)
        ]
        engines.append(
            DataCubeEngine(schema, facts, method=PagedRPSCube, box_size=8)
        )
        selections = [
            {"age": (37, 52), "day": ("2026-01-10", "2026-02-10")},
            {"age": (18, 18)},
            {},
        ]
        for selection in selections:
            answers = [e.sum(selection) for e in engines]
            assert all(
                a == pytest.approx(answers[0]) for a in answers
            ), selection

    def test_update_cost_ordering(self, insurance_world):
        """The whole point of the paper, end to end: RPS ingests facts
        far cheaper than the prefix-sum backend, at identical answers."""
        schema, facts = insurance_world
        rps = DataCubeEngine(schema, facts, method=RelativePrefixSumCube)
        ps = DataCubeEngine(schema, facts, method=PrefixSumCube)
        new_facts = [
            {"age": 18, "day": "2026-01-01", "sales": 100.0},
            {"age": 45, "day": "2026-02-14", "sales": 60.0},
        ]
        for engine in (rps, ps):
            engine.backend.counter.reset()
            for record in new_facts:
                engine.ingest(record)
        assert rps.backend.counter.cells_written < (
            ps.backend.counter.cells_written / 5
        )
        assert rps.sum() == pytest.approx(ps.sum())


class TestWorkloadOverBuiltCube:
    def test_mixed_workload_consistent(self, insurance_world):
        schema, facts = insurance_world
        values, _ = build_dense_arrays(facts, schema)
        method = RelativePrefixSumCube(values)
        runner = WorkloadRunner(method, oracle=values)
        result = runner.run(
            queries=querygen.hotspot_ranges(values.shape, 40, seed=11),
            updates=updategen.append_updates(values.shape, 40, seed=12),
        )
        assert result.mismatches == 0
        assert result.queries == 40 and result.updates == 40

    def test_disk_resident_stack(self, insurance_world):
        """Facts -> cube -> paged RPS -> queries, with sane I/O."""
        schema, facts = insurance_world
        values, _ = build_dense_arrays(facts, schema)
        paged = PagedRPSCube(values, box_size=8, buffer_capacity=8)
        memory = RelativePrefixSumCube(values, box_size=8)
        for low, high in querygen.random_ranges(values.shape, 25, seed=13):
            assert paged.range_sum(low, high) == pytest.approx(
                memory.range_sum(low, high)
            )
        stats = paged.io_stats()
        assert stats["pages_read"] <= 25 * 4  # <= 2^d pages per query

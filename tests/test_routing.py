"""Unit tests for the adaptive query router and its tiers.

The correctness story — every routed answer equals the oracle at its
stamped snapshot version across randomized interleavings — lives in
``test_router_properties.py`` and ``test_router_differential.py``; this
file pins the component contracts those suites build on: cache
hit/miss/stale semantics and eviction, alignment math, hot-pattern
accounting, rollup exactness (ragged blocks included), build failure
degradation, deadline propagation, and the enable flags.
"""

import threading

import numpy as np
import pytest

from repro.deadline import Deadline
from repro.errors import DeadlineExceededError
from repro.metrics.router import RouterMetrics
from repro.core.rps import RelativePrefixSumCube
from repro.routing import (
    HIT,
    MISS,
    STALE,
    ClusterBackend,
    HotPatternTracker,
    QueryRouter,
    ResultCache,
    RollupBuilder,
    RollupCube,
    ServiceBackend,
    aligned_mask,
    block_boxes,
    default_granularities,
    wrap_backend,
)
from repro.serve import CubeService

from .conftest import brute_range_sum


class TestResultCache:
    def test_hit_requires_exact_stamp(self):
        cache = ResultCache()
        cache.put("k", 3, 42.0)
        assert cache.get("k", 3) == (HIT, 42.0)
        status, value = cache.get("k", 4)
        assert status is STALE and value is None
        # the stale entry was dropped, not kept around
        assert cache.get("k", 3) == (MISS, None)
        assert cache.stale_drops == 1

    def test_miss_on_absent_key(self):
        cache = ResultCache()
        assert cache.get("nope", 0) == (MISS, None)

    def test_put_replaces_version_in_place(self):
        cache = ResultCache()
        cache.put("k", 1, 10.0)
        cache.put("k", 2, 20.0)
        assert len(cache) == 1
        assert cache.get("k", 2) == (HIT, 20.0)

    def test_lru_eviction_by_entries(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 0, 1.0)
        cache.put("b", 0, 2.0)
        cache.get("a", 0)  # refresh a; b is now the LRU victim
        cache.put("c", 0, 3.0)
        assert cache.get("b", 0) == (MISS, None)
        assert cache.get("a", 0) == (HIT, 1.0)
        assert cache.evictions == 1

    def test_byte_budget_eviction(self):
        cache = ResultCache(max_bytes=4096)
        big = np.ones(256, dtype=np.float64)  # 2 KiB payload
        cache.put("a", 0, big)
        cache.put("b", 0, big)
        cache.put("c", 0, big)
        assert cache.nbytes <= 4096
        assert len(cache) < 3

    def test_byte_budget_keeps_at_least_one_entry(self):
        cache = ResultCache(max_bytes=8)
        cache.put("a", 0, np.ones(64))
        assert len(cache) == 1

    def test_cached_arrays_are_read_only_copies(self):
        cache = ResultCache()
        original = np.array([1.0, 2.0])
        cache.put("k", 0, original)
        original[0] = 99.0  # caller mutation must not reach the cache
        _, value = cache.get("k", 0)
        assert value[0] == 1.0
        with pytest.raises(ValueError):
            value[0] = 7.0

    def test_purge_stale_drops_only_other_stamps(self):
        cache = ResultCache()
        cache.put("a", 1, 1.0)
        cache.put("b", 2, 2.0)
        cache.put("c", 2, 3.0)
        assert cache.purge_stale(2) == 1
        assert cache.get("b", 2) == (HIT, 2.0)
        assert cache.get("a", 1) == (MISS, None)

    def test_purge(self):
        cache = ResultCache()
        cache.put("a", 0, 1.0)
        assert cache.purge() == 1
        assert len(cache) == 0 and cache.nbytes == 0

    def test_stats_shape(self):
        cache = ResultCache()
        cache.put("a", 0, 1.0)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["inserts"] == 1
        assert stats["bytes"] > 0

    def test_rejects_degenerate_budgets(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestAlignment:
    def test_default_granularities_descend_powers_of_two(self):
        assert default_granularities((64, 64)) == (32, 16, 8, 4)
        assert default_granularities((64, 48)) == (16, 8, 4, 2)
        assert default_granularities((8, 8), max_levels=2) == (4, 2)
        assert default_granularities((2, 2)) == ()

    def test_aligned_mask_grid_and_full_extent(self):
        shape = (20, 16)
        lows = np.array([[0, 0], [4, 8], [0, 0], [1, 0], [0, 0]])
        highs = np.array([[7, 15], [19, 15], [19, 15], [7, 15], [7, 14]])
        mask = aligned_mask(lows, highs, 4, shape)
        # box 0: 0..7 x 0..15 aligned; box 1: 4..19 (=extent) aligned;
        # box 2: full cube aligned; box 3: low 1 unaligned; box 4:
        # high+1 = 15 not a multiple of 4 and not the extent
        assert mask.tolist() == [True, True, True, False, False]

    def test_aligned_mask_ragged_extent_stays_aligned(self):
        # 20 % 8 != 0: "all of the axis" must still count as aligned
        mask = aligned_mask(
            np.array([[0]]), np.array([[19]]), 8, (20,)
        )
        assert mask.tolist() == [True]


class TestHotPatternTracker:
    def test_hot_granularity_needs_count_and_fraction(self):
        tracker = HotPatternTracker(
            (32, 32), granularities=(8,), hot_min_count=4,
            hot_min_fraction=0.5,
        )
        aligned = (np.array([[0, 0]] * 4), np.array([[7, 7]] * 4))
        tracker.observe_many(*aligned)
        assert tracker.hot_granularities() == (8,)
        # dilute below the fraction threshold with unaligned traffic
        tracker.observe_many(
            np.array([[1, 1]] * 8), np.array([[5, 5]] * 8)
        )
        assert tracker.hot_granularities() == ()

    def test_top_boxes_decode_and_rank(self):
        tracker = HotPatternTracker((16, 16), granularities=(4,))
        hot = (np.array([[0, 0]]), np.array([[3, 3]]))
        for _ in range(5):
            tracker.observe_many(
                np.asarray(hot[0], dtype=np.intp),
                np.asarray(hot[1], dtype=np.intp),
            )
        tracker.observe_many(
            np.asarray([[1, 1]], dtype=np.intp),
            np.asarray([[2, 2]], dtype=np.intp),
        )
        (box, count), *_ = tracker.top_boxes(1)
        assert box == ((0, 0), (3, 3))
        assert count == 5

    def test_box_table_stays_bounded(self):
        tracker = HotPatternTracker(
            (64, 64), granularities=(4,), max_boxes=8
        )
        lows = np.arange(32, dtype=np.intp).reshape(-1, 1).repeat(2, axis=1)
        tracker.observe_many(lows, lows + 1)
        assert tracker.stats()["tracked_boxes"] <= 8

    def test_large_batches_are_sampled_but_counted_in_full(self):
        tracker = HotPatternTracker(
            (64, 64), granularities=(4,), sample_per_batch=16
        )
        q = 256
        lows = np.zeros((q, 2), dtype=np.intp)
        highs = np.full((q, 2), 3, dtype=np.intp)
        tracker.observe_many(lows, highs)
        stats = tracker.stats()
        assert stats["observed"] == q
        # every box is aligned; the scaled estimate must see that
        assert stats["aligned_counts"][4] == q

    def test_rejects_granularity_below_two(self):
        with pytest.raises(ValueError):
            HotPatternTracker((8, 8), granularities=(1,))


class TestRollupCube:
    @pytest.mark.parametrize("shape,g", [
        ((17,), 4),            # d=1, ragged tail block
        ((16, 12), 4),         # d=2, exact fit
        ((10, 14), 4),         # d=2, ragged both axes
        ((8, 6, 10), 2),       # d=3
    ])
    def test_exact_on_every_aligned_box(self, shape, g):
        rng = np.random.default_rng(7)
        cube = rng.integers(-5, 50, shape).astype(np.float64)
        lows, highs = block_boxes(shape, g)
        blocks = np.array([
            brute_range_sum(cube, lo, hi) for lo, hi in zip(lows, highs)
        ]).reshape(tuple(-(-n // g) for n in shape))
        rollup = RollupCube(g, shape, blocks, stamp=0)
        # every aligned box (exhaustive over the block grid)
        nblocks = tuple(-(-n // g) for n in shape)
        cases = []
        for axis_lo in np.ndindex(*nblocks):
            for axis_hi in np.ndindex(*nblocks):
                if all(a <= b for a, b in zip(axis_lo, axis_hi)):
                    lo = tuple(a * g for a in axis_lo)
                    hi = tuple(
                        min((b + 1) * g - 1, n - 1)
                        for b, n in zip(axis_hi, shape)
                    )
                    cases.append((lo, hi))
        qlo = np.array([c[0] for c in cases])
        qhi = np.array([c[1] for c in cases])
        assert rollup.covers_mask(qlo, qhi).all()
        got = rollup.range_sum_many(qlo, qhi)
        expect = np.array([
            brute_range_sum(cube, lo, hi) for lo, hi in cases
        ])
        np.testing.assert_array_equal(got, expect)

    def test_covers_mask_rejects_unaligned(self):
        blocks = np.ones((4, 4))
        rollup = RollupCube(4, (16, 16), blocks, stamp=0)
        mask = rollup.covers_mask(
            np.array([[0, 0], [0, 1]]), np.array([[15, 15], [15, 15]])
        )
        assert mask.tolist() == [True, False]

    def test_rejects_wrong_block_shape(self):
        with pytest.raises(ValueError):
            RollupCube(4, (16, 16), np.ones((3, 4)), stamp=0)


class _FlakyBackend:
    """Backend stub whose reads can be made to fail on demand."""

    def __init__(self, cube, fail=False):
        self.cube = np.asarray(cube, dtype=np.float64)
        self.shape = self.cube.shape
        self.fail = fail
        self.version = 0

    def current_stamp(self):
        return self.version

    def query_many(self, lows, highs, deadline=None):
        if self.fail:
            raise RuntimeError("injected backend failure")
        values = np.array([
            brute_range_sum(self.cube, lo, hi)
            for lo, hi in zip(np.asarray(lows), np.asarray(highs))
        ])
        return values, self.version

    def submit_batch(self, updates, timeout=None, deadline=None):
        for cell, delta in updates:
            self.cube[tuple(cell)] += delta
        self.version += 1
        return self.version

    def flush(self, timeout=None):
        return self.version

    def stats(self):
        return {"version": self.version}


class TestRollupBuilder:
    def test_build_now_publishes_exact_rollup(self):
        rng = np.random.default_rng(3)
        backend = _FlakyBackend(rng.integers(0, 9, (12, 12)))
        metrics = RouterMetrics()
        builder = RollupBuilder(backend, metrics)
        try:
            rollup = builder.build_now(4)
            assert rollup is not None
            assert builder.get(4) is rollup
            assert rollup.stamp == 0
            got = rollup.range_sum_many(
                np.array([[0, 4]]), np.array([[11, 7]])
            )
            assert got[0] == brute_range_sum(backend.cube, (0, 4), (11, 7))
            assert metrics.rollup_builds == 1
        finally:
            builder.close()

    def test_failed_build_degrades_and_counts(self):
        backend = _FlakyBackend(np.ones((8, 8)), fail=True)
        metrics = RouterMetrics()
        builder = RollupBuilder(backend, metrics)
        try:
            assert builder.build_now(4) is None
            assert builder.get(4) is None
            assert metrics.rollup_build_failures == 1
        finally:
            builder.close()

    def test_background_build_failure_does_not_kill_thread(self):
        backend = _FlakyBackend(np.ones((8, 8)), fail=True)
        metrics = RouterMetrics()
        builder = RollupBuilder(backend, metrics)
        try:
            assert builder.request(4)
            deadline = Deadline.after(5.0)
            while metrics.rollup_build_failures == 0:
                deadline.check("background build failure")
            backend.fail = False
            assert builder.request(4)
            while builder.get(4) is None:
                deadline.check("background build success")
            assert builder.get(4).stamp == 0
        finally:
            builder.close()

    def test_max_rollups_trims_finest(self):
        backend = _FlakyBackend(np.ones((64, 64)))
        metrics = RouterMetrics()
        builder = RollupBuilder(backend, metrics, max_rollups=2)
        try:
            for g in (4, 8, 16):
                builder.build_now(g)
            assert sorted(builder.published()) == [8, 16]
            assert metrics.rollup_discards == 1
        finally:
            builder.close()

    def test_discard_stale_drops_superseded_stamps(self):
        backend = _FlakyBackend(np.ones((16, 16)))
        metrics = RouterMetrics()
        builder = RollupBuilder(backend, metrics)
        try:
            builder.build_now(4)
            backend.submit_batch([((0, 0), 1.0)])
            builder.build_now(8)
            assert builder.discard_stale(backend.version) == 1
            assert builder.get(4) is None
            assert builder.get(8) is not None
            assert metrics.rollup_stale_rejects == 1
        finally:
            builder.close()


@pytest.fixture
def service_router():
    rng = np.random.default_rng(11)
    cube = rng.integers(0, 100, (32, 32)).astype(np.float64)
    with CubeService(RelativePrefixSumCube, cube) as service:
        with QueryRouter(
            service, auto_build=False, observe_every=1
        ) as router:
            yield cube, service, router


class TestQueryRouter:
    def test_tier_progression_and_write_invalidation(self, service_router):
        cube, service, router = service_router
        lows = np.array([[0, 0], [4, 4], [7, 1]])
        highs = np.array([[15, 15], [20, 9], [30, 30]])
        first = router.route_many(lows, highs)
        assert set(first.tiers) == {"rps"}
        again = router.route_many(lows, highs)
        assert set(again.tiers) == {"cache"}
        np.testing.assert_array_equal(first.values, again.values)
        # a subset of the page hits the per-box entries
        sub = router.route_many(lows[:2], highs[:2])
        assert set(sub.tiers) == {"cache"}
        # a write invalidates everything through the version handoff
        router.submit_batch([((5, 5), +3.0)])
        router.flush()
        after = router.route_many(lows, highs)
        assert set(after.tiers) == {"rps"}
        cube[5, 5] += 3.0
        expect = np.array([
            brute_range_sum(cube, lo, hi) for lo, hi in zip(lows, highs)
        ])
        np.testing.assert_array_equal(after.values, expect)
        snap = router.metrics.snapshot()
        assert snap["batch_stale_rejects"] >= 1
        assert snap["cache_stale_rejects"] >= 1

    def test_rollup_serves_unseen_aligned_boxes(self, service_router):
        cube, service, router = service_router
        router.build_rollup(8)
        batch = router.route_many(
            np.array([[0, 8], [8, 0]]), np.array([[7, 31], [31, 15]])
        )
        assert set(batch.tiers) == {"rollup"}
        expect = np.array([
            brute_range_sum(cube, (0, 8), (7, 31)),
            brute_range_sum(cube, (8, 0), (31, 15)),
        ])
        np.testing.assert_array_equal(batch.values, expect)
        assert router.metrics.rollup_hits == 2

    def test_stale_rollup_is_discarded_not_served(self, service_router):
        cube, service, router = service_router
        router.build_rollup(8)
        router.submit_batch([((0, 0), +1.0)])
        router.flush()
        batch = router.route_many(np.array([[0, 0]]), np.array([[31, 31]]))
        assert batch.tiers == ("rps",)
        assert batch.values[0] == cube.sum() + 1.0
        assert router.builder.get(8) is None
        assert router.metrics.rollup_stale_rejects == 1

    def test_enable_cache_false_never_caches(self):
        cube = np.ones((8, 8))
        with CubeService(RelativePrefixSumCube, cube) as service:
            with QueryRouter(
                service, enable_cache=False, auto_build=False
            ) as router:
                for _ in range(3):
                    batch = router.route_many(
                        np.array([[0, 0]]), np.array([[7, 7]])
                    )
                    assert batch.tiers == ("rps",)
                assert len(router.cache) == 0

    def test_enable_rollup_false_has_no_builder(self):
        cube = np.ones((8, 8))
        with CubeService(RelativePrefixSumCube, cube) as service:
            with QueryRouter(service, enable_rollup=False) as router:
                assert router.builder is None
                with pytest.raises(ValueError):
                    router.build_rollup(4)
                batch = router.route_many(
                    np.array([[0, 0]]), np.array([[7, 7]])
                )
                assert batch.tiers == ("rps",)

    def test_large_batches_skip_per_box_cache(self):
        cube = np.ones((16, 16))
        with CubeService(RelativePrefixSumCube, cube) as service:
            with QueryRouter(
                service, auto_build=False, per_box_cache_max_batch=4
            ) as router:
                lows = np.zeros((8, 2), dtype=int)
                highs = np.tile(np.arange(8).reshape(-1, 1), 2)
                router.route_many(lows, highs)
                # only the batch memo entry, no per-box entries
                assert len(router.cache) == 1
                batch = router.route_many(lows, highs)
                assert set(batch.tiers) == {"cache"}

    def test_expired_deadline_raises_and_counts(self, service_router):
        _, _, router = service_router
        dead = Deadline.after(0.0)
        with pytest.raises(DeadlineExceededError):
            router.route_many(
                np.array([[0, 0]]), np.array([[3, 3]]), deadline=dead
            )
        assert router.metrics.deadline_exceeded == 1

    def test_stamps_name_the_serving_snapshot(self, service_router):
        cube, service, router = service_router
        batch = router.route_many(np.array([[0, 0]]), np.array([[3, 3]]))
        assert batch.stamps[0] == service.version

    def test_auto_build_requests_hot_granularity(self):
        rng = np.random.default_rng(5)
        cube = rng.integers(0, 9, (32, 32)).astype(float)
        tracker = HotPatternTracker(
            (32, 32), granularities=(8,), hot_min_count=2,
            hot_min_fraction=0.1,
        )
        with CubeService(RelativePrefixSumCube, cube) as service:
            with QueryRouter(
                service, tracker=tracker, observe_every=1
            ) as router:
                lows = np.array([[0, 0], [8, 8]])
                highs = np.array([[7, 7], [31, 31]])
                router.route_many(lows, highs)
                router.route_many(lows, highs)
                deadline = Deadline.after(5.0)
                while router.builder.get(8) is None:
                    deadline.check("hot rollup build")
                batch = router.route_many(lows, highs)
                # third ask of the same page: batch memo wins over rollup
                assert set(batch.tiers) == {"cache"}
                fresh = router.route_many(
                    np.array([[16, 0]]), np.array([[23, 31]])
                )
                assert fresh.tiers == ("rollup",)
                assert fresh.values[0] == brute_range_sum(
                    cube, (16, 0), (23, 31)
                )

    def test_stats_merges_every_layer(self, service_router):
        _, _, router = service_router
        router.route_many(np.array([[0, 0]]), np.array([[3, 3]]))
        stats = router.stats()
        assert set(stats) == {
            "router", "cache", "tracker", "rollups", "backend",
        }
        assert stats["router"]["queries_routed"] == 1
        assert "version" in stats["backend"]

    def test_wrap_backend_detection(self):
        cube = np.ones((8, 8))
        with CubeService(RelativePrefixSumCube, cube) as service:
            adapted = wrap_backend(service)
            assert isinstance(adapted, ServiceBackend)
            assert wrap_backend(adapted) is adapted
        stub = _FlakyBackend(cube)
        assert wrap_backend(stub) is stub

    def test_concurrent_routed_reads_are_exact(self):
        rng = np.random.default_rng(17)
        cube = rng.integers(0, 50, (24, 24)).astype(np.float64)
        errors = []
        with CubeService(RelativePrefixSumCube, cube) as service:
            with QueryRouter(service, auto_build=False) as router:
                router.build_rollup(8)
                expect = brute_range_sum(cube, (0, 0), (23, 23))
                sub = brute_range_sum(cube, (3, 3), (10, 12))

                def reader():
                    for _ in range(50):
                        full = router.range_sum(
                            (0, 0), (23, 23)
                        )
                        part = router.range_sum((3, 3), (10, 12))
                        if full != expect or part != sub:
                            errors.append((full, part))
                            return

                threads = [
                    threading.Thread(target=reader) for _ in range(4)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                    assert not t.is_alive()
        assert not errors
